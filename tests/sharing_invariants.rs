//! Cross-crate invariants of the sharing pipeline: every sharing
//! dispatcher (Algorithm 3 and the three baselines) must produce disjoint,
//! seat-respecting, detour-compliant, genuinely-shared assignments.

use o2o_taxi::baselines::{LinDispatcher, RaiiDispatcher, SarpDispatcher};
use o2o_taxi::core::shared_route::StopKind;
use o2o_taxi::core::{PreferenceParams, SharingDispatcher, SharingSchedule};
use o2o_taxi::geo::{Euclidean, Point};
use o2o_taxi::trace::{Request, RequestId, Taxi, TaxiId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_frame(seed: u64, nt: usize, nr: usize) -> (Vec<Taxi>, Vec<Request>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let taxis = (0..nt)
        .map(|i| {
            Taxi::new(
                TaxiId(i as u64),
                Point::new(rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)),
            )
        })
        .collect();
    let requests = (0..nr)
        .map(|j| {
            Request::new(
                RequestId(j as u64),
                0,
                Point::new(rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)),
                Point::new(rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)),
            )
        })
        .collect();
    (taxis, requests)
}

fn check_invariants(
    label: &str,
    taxis: &[Taxi],
    requests: &[Request],
    s: &SharingSchedule,
    theta: f64,
) {
    let mut served = std::collections::HashSet::new();
    let mut used_taxis = std::collections::HashSet::new();
    for a in &s.assignments {
        assert!(used_taxis.insert(a.taxi), "{label}: taxi reused");
        let taxi = taxis.iter().find(|t| t.id == a.taxi).expect("known taxi");
        let party: u16 = a
            .members
            .iter()
            .map(|m| {
                let r = requests.iter().find(|r| r.id == *m).expect("known request");
                u16::from(r.passengers)
            })
            .sum();
        assert!(party <= u16::from(taxi.seats), "{label}: over capacity");
        for (&m, &det) in a.members.iter().zip(&a.detours) {
            assert!(served.insert(m), "{label}: request served twice");
            assert!(det <= theta + 1e-6, "{label}: detour {det} over θ {theta}");
        }
        // Genuine sharing: the vehicle never runs empty mid-route.
        let mut on_board = 0usize;
        for (i, stop) in a.route.stops.iter().enumerate() {
            match stop.kind {
                StopKind::Pickup => on_board += 1,
                StopKind::Dropoff => {
                    on_board -= 1;
                    assert!(
                        on_board > 0 || i + 1 == a.route.stops.len(),
                        "{label}: vehicle empty mid-route"
                    );
                }
            }
        }
        // Accounting: reported drive equals the polyline plus approach.
        let polyline: Vec<Point> = a.route.stops.iter().map(|st| st.location).collect();
        let internal: f64 = polyline.windows(2).map(|w| w[0].euclidean(w[1])).sum();
        let approach = taxi.location.euclidean(polyline[0]);
        assert!(
            (a.total_drive - (approach + internal)).abs() < 1e-6,
            "{label}: drive accounting off"
        );
    }
    for u in &s.unserved {
        assert!(served.insert(*u), "{label}: unserved request also served");
    }
    assert_eq!(served.len(), requests.len(), "{label}: requests lost");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_sharing_dispatchers_respect_invariants(
        seed in any::<u64>(), nt in 1usize..5, nr in 1usize..10, theta in 0.5..6.0f64,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr);
        let params = PreferenceParams::unbounded().with_detour_threshold(theta);
        let schedules = [
            (
                "STD-P",
                SharingDispatcher::new(Euclidean, params)
                    .dispatch_passenger_optimal(&taxis, &requests),
            ),
            (
                "STD-T",
                SharingDispatcher::new(Euclidean, params)
                    .dispatch_taxi_optimal(&taxis, &requests),
            ),
            (
                "RAII",
                RaiiDispatcher::new(Euclidean, params).dispatch(&taxis, &requests),
            ),
            (
                "SARP",
                SarpDispatcher::new(Euclidean, params).dispatch(&taxis, &requests),
            ),
            (
                "Lin",
                LinDispatcher::new(Euclidean, params).dispatch(&taxis, &requests),
            ),
        ];
        for (label, s) in &schedules {
            check_invariants(label, &taxis, &requests, s, theta);
        }
    }
}

#[test]
fn sharing_dispatchers_agree_on_trivial_frames() {
    // One taxi, one request: everyone must serve it identically.
    let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
    let requests = vec![Request::new(
        RequestId(0),
        0,
        Point::new(1.0, 0.0),
        Point::new(4.0, 0.0),
    )];
    let params = PreferenceParams::default();
    for (label, s) in [
        (
            "STD-P",
            SharingDispatcher::new(Euclidean, params).dispatch_passenger_optimal(&taxis, &requests),
        ),
        (
            "RAII",
            RaiiDispatcher::new(Euclidean, params).dispatch(&taxis, &requests),
        ),
        (
            "SARP",
            SarpDispatcher::new(Euclidean, params).dispatch(&taxis, &requests),
        ),
        (
            "Lin",
            LinDispatcher::new(Euclidean, params).dispatch(&taxis, &requests),
        ),
    ] {
        assert_eq!(s.served_count(), 1, "{label}");
        let a = &s.assignments[0];
        assert_eq!(a.members, vec![RequestId(0)], "{label}");
        assert!((a.total_drive - 4.0).abs() < 1e-9, "{label}");
        assert!((a.taxi_cost - (4.0 - 2.0 * 3.0)).abs() < 1e-9, "{label}");
    }
}
