//! Cross-crate integration: every policy runs a full simulated day and the
//! paper's headline comparisons hold on a small calibrated workload.

use o2o_taxi::core::PreferenceParams;
use o2o_taxi::geo::Euclidean;
use o2o_taxi::sim::{policy, DispatchPolicy, SimConfig, SimReport, Simulator};
use o2o_taxi::trace::{boston_september_2012, Trace};

fn run(trace: &Trace, mut p: impl DispatchPolicy) -> SimReport {
    Simulator::new(SimConfig::default()).run(trace, &mut p)
}

fn small_boston() -> Trace {
    // Full supply/demand ratio at 4 % volume: 8 taxis, ~540 requests.
    boston_september_2012(0.04).taxis(8).generate(20250706)
}

#[test]
fn every_policy_conserves_requests() {
    let trace = small_boston();
    let params = PreferenceParams::default();
    let policies: Vec<Box<dyn DispatchPolicy>> = vec![
        Box::new(policy::nstd_p(Euclidean, params)),
        Box::new(policy::nstd_t(Euclidean, params)),
        Box::new(policy::near(Euclidean, params)),
        Box::new(policy::pair(Euclidean, params)),
        Box::new(policy::mini(Euclidean, params)),
        Box::new(policy::std_p(Euclidean, params)),
        Box::new(policy::std_t(Euclidean, params)),
        Box::new(policy::raii(Euclidean, params)),
        Box::new(policy::sarp(Euclidean, params)),
        Box::new(policy::lin(Euclidean, params)),
    ];
    for mut p in policies {
        let name = p.name().to_string();
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut p);
        assert_eq!(
            report.served + report.unserved_at_end,
            trace.requests.len(),
            "{name} lost requests"
        );
        assert_eq!(report.delays_min.len(), report.served, "{name}");
        assert_eq!(
            report.passenger_dissatisfaction.len(),
            report.served,
            "{name}"
        );
        assert!(
            report.delays_min.iter().all(|&d| d >= 0.0 && d.is_finite()),
            "{name} produced invalid delays"
        );
        assert!(report.total_drive_km >= 0.0);
    }
}

#[test]
fn nstd_beats_baselines_on_taxi_dissatisfaction() {
    // The paper's headline: NSTD significantly improves taxi satisfaction
    // over Near and Mini (the passenger-only baselines).
    let trace = small_boston();
    let params = PreferenceParams::default();
    let nstd = run(&trace, policy::nstd_p(Euclidean, params));
    let near = run(&trace, policy::near(Euclidean, params));
    let mini = run(&trace, policy::mini(Euclidean, params));
    assert!(
        nstd.avg_taxi_dissatisfaction() < near.avg_taxi_dissatisfaction(),
        "NSTD-P {:.3} should beat Near {:.3}",
        nstd.avg_taxi_dissatisfaction(),
        near.avg_taxi_dissatisfaction()
    );
    assert!(
        nstd.avg_taxi_dissatisfaction() < mini.avg_taxi_dissatisfaction(),
        "NSTD-P {:.3} should beat Mini {:.3}",
        nstd.avg_taxi_dissatisfaction(),
        mini.avg_taxi_dissatisfaction()
    );
}

#[test]
fn sharing_serves_with_fewer_taxi_kilometres_per_request() {
    // Sharing's raison d'être: less driving per served request than
    // non-sharing dispatch under the same workload.
    let trace = small_boston();
    let params = PreferenceParams::default();
    let non_sharing = run(&trace, policy::nstd_p(Euclidean, params));
    let sharing = run(&trace, policy::std_p(Euclidean, params));
    assert!(sharing.sharing_rate() > 0.0, "nothing was shared");
    let per_request = |r: &SimReport| r.total_drive_km / r.served.max(1) as f64;
    assert!(
        per_request(&sharing) < per_request(&non_sharing),
        "sharing {:.2} km/req should beat non-sharing {:.2} km/req",
        per_request(&sharing),
        per_request(&non_sharing)
    );
}

#[test]
fn stable_policies_produce_stable_frames() {
    // Spot-check: replay NSTD-P's first busy frame and verify stability
    // with the dispatcher's own checker.
    use o2o_taxi::core::NonSharingDispatcher;
    let trace = small_boston();
    let params = PreferenceParams::default();
    let dispatcher = NonSharingDispatcher::new(Euclidean, params);
    let first_batch: Vec<_> = trace.requests_between(0, 6 * 3600).to_vec();
    if first_batch.is_empty() {
        return;
    }
    let schedule = dispatcher.passenger_optimal(&trace.taxis, &first_batch);
    assert!(dispatcher.is_stable(&trace.taxis, &first_batch, &schedule));
}

#[test]
fn rush_hours_are_the_stress_point() {
    let trace = boston_september_2012(0.08).taxis(16).generate(5);
    let report = run(&trace, policy::pair(Euclidean, PreferenceParams::default()));
    let delays = report.hourly_delay().values;
    // Rush hours (9am / 6pm region) must be no easier than deep night.
    let rush = delays[8..=9].iter().chain(&delays[17..=18]).sum::<f64>() / 4.0;
    let night = delays[2..=4].iter().sum::<f64>() / 3.0;
    assert!(
        rush >= night,
        "rush-hour delay {rush:.2} should be ≥ night delay {night:.2}"
    );
}
