//! The dispatch algorithms are generic over the metric; check that the
//! whole stack also runs on a road-network (graph) metric and on scaled
//! metrics, and that the qualitative relations survive the metric change.

use o2o_taxi::core::{NonSharingDispatcher, PreferenceParams, SharingDispatcher};
use o2o_taxi::geo::{Euclidean, Metric, Point, RoadNetwork, ScaledMetric};
use o2o_taxi::trace::{Request, RequestId, Taxi, TaxiId};

fn frame() -> (Vec<Taxi>, Vec<Request>) {
    let taxis = vec![
        Taxi::new(TaxiId(0), Point::new(1.0, 1.0)),
        Taxi::new(TaxiId(1), Point::new(8.0, 8.0)),
        Taxi::new(TaxiId(2), Point::new(4.0, 6.0)),
    ];
    let requests = vec![
        Request::new(RequestId(0), 0, Point::new(2.0, 1.0), Point::new(6.0, 3.0)),
        Request::new(RequestId(1), 0, Point::new(7.0, 7.0), Point::new(2.0, 8.0)),
        Request::new(RequestId(2), 0, Point::new(5.0, 5.0), Point::new(8.0, 2.0)),
        Request::new(RequestId(3), 0, Point::new(3.0, 2.0), Point::new(4.0, 9.0)),
    ];
    (taxis, requests)
}

#[test]
fn nstd_works_on_road_network_metric() {
    let (taxis, requests) = frame();
    let net = RoadNetwork::grid(11, 11, 1.0); // 10×10 km street grid
    let d = NonSharingDispatcher::new(&net, PreferenceParams::unbounded());
    let s = d.passenger_optimal(&taxis, &requests);
    assert!(d.is_stable(&taxis, &requests, &s));
    assert_eq!(s.served_count(), 3); // three taxis, four requests
                                     // Road distances are rectilinear here, so every reported pickup
                                     // distance must be at least the straight-line distance.
    for r in &requests {
        if let Some(cost) = s.passenger_dissatisfaction(r.id) {
            let taxi = s.assignment_of(r.id).taxi().unwrap();
            let t = taxis.iter().find(|t| t.id == taxi).unwrap();
            assert!(cost + 1e-9 >= t.location.euclidean(r.pickup));
        }
    }
}

#[test]
fn sharing_works_on_road_network_metric() {
    let net = RoadNetwork::grid(11, 11, 1.0);
    let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
    // Two trips along the same street: shareable on the grid too.
    let requests = vec![
        Request::new(RequestId(0), 0, Point::new(1.0, 0.0), Point::new(9.0, 0.0)),
        Request::new(RequestId(1), 0, Point::new(2.0, 0.0), Point::new(8.0, 0.0)),
    ];
    let d = SharingDispatcher::new(&net, PreferenceParams::default());
    let s = d.dispatch_passenger_optimal(&taxis, &requests);
    assert_eq!(s.served_count(), 2);
    assert_eq!(s.assignments[0].members.len(), 2);
    for a in &s.assignments {
        for &det in &a.detours {
            assert!(det <= 5.0 + 1e-9);
        }
    }
}

#[test]
fn scaled_metric_scales_dissatisfaction_linearly() {
    let (taxis, requests) = frame();
    let d1 = NonSharingDispatcher::new(Euclidean, PreferenceParams::unbounded());
    let d2 = NonSharingDispatcher::new(
        ScaledMetric::new(Euclidean, 2.0),
        PreferenceParams::unbounded(),
    );
    let s1 = d1.passenger_optimal(&taxis, &requests);
    let s2 = d2.passenger_optimal(&taxis, &requests);
    // Scaling every distance by the same factor preserves all preference
    // orders, so the matching is identical and costs double.
    for r in &requests {
        assert_eq!(s1.assignment_of(r.id), s2.assignment_of(r.id));
        if let (Some(a), Some(b)) = (
            s1.passenger_dissatisfaction(r.id),
            s2.passenger_dissatisfaction(r.id),
        ) {
            assert!((b - 2.0 * a).abs() < 1e-9);
        }
    }
}

#[test]
fn grid_metric_dominates_euclidean_in_costs() {
    let (taxis, requests) = frame();
    let net = RoadNetwork::grid(11, 11, 1.0);
    // Manhattan-style distances are never shorter than straight lines.
    for t in &taxis {
        for r in &requests {
            assert!(net.distance(t.location, r.pickup) + 1e-9 >= t.location.euclidean(r.pickup));
        }
    }
}
