//! Cross-crate property tests of the paper's theorems at the dispatcher
//! level: stability (Definition 1), passenger-optimality (Property 2),
//! rural hospitals (Theorem 2), and the instability of the baselines.

use o2o_taxi::baselines::{MiniDispatcher, NearDispatcher, PairDispatcher};
use o2o_taxi::core::{NonSharingDispatcher, PreferenceParams};
use o2o_taxi::geo::{Euclidean, Point};
use o2o_taxi::trace::{Request, RequestId, Taxi, TaxiId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_frame(seed: u64, nt: usize, nr: usize) -> (Vec<Taxi>, Vec<Request>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let taxis = (0..nt)
        .map(|i| {
            Taxi::new(
                TaxiId(i as u64),
                Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)),
            )
        })
        .collect();
    let requests = (0..nr)
        .map(|j| {
            Request::new(
                RequestId(j as u64),
                0,
                Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)),
                Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)),
            )
        })
        .collect();
    (taxis, requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Definition 1 at dispatcher level: NSTD-P and NSTD-T are stable for
    /// any frame and any (sane) parameters.
    #[test]
    fn nstd_schedules_are_stable(
        seed in any::<u64>(), nt in 1usize..8, nr in 1usize..8,
        alpha in 0.0..2.0f64, taxi_threshold in 0.5..10.0f64,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr);
        let params = PreferenceParams::paper()
            .with_alpha(alpha)
            .with_taxi_threshold(taxi_threshold);
        let d = NonSharingDispatcher::new(Euclidean, params);
        let p = d.passenger_optimal(&taxis, &requests);
        let t = d.taxi_optimal(&taxis, &requests);
        prop_assert!(d.is_stable(&taxis, &requests, &p));
        prop_assert!(d.is_stable(&taxis, &requests, &t));
    }

    /// Theorem 2 (rural hospitals): a request unserved under NSTD-P is
    /// unserved in every stable schedule, including NSTD-T.
    #[test]
    fn unserved_set_is_schedule_invariant(seed in any::<u64>(), nt in 1usize..6, nr in 1usize..6) {
        let (taxis, requests) = random_frame(seed, nt, nr);
        let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::paper());
        let p = d.passenger_optimal(&taxis, &requests);
        let t = d.taxi_optimal(&taxis, &requests);
        prop_assert_eq!(p.unserved(), t.unserved());
        for s in d.all_schedules(&taxis, &requests, None) {
            prop_assert_eq!(s.unserved(), p.unserved());
        }
    }

    /// Property 2: NSTD-P weakly beats NSTD-T for every passenger, and
    /// NSTD-T weakly beats NSTD-P for every taxi.
    #[test]
    fn opposing_optimality(seed in any::<u64>(), nt in 1usize..7, nr in 1usize..7) {
        let (taxis, requests) = random_frame(seed, nt, nr);
        let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::paper());
        let p = d.passenger_optimal(&taxis, &requests);
        let t = d.taxi_optimal(&taxis, &requests);
        for r in &requests {
            if let (Some(a), Some(b)) = (
                p.passenger_dissatisfaction(r.id),
                t.passenger_dissatisfaction(r.id),
            ) {
                prop_assert!(a <= b + 1e-9);
            }
        }
        for taxi in &taxis {
            if let (Some(a), Some(b)) = (
                t.taxi_dissatisfaction(taxi.id),
                p.taxi_dissatisfaction(taxi.id),
            ) {
                prop_assert!(a <= b + 1e-9);
            }
        }
    }

    /// Thresholds are honoured: no matched pair violates the passenger or
    /// driver dummy cut-off.
    #[test]
    fn thresholds_are_hard_constraints(
        seed in any::<u64>(), nt in 1usize..8, nr in 1usize..8,
        pt in 1.0..8.0f64, tt in 0.0..4.0f64,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr);
        let params = PreferenceParams::paper()
            .with_passenger_threshold(pt)
            .with_taxi_threshold(tt);
        let d = NonSharingDispatcher::new(Euclidean, params);
        let s = d.passenger_optimal(&taxis, &requests);
        for r in &requests {
            if let Some(cost) = s.passenger_dissatisfaction(r.id) {
                prop_assert!(cost <= pt + 1e-9);
            }
        }
        for taxi in &taxis {
            if let Some(score) = s.taxi_dissatisfaction(taxi.id) {
                prop_assert!(score <= tt + 1e-9);
            }
        }
    }
}

/// The baselines ignore driver interests, so they regularly produce
/// *unstable* schedules — that instability is the paper's motivation.
#[test]
fn baselines_are_frequently_unstable() {
    let params = PreferenceParams::unbounded();
    let d = NonSharingDispatcher::new(Euclidean, params);
    let mut unstable = [0usize; 3];
    let trials = 60;
    for seed in 0..trials {
        let (taxis, requests) = random_frame(seed as u64, 5, 5);
        let schedules = [
            NearDispatcher::new(Euclidean, params).dispatch(&taxis, &requests),
            PairDispatcher::new(Euclidean, params).dispatch(&taxis, &requests),
            MiniDispatcher::new(Euclidean, params).dispatch(&taxis, &requests),
        ];
        for (i, s) in schedules.iter().enumerate() {
            if !d.is_stable(&taxis, &requests, s) {
                unstable[i] += 1;
            }
        }
    }
    for (name, count) in ["Near", "Pair", "Mini"].iter().zip(unstable) {
        assert!(
            count > trials / 4,
            "{name} was unstable only {count}/{trials} times — expected often"
        );
    }
}
