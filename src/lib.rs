//! # O2O Taxi Dispatching with Passenger–Driver Matching Stability
//!
//! A complete Rust reproduction of *"Online to Offline Business: Urban Taxi
//! Dispatching with Passenger-Driver Matching Stability"* (Zheng & Wu,
//! IEEE ICDCS 2017).
//!
//! In the Online-to-Offline taxi business (Uber-style), taxis are privately
//! owned, so the dispatcher must balance three parties' interests:
//! passengers want a nearby taxi, drivers weigh pick-up cost against trip
//! pay-off, and the company wants fare volume. The paper's answer is
//! **stable matching**: a dispatch schedule in which no passenger and no
//! driver would rather have each other than their assigned partners.
//!
//! This facade crate re-exports the entire workspace:
//!
//! * [`geo`] — points, metrics, road networks, spatial indices,
//! * [`trace`] — request/fleet model and synthetic NYC/Boston traces,
//! * [`matching`] — stable marriage, Hungarian, bottleneck, Hopcroft–Karp
//!   and maximum set packing,
//! * [`core`] — the paper's algorithms: NSTD-P / NSTD-T (Algorithms 1–2)
//!   and sharing dispatch STD-P / STD-T (Algorithm 3),
//! * [`baselines`] — Near, Pair, Mini, RAII, SARP and Lin from the
//!   comparison literature,
//! * [`sim`] — the discrete-frame city simulator and metric reports.
//!
//! # Quickstart
//!
//! ```
//! use o2o_taxi::core::{DispatchOutcome, NonSharingDispatcher, PreferenceParams};
//! use o2o_taxi::geo::{Euclidean, Point};
//! use o2o_taxi::trace::{Request, RequestId, Taxi, TaxiId};
//!
//! let taxis = vec![
//!     Taxi::new(TaxiId(0), Point::new(0.0, 0.0)),
//!     Taxi::new(TaxiId(1), Point::new(5.0, 5.0)),
//! ];
//! let requests = vec![
//!     Request::new(RequestId(0), 0, Point::new(1.0, 0.0), Point::new(9.0, 0.0)),
//!     Request::new(RequestId(1), 0, Point::new(4.0, 5.0), Point::new(0.0, 5.0)),
//! ];
//!
//! let dispatcher = NonSharingDispatcher::new(Euclidean, PreferenceParams::default());
//! let schedule = dispatcher.passenger_optimal(&taxis, &requests);
//! for r in &requests {
//!     match schedule.assignment_of(r.id) {
//!         DispatchOutcome::Assigned(taxi) => println!("{} -> {taxi}", r.id),
//!         DispatchOutcome::Unserved => println!("{} unserved", r.id),
//!     }
//! }
//! ```

#![forbid(unsafe_code)]

pub use o2o_baselines as baselines;
pub use o2o_core as core;
pub use o2o_geo as geo;
pub use o2o_matching as matching;
pub use o2o_sim as sim;
pub use o2o_trace as trace;
