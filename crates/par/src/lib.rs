//! Deterministic fork-join parallelism for the dispatch pipeline.
//!
//! Three things live here:
//!
//! * [`Parallelism`] — a small configuration value saying how many worker
//!   threads a stage may use. `Parallelism::auto()` reads the
//!   `O2O_THREADS` environment variable, falling back to the machine's
//!   available parallelism; `Parallelism::sequential()` (threads = 1)
//!   recovers the single-threaded code path exactly.
//! * [`par_map`] / [`par_map_indexed`] — order-preserving parallel maps
//!   built on `std::thread::scope`. Output element `i` is always `f`
//!   applied to input element `i`, regardless of thread count, so any
//!   deterministic downstream consumer produces bit-identical results
//!   for every thread count.
//! * [`try_par_map`] / [`try_par_map_indexed`] — panic-isolated variants:
//!   workers run under `catch_unwind`, a failed chunk is retried
//!   sequentially once (transient panics self-heal), and a persistent
//!   panic surfaces as a typed [`WorkerPanic`] instead of tearing down
//!   the whole simulation.
//!
//! Work is split into contiguous chunks (one per worker) rather than
//! work-stealing: the items in this workspace (preference rows, candidate
//! pairs, policy frames) have fairly uniform cost, and contiguous chunks
//! keep the merge trivially deterministic and allocation-light.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How many threads a parallel stage may use.
///
/// This is a *cap*, not a demand: stages run sequentially when the input
/// is too small for forking to pay off, and never spawn more threads
/// than there are items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Exactly one thread: the sequential code path, bit-identical to
    /// the pre-parallel implementation.
    #[must_use]
    pub fn sequential() -> Self {
        Parallelism {
            threads: NonZeroUsize::MIN,
        }
    }

    /// A fixed thread cap. `threads` is clamped up to 1.
    #[must_use]
    pub fn fixed(threads: usize) -> Self {
        Parallelism {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is nonzero"),
        }
    }

    /// Thread cap from the environment: `O2O_THREADS` if set to a
    /// positive integer, otherwise the machine's available parallelism
    /// (1 if that is unknown).
    #[must_use]
    pub fn auto() -> Self {
        if let Some(n) = std::env::var("O2O_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return Parallelism::fixed(n);
        }
        Parallelism {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The configured thread cap.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Whether this configuration is the sequential path.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.threads.get() == 1
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::auto`].
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Below this many items a fork is pure overhead; run inline instead.
const MIN_ITEMS_PER_THREAD: usize = 16;

/// Maps `f` over `items`, preserving order, using up to
/// `par.threads()` threads.
///
/// Equivalent to `items.into_iter().map(f).collect()` — including the
/// order of results — for every thread count. `f` runs at most once per
/// item. Panics in `f` propagate.
pub fn par_map<T, U, F>(par: Parallelism, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_indexed(par, items, |_, item| f(item))
}

/// Like [`par_map`] but `f` also receives the item's index in `items`.
pub fn par_map_indexed<T, U, F>(par: Parallelism, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let len = items.len();
    let workers = par.threads().min(len.div_ceil(MIN_ITEMS_PER_THREAD)).max(1);
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Contiguous chunks, one per worker; chunk k covers indices
    // [k*chunk, min((k+1)*chunk, len)). Rounding chunk up can make the
    // last chunks redundant (e.g. len = 305, workers = 19 gives
    // chunk = 17 but only 18 chunks are needed), so recompute the worker
    // count from the chunk size — otherwise a split index could exceed
    // len. Results come back tagged with the chunk index and are
    // re-assembled in order.
    let chunk = len.div_ceil(workers);
    let workers = len.div_ceil(chunk);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    // Split back-to-front so each drain is O(chunk).
    for k in (0..workers).rev() {
        chunks.push(items.split_off((k * chunk).min(items.len())));
    }
    chunks.reverse();

    let f = &f;
    let mut out: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(k, chunk_items)| {
                let base = k * chunk;
                scope.spawn(move || {
                    chunk_items
                        .into_iter()
                        .enumerate()
                        .map(|(i, item)| f(base + i, item))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut result = Vec::with_capacity(len);
    for part in &mut out {
        result.append(part);
    }
    result
}

/// A panic that survived [`try_par_map`]'s one sequential retry.
///
/// `first_item` is the index (in the original `items`) of the first item
/// whose retry panicked again; `message` is the panic payload rendered to
/// text (`&str` / `String` payloads verbatim, anything else a
/// placeholder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the first item that panicked even when retried alone.
    pub first_item: usize,
    /// The panic payload, rendered to text.
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker panicked on item {} (retried once): {}",
            self.first_item, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Successful output of [`try_par_map`] / [`try_par_map_indexed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParOutput<U> {
    /// `f` applied to each input item, in input order — identical to what
    /// [`par_map`] would have returned.
    pub values: Vec<U>,
    /// How many chunks (inline mode: items) panicked on the first attempt
    /// and were recovered by the sequential retry. Zero on a clean run.
    pub retried_chunks: usize,
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Panic-isolated [`par_map`]: workers run under `catch_unwind`, a chunk
/// whose worker panics is retried sequentially once, and a second panic
/// surfaces as a typed [`WorkerPanic`] instead of aborting the run.
///
/// On success the values are exactly what [`par_map`] returns (same
/// order, `f` observes the same indices); the only difference is the
/// failure mode. `T: Clone` pays for the retry: every chunk is cloned
/// up front so the original can be consumed by the first attempt.
///
/// Unwind-safety: `f` is re-invoked after a caught panic, so any shared
/// state it mutates must tolerate a half-completed call (the pipeline's
/// closures are pure functions of their item, which trivially qualifies).
///
/// # Errors
///
/// Returns [`WorkerPanic`] identifying the first item whose *retry* also
/// panicked.
pub fn try_par_map<T, U, F>(
    par: Parallelism,
    items: Vec<T>,
    f: F,
) -> Result<ParOutput<U>, WorkerPanic>
where
    T: Send + Clone,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    try_par_map_indexed(par, items, |_, item| f(item))
}

/// Like [`try_par_map`] but `f` also receives the item's index.
///
/// # Errors
///
/// Returns [`WorkerPanic`] identifying the first item whose retry also
/// panicked.
pub fn try_par_map_indexed<T, U, F>(
    par: Parallelism,
    items: Vec<T>,
    f: F,
) -> Result<ParOutput<U>, WorkerPanic>
where
    T: Send + Clone,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let len = items.len();
    let workers = par.threads().min(len.div_ceil(MIN_ITEMS_PER_THREAD)).max(1);
    if workers == 1 {
        // Inline: catch per item, retry the item once.
        let mut values = Vec::with_capacity(len);
        let mut retried = 0usize;
        for (i, item) in items.into_iter().enumerate() {
            let copy = item.clone();
            match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                Ok(v) => values.push(v),
                Err(_) => {
                    retried += 1;
                    match catch_unwind(AssertUnwindSafe(|| f(i, copy))) {
                        Ok(v) => values.push(v),
                        Err(p) => {
                            return Err(WorkerPanic {
                                first_item: i,
                                message: panic_message(&*p),
                            })
                        }
                    }
                }
            }
        }
        return Ok(ParOutput {
            values,
            retried_chunks: retried,
        });
    }

    // Same chunk geometry as par_map_indexed, so indices and ordering
    // agree with it exactly.
    let chunk = len.div_ceil(workers);
    let workers = len.div_ceil(chunk);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    for k in (0..workers).rev() {
        chunks.push(items.split_off((k * chunk).min(items.len())));
    }
    chunks.reverse();
    let retry_copies: Vec<Vec<T>> = chunks.clone();

    let f = &f;
    let results: Vec<Result<Vec<U>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(k, chunk_items)| {
                let base = k * chunk;
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        chunk_items
                            .into_iter()
                            .enumerate()
                            .map(|(i, item)| f(base + i, item))
                            .collect::<Vec<U>>()
                    }))
                    .map_err(|p| panic_message(&*p))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker died outside catch_unwind"))
            .collect()
    });

    let mut values = Vec::with_capacity(len);
    let mut retried = 0usize;
    for (k, (result, copy)) in results.into_iter().zip(retry_copies).enumerate() {
        match result {
            Ok(mut part) => values.append(&mut part),
            Err(_) => {
                retried += 1;
                let base = k * chunk;
                for (i, item) in copy.into_iter().enumerate() {
                    match catch_unwind(AssertUnwindSafe(|| f(base + i, item))) {
                        Ok(v) => values.push(v),
                        Err(p) => {
                            return Err(WorkerPanic {
                                first_item: base + i,
                                message: panic_message(&*p),
                            })
                        }
                    }
                }
            }
        }
    }
    Ok(ParOutput {
        values,
        retried_chunks: retried,
    })
}

/// Runs the given closures concurrently (up to `par.threads()` at a
/// time) and returns their results in call order.
///
/// Convenience for heterogeneous "run these N jobs" call sites such as
/// benchmark sweeps.
pub fn par_run<U, F>(par: Parallelism, jobs: Vec<F>) -> Vec<U>
where
    U: Send,
    F: FnOnce() -> U + Send,
{
    let workers = par.threads().min(jobs.len()).max(1);
    if workers == 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    // Striped assignment: worker w takes jobs w, w+workers, ... This
    // keeps long jobs spread across workers without a queue.
    let mut slots: Vec<Option<F>> = jobs.into_iter().map(Some).collect();
    let stripes: Vec<Vec<(usize, F)>> = {
        let mut stripes: Vec<Vec<(usize, F)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, slot) in slots.iter_mut().enumerate() {
            let job = slot.take().expect("job taken once");
            stripes[i % workers].push((i, job));
        }
        stripes
    };
    let mut tagged: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = stripes
            .into_iter()
            .map(|stripe| {
                scope.spawn(move || {
                    stripe
                        .into_iter()
                        .map(|(i, job)| (i, job()))
                        .collect::<Vec<(usize, U)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_run worker panicked"))
            .collect()
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_matches_map() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let got = par_map(Parallelism::sequential(), items, |x| x * 3 + 1);
        assert_eq!(got, expect);
    }

    #[test]
    fn parallel_preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in 1..=8 {
            let got = par_map(Parallelism::fixed(threads), items.clone(), |x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn indexed_variant_sees_true_indices() {
        let items: Vec<u32> = (0..500).collect();
        let got = par_map_indexed(Parallelism::fixed(4), items, |i, x| (i, x));
        for (i, (idx, x)) in got.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*x as usize, i);
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        // len < MIN_ITEMS_PER_THREAD must not fork (observable only via
        // correctness here, but exercises the workers == 1 branch).
        let got = par_map(Parallelism::fixed(8), vec![1, 2, 3], |x| x + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn every_len_threads_pair_is_panic_free_and_ordered() {
        // Regression: len = 305 at threads = 19 used to pick 19 workers
        // with chunk = 17, making split_off(18 * 17 = 306) panic. Sweep
        // lengths around chunk-rounding boundaries against a wide thread
        // range, including counts far above any real machine.
        let lens: Vec<usize> = (0..=40)
            .chain([63, 64, 65, 127, 128, 129, 255, 304, 305, 306, 500, 1000])
            .collect();
        for len in lens {
            let items: Vec<usize> = (0..len).collect();
            let expect: Vec<usize> = items.iter().map(|x| x + 7).collect();
            for threads in 1..=64 {
                let got = par_map(Parallelism::fixed(threads), items.clone(), |x| x + 7);
                assert_eq!(got, expect, "len = {len}, threads = {threads}");
            }
        }
    }

    #[test]
    fn empty_input() {
        let got: Vec<i32> = par_map(Parallelism::fixed(4), Vec::<i32>::new(), |x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn par_run_returns_in_call_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10usize)
            .map(|i| Box::new(move || i * 7) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = par_run(Parallelism::fixed(3), jobs);
        assert_eq!(got, (0..10usize).map(|i| i * 7).collect::<Vec<_>>());
    }

    /// Installs a no-op panic hook for the duration of a test so the
    /// intentionally-caught panics below don't spam stderr. The hook is
    /// process-global; tests using this run with the default hook gone,
    /// which is fine because they expect their panics to be caught.
    fn quiet_panics<R>(body: impl FnOnce() -> R) -> R {
        std::panic::set_hook(Box::new(|_| {}));
        let out = body();
        let _ = std::panic::take_hook();
        out
    }

    #[test]
    fn try_par_map_matches_par_map_on_clean_runs() {
        let items: Vec<usize> = (0..700).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 11).collect();
        for threads in [1, 2, 3, 7, 16] {
            let got = try_par_map(Parallelism::fixed(threads), items.clone(), |x| x * 11).unwrap();
            assert_eq!(got.values, expect, "threads = {threads}");
            assert_eq!(got.retried_chunks, 0, "threads = {threads}");
        }
    }

    #[test]
    fn persistent_panic_surfaces_as_typed_error_with_first_item() {
        quiet_panics(|| {
            let items: Vec<usize> = (0..600).collect();
            for threads in [1, 4, 9] {
                let err =
                    try_par_map_indexed(Parallelism::fixed(threads), items.clone(), |i, x| {
                        assert!(i != 137, "poisoned item {i}");
                        x + 1
                    })
                    .unwrap_err();
                assert_eq!(err.first_item, 137, "threads = {threads}");
                assert!(
                    err.message.contains("poisoned item 137"),
                    "threads = {threads}: message was {:?}",
                    err.message
                );
            }
        });
    }

    #[test]
    fn transient_panic_is_recovered_by_the_sequential_retry() {
        use std::sync::atomic::{AtomicBool, Ordering};
        quiet_panics(|| {
            let items: Vec<usize> = (0..600).collect();
            let expect: Vec<usize> = items.iter().map(|x| x * 2).collect();
            for threads in [1, 4, 9] {
                let flaked = AtomicBool::new(false);
                let got =
                    try_par_map_indexed(Parallelism::fixed(threads), items.clone(), |i, x| {
                        if i == 42 && !flaked.swap(true, Ordering::SeqCst) {
                            panic!("transient fault");
                        }
                        x * 2
                    })
                    .unwrap();
                assert_eq!(got.values, expect, "threads = {threads}");
                assert_eq!(got.retried_chunks, 1, "threads = {threads}");
            }
        });
    }

    #[test]
    fn try_par_map_empty_input() {
        let got = try_par_map(Parallelism::fixed(4), Vec::<i32>::new(), |x| x).unwrap();
        assert!(got.values.is_empty());
        assert_eq!(got.retried_chunks, 0);
    }

    #[test]
    fn worker_panic_display_names_the_item() {
        let wp = WorkerPanic {
            first_item: 9,
            message: "boom".into(),
        };
        assert_eq!(
            wp.to_string(),
            "worker panicked on item 9 (retried once): boom"
        );
    }

    #[test]
    fn fixed_clamps_zero_to_one() {
        assert_eq!(Parallelism::fixed(0).threads(), 1);
        assert!(Parallelism::fixed(0).is_sequential());
        assert!(!Parallelism::fixed(2).is_sequential());
    }
}
