//! *RAII* [7]: total-travel-distance-minimising insertion with a
//! spatio-temporal index.
//!
//! Ma et al.'s T-Share-style dispatcher "minimizes the total travel
//! distance of taxis by using spatio-temporal indices to encode the
//! location and time of passenger requests and taxis". Reproduced here as
//! a grid-indexed greedy: each request (in arrival order) either takes the
//! idle taxi with the smallest added driving distance or joins an
//! already-formed group whose re-optimised route grows the least — always
//! within the detour budget and seat capacity.

use crate::util::{best_compliant_route, clone_or_build_taxi_grid, fits, group_assignment};
use o2o_core::shared_route::MAX_GROUP_SIZE;
use o2o_core::{PreferenceParams, SharingSchedule};
use o2o_geo::{GridIndex, Metric};
use o2o_obs as obs;
use o2o_trace::{Request, Taxi};

/// The RAII sharing baseline; see the module docs.
///
/// # Examples
///
/// ```
/// use o2o_baselines::RaiiDispatcher;
/// use o2o_core::PreferenceParams;
/// use o2o_geo::{Euclidean, Point};
/// use o2o_trace::{Request, RequestId, Taxi, TaxiId};
///
/// let d = RaiiDispatcher::new(Euclidean, PreferenceParams::default());
/// let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
/// let requests = vec![
///     Request::new(RequestId(0), 0, Point::new(1.0, 0.0), Point::new(9.0, 0.0)),
///     Request::new(RequestId(1), 0, Point::new(2.0, 0.0), Point::new(8.0, 0.0)),
/// ];
/// let s = d.dispatch(&taxis, &requests);
/// assert_eq!(s.served_count(), 2); // both share the single taxi
/// ```
#[derive(Debug, Clone)]
pub struct RaiiDispatcher<M> {
    metric: M,
    params: PreferenceParams,
    max_group_size: usize,
}

impl<M: Metric> RaiiDispatcher<M> {
    /// Creates the dispatcher with the paper's group bound (3).
    #[must_use]
    pub fn new(metric: M, params: PreferenceParams) -> Self {
        Self::with_max_group_size(metric, params, 3)
    }

    /// Creates the dispatcher with an explicit group bound.
    ///
    /// # Panics
    ///
    /// Panics if `max_group_size` is outside `1..=4`.
    #[must_use]
    pub fn with_max_group_size(metric: M, params: PreferenceParams, max_group_size: usize) -> Self {
        assert!(
            (1..=MAX_GROUP_SIZE).contains(&max_group_size),
            "max_group_size {max_group_size} outside supported range"
        );
        RaiiDispatcher {
            metric,
            params,
            max_group_size,
        }
    }

    /// Dispatches the frame.
    #[must_use]
    pub fn dispatch(&self, taxis: &[Taxi], requests: &[Request]) -> SharingSchedule {
        self.dispatch_with_grid(taxis, requests, None)
    }

    /// [`dispatch`](Self::dispatch) reusing a pre-built taxi grid (payload
    /// = index into `taxis`), e.g. the one the simulation engine shares
    /// across policies each frame. The grid is cloned — RAII consumes it
    /// destructively, removing each taxi that starts a group. `None`
    /// builds a private grid as before.
    #[must_use]
    pub fn dispatch_with_grid(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        grid: Option<&GridIndex<usize>>,
    ) -> SharingSchedule {
        let _span = obs::span("insertion_scan");
        if taxis.is_empty() || requests.is_empty() {
            return SharingSchedule {
                assignments: Vec::new(),
                unserved: requests.iter().map(|r| r.id).collect(),
            };
        }
        let mut idle = clone_or_build_taxi_grid(grid, taxis, requests);
        // groups[g] = (taxi index, member request indices, current drive)
        let mut groups: Vec<(usize, Vec<usize>, f64)> = Vec::new();
        let mut unserved = Vec::new();
        for (j, r) in requests.iter().enumerate() {
            let mut best: Option<(f64, Option<usize>, usize)> = None; // (Δ, group, taxi)
                                                                      // Option A: nearest idle taxis, alone.
            for cand in idle.k_nearest(r.pickup, 8.min(idle.len())) {
                let t = &taxis[cand.item];
                if t.seats < r.passengers {
                    continue;
                }
                let delta =
                    self.metric.distance(t.location, r.pickup) + r.trip_distance(&self.metric);
                if best.is_none_or(|(b, _, _)| delta < b) {
                    best = Some((delta, None, cand.item));
                }
            }
            // Option B: join an existing group (route re-optimised).
            for (gi, (ti, members, drive)) in groups.iter().enumerate() {
                if members.len() >= self.max_group_size {
                    continue;
                }
                let taxi = &taxis[*ti];
                let mut group: Vec<Request> = members.iter().map(|&m| requests[m]).collect();
                group.push(*r);
                if !fits(taxi, &group) {
                    continue;
                }
                if let Some(plan) = best_compliant_route(&self.metric, &self.params, taxi, &group) {
                    let new_drive = plan.total_drive(&self.metric, taxi.location);
                    let delta = new_drive - drive;
                    if best.is_none_or(|(b, _, _)| delta < b) {
                        best = Some((delta, Some(gi), *ti));
                    }
                }
            }
            match best {
                Some((_, Some(gi), ti)) => {
                    groups[gi].1.push(j);
                    let taxi = &taxis[ti];
                    let group: Vec<Request> = groups[gi].1.iter().map(|&m| requests[m]).collect();
                    let plan = best_compliant_route(&self.metric, &self.params, taxi, &group)
                        .expect("was compliant when evaluated");
                    groups[gi].2 = plan.total_drive(&self.metric, taxi.location);
                }
                Some((delta, None, ti)) => {
                    idle.remove(&ti, taxis[ti].location);
                    groups.push((ti, vec![j], delta));
                }
                None => unserved.push(r.id),
            }
        }
        let assignments = groups
            .into_iter()
            .map(|(ti, members, _)| {
                let taxi = &taxis[ti];
                let group: Vec<Request> = members.iter().map(|&m| requests[m]).collect();
                let plan = best_compliant_route(&self.metric, &self.params, taxi, &group)
                    .expect("final groups are compliant");
                group_assignment(&self.metric, &self.params, taxi, &group, plan)
            })
            .collect();
        SharingSchedule {
            assignments,
            unserved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::{Euclidean, Point};
    use o2o_trace::{RequestId, TaxiId};

    fn taxi(id: u64, x: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, 0.0))
    }

    fn req(id: u64, s: f64, d: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(s, 0.0), Point::new(d, 0.0))
    }

    fn dispatcher() -> RaiiDispatcher<Euclidean> {
        RaiiDispatcher::new(
            Euclidean,
            PreferenceParams::unbounded().with_detour_threshold(5.0),
        )
    }

    #[test]
    fn chains_compatible_requests_onto_one_taxi() {
        let taxis = vec![taxi(0, -1.0), taxi(1, -50.0)];
        let requests = vec![req(0, 0.0, 10.0), req(1, 2.0, 8.0)];
        let s = dispatcher().dispatch(&taxis, &requests);
        assert_eq!(s.served_count(), 2);
        let g = s.group_of(TaxiId(0)).expect("near taxi serves the pair");
        assert_eq!(g.members.len(), 2);
    }

    #[test]
    fn group_size_cap_respected() {
        let taxis = vec![taxi(0, 0.0)];
        let requests: Vec<Request> = (0..5).map(|i| req(i, i as f64, i as f64 + 10.0)).collect();
        let d = RaiiDispatcher::with_max_group_size(
            Euclidean,
            PreferenceParams::unbounded().with_detour_threshold(50.0),
            3,
        );
        let s = d.dispatch(&taxis, &requests);
        for a in &s.assignments {
            assert!(a.members.len() <= 3);
        }
        assert_eq!(s.served_count() + s.unserved.len(), 5);
    }

    #[test]
    fn detour_budget_respected() {
        let s = dispatcher().dispatch(
            &[taxi(0, 0.0)],
            &[req(0, 0.0, 20.0), req(1, 10.0, 30.0), req(2, 5.0, 25.0)],
        );
        for a in &s.assignments {
            for &d in &a.detours {
                assert!(d <= 5.0 + 1e-9, "detour {d} over budget");
            }
        }
    }

    #[test]
    fn prefers_smaller_added_distance() {
        // A far idle taxi vs joining the near group: joining wins.
        let taxis = vec![taxi(0, 0.0), taxi(1, 100.0)];
        let requests = vec![req(0, 1.0, 9.0), req(1, 2.0, 8.0)];
        let s = dispatcher().dispatch(&taxis, &requests);
        assert!(s.group_of(TaxiId(1)).is_none(), "far taxi stays idle");
        assert_eq!(s.group_of(TaxiId(0)).unwrap().members.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let s = dispatcher().dispatch(&[], &[]);
        assert_eq!(s.served_count(), 0);
        let s = dispatcher().dispatch(&[], &[req(0, 0.0, 1.0)]);
        assert_eq!(s.unserved, vec![RequestId(0)]);
    }

    #[test]
    fn shared_grid_serves_the_same_frame() {
        use o2o_core::build_taxi_grid;
        let taxis = vec![taxi(0, -1.0), taxi(1, -50.0)];
        let requests = vec![req(0, 0.0, 10.0), req(1, 2.0, 8.0)];
        let grid = build_taxi_grid(&taxis);
        let s = dispatcher().dispatch_with_grid(&taxis, &requests, Some(&grid));
        assert_eq!(s.served_count(), 2);
        let g = s.group_of(TaxiId(0)).expect("near taxi serves the pair");
        assert_eq!(g.members.len(), 2);
    }

    #[test]
    fn every_request_accounted_for() {
        let taxis: Vec<Taxi> = (0..3).map(|i| taxi(i, i as f64 * 5.0)).collect();
        let requests: Vec<Request> = (0..10)
            .map(|i| req(i, (i as f64) * 1.7 - 8.0, (i as f64) * 1.3))
            .collect();
        let s = dispatcher().dispatch(&taxis, &requests);
        let mut seen = std::collections::HashSet::new();
        for a in &s.assignments {
            for &m in &a.members {
                assert!(seen.insert(m));
            }
        }
        for &u in &s.unserved {
            assert!(seen.insert(u));
        }
        assert_eq!(seen.len(), requests.len());
    }
}
