//! Shared helpers for baseline dispatchers.

use o2o_core::shared_route::{best_route_within_detour, RoutePlan};
use o2o_core::{GroupAssignment, PreferenceParams, Schedule};
use o2o_geo::{BBox, GridIndex, Metric};
use o2o_trace::{Request, Taxi};

/// Debug-asserts that a caller-supplied shared taxi grid covers exactly
/// the frame's `taxis` slice — the contract every baseline's
/// `dispatch_with_grid` states. A `None` grid trivially passes.
pub fn debug_assert_grid_covers(grid: Option<&GridIndex<usize>>, taxis: &[Taxi]) {
    if let Some(g) = grid {
        debug_assert_eq!(g.len(), taxis.len(), "grid must cover exactly `taxis`");
    }
}

/// The frame's idle-taxi grid (payload = index into `taxis`) for a
/// baseline that consumes it destructively: a caller-supplied shared
/// grid is validated ([`debug_assert_grid_covers`]) and cloned, otherwise
/// a private grid is built over the frame's taxi locations and request
/// pickups with the baselines' shared sizing heuristic (bounding box
/// split into ~32 cells per side, floored at 0.25).
///
/// # Panics
///
/// Panics if `grid` is `None` and both `taxis` and `requests` are empty
/// (no bounding box); callers early-return on empty frames first.
#[must_use]
pub fn clone_or_build_taxi_grid(
    grid: Option<&GridIndex<usize>>,
    taxis: &[Taxi],
    requests: &[Request],
) -> GridIndex<usize> {
    match grid {
        Some(g) => {
            debug_assert_grid_covers(Some(g), taxis);
            g.clone()
        }
        None => {
            let bbox = BBox::from_points(
                taxis
                    .iter()
                    .map(|t| t.location)
                    .chain(requests.iter().map(|r| r.pickup)),
            )
            .expect("non-empty");
            let cell = (bbox.width().max(bbox.height()) / 32.0).max(0.25);
            let mut idx = GridIndex::new(bbox, cell);
            for (i, t) in taxis.iter().enumerate() {
                idx.insert(i, t.location);
            }
            idx
        }
    }
}

/// Builds a non-sharing [`Schedule`] from `(request index, taxi index)`
/// pairs, attaching the paper's dissatisfaction metrics.
///
/// # Panics
///
/// Panics if a pair index is out of range or the matching is not
/// one-to-one.
#[must_use]
pub fn schedule_from_pairs<M: Metric>(
    metric: &M,
    params: &PreferenceParams,
    taxis: &[Taxi],
    requests: &[Request],
    pairs: &[(usize, usize)],
) -> Schedule {
    let mut request_to_taxi = vec![None; requests.len()];
    let mut passenger_cost = vec![None; requests.len()];
    let mut taxi_cost = vec![None; taxis.len()];
    for &(rj, ti) in pairs {
        assert!(request_to_taxi[rj].is_none(), "request matched twice");
        assert!(taxi_cost[ti].is_none(), "taxi matched twice");
        let d = metric.distance(taxis[ti].location, requests[rj].pickup);
        request_to_taxi[rj] = Some(ti);
        passenger_cost[rj] = Some(d);
        taxi_cost[ti] = Some(d - params.alpha * requests[rj].trip_distance(metric));
    }
    Schedule::from_parts(
        requests.iter().map(|r| r.id).collect(),
        taxis.iter().map(|t| t.id).collect(),
        request_to_taxi,
        passenger_cost,
        taxi_cost,
    )
}

/// The shortest detour-compliant route for `group` driven by a taxi
/// starting at `taxi.location`, or `None` when no stop order keeps every
/// member's detour within θ.
///
/// The detour budget is a hard constraint of the search
/// ([`best_route_within_detour`]), which is what the insertion-style
/// baselines need: "take the group iff *some* compliant order exists".
#[must_use]
pub fn best_compliant_route<M: Metric>(
    metric: &M,
    params: &PreferenceParams,
    taxi: &Taxi,
    group: &[Request],
) -> Option<RoutePlan> {
    best_route_within_detour(metric, Some(taxi.location), group, params.detour_threshold)
}

/// Builds a [`GroupAssignment`] (with the paper's sharing metrics) for a
/// taxi serving `group` along `plan`.
#[must_use]
pub fn group_assignment<M: Metric>(
    metric: &M,
    params: &PreferenceParams,
    taxi: &Taxi,
    group: &[Request],
    plan: RoutePlan,
) -> GroupAssignment {
    let approach = metric.distance(taxi.location, plan.first_stop());
    let wait_distances: Vec<f64> = (0..group.len())
        .map(|m| approach + plan.pickup_offset[m])
        .collect();
    let detours: Vec<f64> = group
        .iter()
        .enumerate()
        .map(|(m, r)| plan.detour(m, r.trip_distance(metric)))
        .collect();
    let passenger_costs: Vec<f64> = wait_distances
        .iter()
        .zip(&detours)
        .map(|(w, d)| w + params.beta * d)
        .collect();
    let sum_trips: f64 = group.iter().map(|r| r.trip_distance(metric)).sum();
    let total_drive = approach + plan.internal_length;
    GroupAssignment {
        taxi: taxi.id,
        members: group.iter().map(|r| r.id).collect(),
        route: plan,
        wait_distances,
        detours,
        passenger_costs,
        taxi_cost: total_drive - (params.alpha + 1.0) * sum_trips,
        total_drive,
    }
}

/// Whether `group` fits the free seats of `taxi`.
#[must_use]
pub fn fits(taxi: &Taxi, group: &[Request]) -> bool {
    group.iter().map(|r| u16::from(r.passengers)).sum::<u16>() <= u16::from(taxi.seats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::{Euclidean, Point};
    use o2o_trace::{RequestId, TaxiId};

    fn taxi(id: u64, x: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, 0.0))
    }

    fn req(id: u64, s: f64, d: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(s, 0.0), Point::new(d, 0.0))
    }

    #[test]
    fn schedule_from_pairs_attaches_metrics() {
        let taxis = vec![taxi(0, 0.0), taxi(1, 10.0)];
        let requests = vec![req(0, 1.0, 5.0)];
        let s = schedule_from_pairs(
            &Euclidean,
            &PreferenceParams::paper(),
            &taxis,
            &requests,
            &[(0, 0)],
        );
        assert_eq!(s.passenger_dissatisfaction(RequestId(0)), Some(1.0));
        assert_eq!(s.taxi_dissatisfaction(TaxiId(0)), Some(1.0 - 4.0));
        assert_eq!(s.request_of(TaxiId(1)), None);
    }

    #[test]
    #[should_panic(expected = "taxi matched twice")]
    fn duplicate_taxi_rejected() {
        let taxis = vec![taxi(0, 0.0)];
        let requests = vec![req(0, 1.0, 2.0), req(1, 3.0, 4.0)];
        let _ = schedule_from_pairs(
            &Euclidean,
            &PreferenceParams::paper(),
            &taxis,
            &requests,
            &[(0, 0), (1, 0)],
        );
    }

    #[test]
    fn compliant_route_respects_theta() {
        let t = taxi(0, 0.0);
        // Crossing trips force a big detour on any genuinely-shared order.
        let a = Request::new(RequestId(0), 0, Point::new(0.0, 0.0), Point::new(20.0, 0.0));
        let b = Request::new(
            RequestId(1),
            0,
            Point::new(10.0, 5.0),
            Point::new(10.0, -5.0),
        );
        let tight = PreferenceParams::paper().with_detour_threshold(1.0);
        assert!(best_compliant_route(&Euclidean, &tight, &t, &[a, b]).is_none());
        let loose = PreferenceParams::paper().with_detour_threshold(13.0);
        let plan = best_compliant_route(&Euclidean, &loose, &t, &[a, b])
            .expect("13 km budget admits the interleaving");
        assert!(plan.detour(0, 20.0) <= 13.0 + 1e-9);
        assert!(plan.detour(1, 10.0) <= 13.0 + 1e-9);
    }

    #[test]
    fn group_assignment_metrics_consistent() {
        let params = PreferenceParams::paper();
        let t = taxi(0, -1.0);
        let group = vec![req(0, 0.0, 10.0), req(1, 2.0, 8.0)];
        let plan = best_compliant_route(&Euclidean, &params, &t, &group).unwrap();
        let a = group_assignment(&Euclidean, &params, &t, &group, plan);
        assert_eq!(a.members.len(), 2);
        assert!((a.total_drive - 11.0).abs() < 1e-9);
        assert!((a.taxi_cost - (11.0 - 2.0 * 16.0)).abs() < 1e-9);
        assert_eq!(a.wait_distances.len(), 2);
    }

    #[test]
    fn fits_checks_party_sizes() {
        let t = Taxi::with_seats(TaxiId(0), Point::ORIGIN, 3);
        let small = vec![req(0, 0.0, 1.0), req(1, 0.0, 1.0)];
        assert!(fits(&t, &small));
        let big = vec![
            Request::with_party(RequestId(0), 0, Point::ORIGIN, Point::ORIGIN, 2),
            Request::with_party(RequestId(1), 0, Point::ORIGIN, Point::ORIGIN, 2),
        ];
        assert!(!fits(&t, &big));
    }
}
