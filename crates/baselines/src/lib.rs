//! Literature baselines the paper compares against (§VI.B).
//!
//! Non-sharing (produce an [`o2o_core::Schedule`]):
//!
//! * [`NearDispatcher`] — "greedily dispatches the nearest idle taxi to a
//!   given passenger request" (the *Near* method of Hanna et al. \[3\]),
//! * [`PairDispatcher`] — "distances between passenger requests and taxis
//!   are matching costs; returns a minimum cost matching" (*Pair*),
//! * [`MiniDispatcher`] — "minimizes the maximum cost for a matched pair"
//!   (*Mini*).
//!
//! Sharing (produce an [`o2o_core::SharingSchedule`]):
//!
//! * [`RaiiDispatcher`] — RAII \[7\]: minimises total taxi travel distance
//!   with a spatio-temporal index; here a grid-indexed greedy insertion
//!   with full route re-optimisation per insertion,
//! * [`SarpDispatcher`] — SARP \[8\]: TSP-based insertion of each new
//!   request into an existing route with minimum extra travel distance
//!   (existing stop order preserved),
//! * [`LinDispatcher`] — the ILP formulation of \[6\] solved by its greedy
//!   heuristic: globally cheapest feasible (taxi, group) pairs first.
//!
//! All baselines report the *paper's* dissatisfaction metrics (passenger:
//! `D(t, r^s)` resp. `D_ck(t, r^s) + β·detour`; taxi:
//! `D(t, r^s) − α·D(r^s, r^d)` resp. `D_ck(t) − (α+1)·ΣD`) so results are
//! directly comparable with NSTD/STD — that is exactly the comparison the
//! paper's figures make.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lin;
mod near;
mod pair_mini;
mod raii;
mod sarp;
pub mod util;

pub use lin::LinDispatcher;
pub use near::NearDispatcher;
pub use pair_mini::{MiniDispatcher, PairDispatcher};
pub use raii::RaiiDispatcher;
pub use sarp::SarpDispatcher;
