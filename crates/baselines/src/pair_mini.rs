//! *Pair* (minimum-cost matching) and *Mini* (bottleneck matching)
//! baselines, both from Hanna et al. [3].

use crate::util::schedule_from_pairs;
use o2o_core::{PreferenceParams, Schedule};
use o2o_geo::Metric;
use o2o_matching::hungarian::CostMatrix;
use o2o_matching::{bottleneck_assignment, min_cost_assignment};
use o2o_obs as obs;
use o2o_trace::{Request, Taxi};

/// A cost large enough to never be chosen while other options exist; used
/// to encode seat-infeasible pairs in the dense cost matrices.
const FORBIDDEN: f64 = 1e12;

fn cost_matrix<M: Metric>(metric: &M, taxis: &[Taxi], requests: &[Request]) -> CostMatrix {
    CostMatrix::from_fn(requests.len(), taxis.len(), |j, i| {
        if taxis[i].seats < requests[j].passengers {
            FORBIDDEN
        } else {
            metric.distance(taxis[i].location, requests[j].pickup)
        }
    })
}

/// *Pair*: minimum-total-cost bipartite matching on pick-up distances.
///
/// "A refined method that finds a minimum cost bipartite matching between
/// passenger requests and taxis" — matches `min(|R|, |T|)` pairs while
/// minimising the summed pick-up distance.
///
/// # Examples
///
/// ```
/// use o2o_baselines::PairDispatcher;
/// use o2o_core::PreferenceParams;
/// use o2o_geo::{Euclidean, Point};
/// use o2o_trace::{Request, RequestId, Taxi, TaxiId};
///
/// let d = PairDispatcher::new(Euclidean, PreferenceParams::default());
/// let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
/// let requests = vec![Request::new(
///     RequestId(0), 0, Point::new(1.0, 0.0), Point::new(2.0, 0.0),
/// )];
/// assert_eq!(d.dispatch(&taxis, &requests).served_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PairDispatcher<M> {
    metric: M,
    params: PreferenceParams,
}

impl<M: Metric> PairDispatcher<M> {
    /// Creates the dispatcher (`params` affect only reported metrics).
    #[must_use]
    pub fn new(metric: M, params: PreferenceParams) -> Self {
        PairDispatcher { metric, params }
    }

    /// Dispatches the frame with a Hungarian minimum-cost matching.
    #[must_use]
    pub fn dispatch(&self, taxis: &[Taxi], requests: &[Request]) -> Schedule {
        self.dispatch_with_grid(taxis, requests, None)
    }

    /// [`dispatch`](Self::dispatch) with the engine's shared taxi grid.
    ///
    /// The Hungarian objective is a global sum over a dense cost matrix —
    /// every entry can participate in the optimum, so no distance-based
    /// pruning is sound. The grid is validated (it must cover exactly
    /// `taxis`) but not used; accepting it keeps every policy on the one
    /// engine-maintained grid instead of silently rebuilding its own.
    #[must_use]
    pub fn dispatch_with_grid(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        grid: Option<&o2o_geo::GridIndex<usize>>,
    ) -> Schedule {
        let _span = obs::span("assignment_matching");
        crate::util::debug_assert_grid_covers(grid, taxis);
        let costs = cost_matrix(&self.metric, taxis, requests);
        let assignment = min_cost_assignment(&costs);
        let pairs: Vec<(usize, usize)> = assignment
            .row_to_col
            .iter()
            .enumerate()
            .filter_map(|(j, i)| i.map(|i| (j, i)))
            .filter(|&(j, i)| costs.get(j, i) < FORBIDDEN)
            .collect();
        schedule_from_pairs(&self.metric, &self.params, taxis, requests, &pairs)
    }
}

/// *Mini*: bottleneck matching minimising the maximum pick-up distance.
///
/// "A bipartite matching method that minimizes the maximal cost of a
/// matched request-taxi pair" — the paper's Fig. 4(b) shows its signature:
/// few very-low dissatisfaction passengers, but a bounded tail.
#[derive(Debug, Clone)]
pub struct MiniDispatcher<M> {
    metric: M,
    params: PreferenceParams,
}

impl<M: Metric> MiniDispatcher<M> {
    /// Creates the dispatcher (`params` affect only reported metrics).
    #[must_use]
    pub fn new(metric: M, params: PreferenceParams) -> Self {
        MiniDispatcher { metric, params }
    }

    /// Dispatches the frame with a bottleneck matching.
    #[must_use]
    pub fn dispatch(&self, taxis: &[Taxi], requests: &[Request]) -> Schedule {
        self.dispatch_with_grid(taxis, requests, None)
    }

    /// [`dispatch`](Self::dispatch) with the engine's shared taxi grid;
    /// validated pass-through for the same reason as
    /// [`PairDispatcher::dispatch_with_grid`] (the bottleneck objective is
    /// global over the dense matrix, so pruning is unsound).
    #[must_use]
    pub fn dispatch_with_grid(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        grid: Option<&o2o_geo::GridIndex<usize>>,
    ) -> Schedule {
        let _span = obs::span("assignment_matching");
        crate::util::debug_assert_grid_covers(grid, taxis);
        let costs = cost_matrix(&self.metric, taxis, requests);
        let result = bottleneck_assignment(&costs);
        let pairs: Vec<(usize, usize)> = result
            .pairs
            .into_iter()
            .filter(|&(j, i)| costs.get(j, i) < FORBIDDEN)
            .collect();
        schedule_from_pairs(&self.metric, &self.params, taxis, requests, &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_core::DispatchOutcome;
    use o2o_geo::{Euclidean, Point};
    use o2o_trace::{RequestId, TaxiId};
    use proptest::prelude::*;

    fn taxi(id: u64, x: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, 0.0))
    }

    fn req(id: u64, s: f64) -> Request {
        Request::new(
            RequestId(id),
            0,
            Point::new(s, 0.0),
            Point::new(s + 1.0, 0.0),
        )
    }

    #[test]
    fn pair_minimises_total_distance() {
        // Greedy would give r0 the taxi at 2 (d=1) and r1 the taxi at 12
        // (d=8): total 9. Optimal swaps: (r0→t1: 9) no… compute: taxis at
        // 2 and 12; requests at 3 and 4. Optimal total = |2−3| + |12−4| = 9
        // vs |12−3| + |2−4| = 11.
        let taxis = vec![taxi(0, 2.0), taxi(1, 12.0)];
        let requests = vec![req(0, 3.0), req(1, 4.0)];
        let d = PairDispatcher::new(Euclidean, PreferenceParams::paper());
        let s = d.dispatch(&taxis, &requests);
        let total: f64 = requests
            .iter()
            .map(|r| s.passenger_dissatisfaction(r.id).unwrap())
            .sum();
        assert!((total - 9.0).abs() < 1e-9);
    }

    #[test]
    fn mini_minimises_max_distance() {
        // Taxis at 0 and 10; requests at 1 and 9.
        // Min-total: r0→t0 (1), r1→t1 (1): max 1 (also bottleneck-optimal).
        // Force a trade-off: taxis at 0, 4; requests at 3, 5.
        // Totals: a) r0→t0 (3), r1→t1 (1): max 3, total 4.
        //         b) r0→t1 (1), r1→t0 (5): max 5, total 6.
        let taxis = vec![taxi(0, 0.0), taxi(1, 4.0)];
        let requests = vec![req(0, 3.0), req(1, 5.0)];
        let d = MiniDispatcher::new(Euclidean, PreferenceParams::paper());
        let s = d.dispatch(&taxis, &requests);
        let max = requests
            .iter()
            .map(|r| s.passenger_dissatisfaction(r.id).unwrap())
            .fold(0.0f64, f64::max);
        assert!((max - 3.0).abs() < 1e-9);
    }

    #[test]
    fn seat_infeasible_pairs_are_avoided() {
        let taxis = vec![
            Taxi::with_seats(TaxiId(0), Point::new(0.0, 0.0), 1),
            Taxi::with_seats(TaxiId(1), Point::new(50.0, 0.0), 4),
        ];
        let requests = vec![Request::with_party(
            RequestId(0),
            0,
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            3,
        )];
        for s in [
            PairDispatcher::new(Euclidean, PreferenceParams::paper()).dispatch(&taxis, &requests),
            MiniDispatcher::new(Euclidean, PreferenceParams::paper()).dispatch(&taxis, &requests),
        ] {
            assert_eq!(
                s.assignment_of(RequestId(0)),
                DispatchOutcome::Assigned(TaxiId(1))
            );
        }
    }

    #[test]
    fn supplied_grid_is_a_pure_pass_through() {
        use o2o_core::build_taxi_grid;
        let taxis = vec![taxi(0, 2.0), taxi(1, 12.0), taxi(2, -5.0)];
        let requests = vec![req(0, 3.0), req(1, 4.0)];
        let grid = build_taxi_grid(&taxis);
        let pair = PairDispatcher::new(Euclidean, PreferenceParams::paper());
        let mini = MiniDispatcher::new(Euclidean, PreferenceParams::paper());
        assert_eq!(
            pair.dispatch_with_grid(&taxis, &requests, Some(&grid)),
            pair.dispatch(&taxis, &requests)
        );
        assert_eq!(
            mini.dispatch_with_grid(&taxis, &requests, Some(&grid)),
            mini.dispatch(&taxis, &requests)
        );
    }

    #[test]
    fn empty_frames() {
        let pair = PairDispatcher::new(Euclidean, PreferenceParams::paper());
        let mini = MiniDispatcher::new(Euclidean, PreferenceParams::paper());
        assert_eq!(pair.dispatch(&[], &[]).served_count(), 0);
        assert_eq!(mini.dispatch(&[], &[]).served_count(), 0);
        let requests = vec![req(0, 0.0)];
        assert_eq!(pair.dispatch(&[], &requests).unserved().len(), 1);
        assert_eq!(mini.dispatch(&[], &requests).unserved().len(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Pair's total never exceeds Near-style greedy total; Mini's max
        /// never exceeds Pair's max.
        #[test]
        fn optimality_relations(
            taxi_xs in proptest::collection::vec(-20.0..20.0f64, 1..8),
            req_xs in proptest::collection::vec(-20.0..20.0f64, 1..8),
        ) {
            let taxis: Vec<Taxi> = taxi_xs.iter().enumerate()
                .map(|(i, &x)| taxi(i as u64, x)).collect();
            let requests: Vec<Request> = req_xs.iter().enumerate()
                .map(|(j, &x)| req(j as u64, x)).collect();
            let params = PreferenceParams::paper();
            let pair = PairDispatcher::new(Euclidean, params).dispatch(&taxis, &requests);
            let mini = MiniDispatcher::new(Euclidean, params).dispatch(&taxis, &requests);
            let near = crate::NearDispatcher::new(Euclidean, params)
                .dispatch(&taxis, &requests);
            // All match min(|R|, |T|) pairs (all-finite costs).
            let full = taxis.len().min(requests.len());
            prop_assert_eq!(pair.served_count(), full);
            prop_assert_eq!(mini.served_count(), full);
            prop_assert_eq!(near.served_count(), full);
            let total = |s: &Schedule| s.total_passenger_dissatisfaction();
            prop_assert!(total(&pair) <= total(&near) + 1e-9);
            let max = |s: &Schedule| {
                requests.iter()
                    .filter_map(|r| s.passenger_dissatisfaction(r.id))
                    .fold(0.0f64, f64::max)
            };
            prop_assert!(max(&mini) <= max(&pair) + 1e-9);
            prop_assert!(max(&mini) <= max(&near) + 1e-9);
        }
    }
}
