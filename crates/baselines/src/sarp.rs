//! *SARP* [8]: TSP-style insertion of new requests into existing routes.
//!
//! Li et al.'s share-a-ride planner "inserts [new requests] into the
//! passenger route with minimum extra travel distances". The defining
//! difference from RAII is that the *existing stop order is preserved*:
//! only the new pick-up and drop-off positions are searched (the classic
//! cheapest-insertion heuristic), which is faster but can miss better
//! reorderings.

use crate::util::{clone_or_build_taxi_grid, fits, group_assignment};
use o2o_core::shared_route::{RoutePlan, Stop, StopKind, MAX_GROUP_SIZE};
use o2o_core::{PreferenceParams, SharingSchedule};
use o2o_geo::{GridIndex, Metric, Point};
use o2o_obs as obs;
use o2o_trace::{Request, Taxi};

/// The SARP sharing baseline; see the module docs.
#[derive(Debug, Clone)]
pub struct SarpDispatcher<M> {
    metric: M,
    params: PreferenceParams,
    max_group_size: usize,
}

/// One stop of a draft route: `(request index, kind, location)`.
type DraftStop = (usize, StopKind, Point);

/// A route under construction: ordered stops, one per pickup/dropoff.
#[derive(Debug, Clone)]
struct DraftRoute {
    taxi: usize,
    /// Stops in visiting order.
    stops: Vec<DraftStop>,
    members: Vec<usize>,
}

impl<M: Metric> SarpDispatcher<M> {
    /// Creates the dispatcher with the paper's group bound (3).
    #[must_use]
    pub fn new(metric: M, params: PreferenceParams) -> Self {
        Self::with_max_group_size(metric, params, 3)
    }

    /// Creates the dispatcher with an explicit group bound.
    ///
    /// # Panics
    ///
    /// Panics if `max_group_size` is outside `1..=4`.
    #[must_use]
    pub fn with_max_group_size(metric: M, params: PreferenceParams, max_group_size: usize) -> Self {
        assert!(
            (1..=MAX_GROUP_SIZE).contains(&max_group_size),
            "max_group_size {max_group_size} outside supported range"
        );
        SarpDispatcher {
            metric,
            params,
            max_group_size,
        }
    }

    fn route_length(&self, start: Point, stops: &[(usize, StopKind, Point)]) -> f64 {
        let mut len = 0.0;
        let mut cur = start;
        for &(_, _, p) in stops {
            len += self.metric.distance(cur, p);
            cur = p;
        }
        len
    }

    /// Onboard distance of each member along `stops` (by request index).
    fn onboard(&self, stops: &[(usize, StopKind, Point)]) -> std::collections::HashMap<usize, f64> {
        let mut out = std::collections::HashMap::new();
        let mut at_pickup: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        let mut along = 0.0;
        let mut prev: Option<Point> = None;
        for &(m, kind, p) in stops {
            if let Some(prev) = prev {
                along += self.metric.distance(prev, p);
            }
            prev = Some(p);
            match kind {
                StopKind::Pickup => {
                    at_pickup.insert(m, along);
                }
                StopKind::Dropoff => {
                    out.insert(m, along - at_pickup[&m]);
                }
            }
        }
        out
    }

    /// Best insertion of `r` into `draft` preserving existing stop order.
    /// Returns `(added length, new stops)` or `None` when no insertion
    /// keeps every member within the detour budget.
    fn best_insertion(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        draft: &DraftRoute,
        j: usize,
    ) -> Option<(f64, Vec<DraftStop>)> {
        let r = &requests[j];
        let start = taxis[draft.taxi].location;
        let old_len = self.route_length(start, &draft.stops);
        let n = draft.stops.len();
        let mut best: Option<(f64, Vec<DraftStop>)> = None;
        for pi in 0..=n {
            for di in pi..=n {
                let mut stops = draft.stops.clone();
                stops.insert(pi, (j, StopKind::Pickup, r.pickup));
                stops.insert(di + 1, (j, StopKind::Dropoff, r.dropoff));
                let len = self.route_length(start, &stops);
                let added = len - old_len;
                if best.as_ref().is_some_and(|(b, _)| added >= *b) {
                    continue;
                }
                // Genuine sharing: the vehicle may not run empty strictly
                // between the first pick-up and the last drop-off
                // (appending a whole trip after the route is a
                // re-dispatch, not a shared ride).
                let mut occupancy = 0usize;
                let mut empty_mid_route = false;
                for (idx, &(_, kind, _)) in stops.iter().enumerate() {
                    match kind {
                        StopKind::Pickup => occupancy += 1,
                        StopKind::Dropoff => {
                            occupancy -= 1;
                            if occupancy == 0 && idx + 1 < stops.len() {
                                empty_mid_route = true;
                                break;
                            }
                        }
                    }
                }
                if empty_mid_route {
                    continue;
                }
                // Detour compliance for every member, including the new one.
                let onboard = self.onboard(&stops);
                let compliant = draft.members.iter().chain(std::iter::once(&j)).all(|&m| {
                    let direct = requests[m].trip_distance(&self.metric);
                    onboard[&m] - direct <= self.params.detour_threshold + 1e-9
                });
                if compliant {
                    best = Some((added, stops));
                }
            }
        }
        best
    }

    /// Dispatches the frame.
    #[must_use]
    pub fn dispatch(&self, taxis: &[Taxi], requests: &[Request]) -> SharingSchedule {
        self.dispatch_with_grid(taxis, requests, None)
    }

    /// [`dispatch`](Self::dispatch) reusing a pre-built taxi grid (payload
    /// = index into `taxis`), e.g. the one the simulation engine maintains
    /// incrementally across frames. The grid is cloned — SARP consumes it
    /// destructively, removing each taxi that opens a new route. `None`
    /// builds a private grid as before.
    #[must_use]
    pub fn dispatch_with_grid(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        grid: Option<&GridIndex<usize>>,
    ) -> SharingSchedule {
        let _span = obs::span("insertion_scan");
        if taxis.is_empty() || requests.is_empty() {
            return SharingSchedule {
                assignments: Vec::new(),
                unserved: requests.iter().map(|r| r.id).collect(),
            };
        }
        let mut idle = clone_or_build_taxi_grid(grid, taxis, requests);
        let mut drafts: Vec<DraftRoute> = Vec::new();
        let mut unserved = Vec::new();
        for (j, r) in requests.iter().enumerate() {
            enum Choice {
                NewRoute(usize),
                Insert(usize, Vec<DraftStop>),
            }
            let mut best: Option<(f64, Choice)> = None;
            for cand in idle.k_nearest(r.pickup, 8.min(idle.len())) {
                let t = &taxis[cand.item];
                if t.seats < r.passengers {
                    continue;
                }
                let added =
                    self.metric.distance(t.location, r.pickup) + r.trip_distance(&self.metric);
                if best.as_ref().is_none_or(|(b, _)| added < *b) {
                    best = Some((added, Choice::NewRoute(cand.item)));
                }
            }
            for (di, draft) in drafts.iter().enumerate() {
                if draft.members.len() >= self.max_group_size {
                    continue;
                }
                let mut group: Vec<Request> = draft.members.iter().map(|&m| requests[m]).collect();
                group.push(*r);
                if !fits(&taxis[draft.taxi], &group) {
                    continue;
                }
                if let Some((added, stops)) = self.best_insertion(taxis, requests, draft, j) {
                    if best.as_ref().is_none_or(|(b, _)| added < *b) {
                        best = Some((added, Choice::Insert(di, stops)));
                    }
                }
            }
            match best {
                Some((_, Choice::NewRoute(ti))) => {
                    idle.remove(&ti, taxis[ti].location);
                    drafts.push(DraftRoute {
                        taxi: ti,
                        stops: vec![
                            (j, StopKind::Pickup, r.pickup),
                            (j, StopKind::Dropoff, r.dropoff),
                        ],
                        members: vec![j],
                    });
                }
                Some((_, Choice::Insert(di, stops))) => {
                    drafts[di].stops = stops;
                    drafts[di].members.push(j);
                }
                None => unserved.push(r.id),
            }
        }
        let assignments = drafts
            .into_iter()
            .map(|draft| {
                let taxi = &taxis[draft.taxi];
                let group: Vec<Request> = draft.members.iter().map(|&m| requests[m]).collect();
                let plan = self.plan_from_stops(&draft, &group);
                group_assignment(&self.metric, &self.params, taxi, &group, plan)
            })
            .collect();
        SharingSchedule {
            assignments,
            unserved,
        }
    }

    /// Converts a draft's stop list into a [`RoutePlan`] with per-member
    /// accounting (members renumbered to group-local indices).
    fn plan_from_stops(&self, draft: &DraftRoute, group: &[Request]) -> RoutePlan {
        let local: std::collections::HashMap<usize, usize> = draft
            .members
            .iter()
            .enumerate()
            .map(|(li, &m)| (m, li))
            .collect();
        let mut stops = Vec::with_capacity(draft.stops.len());
        let mut pickup_offset = vec![0.0; group.len()];
        let mut onboard = vec![0.0; group.len()];
        let mut along = 0.0;
        let mut prev: Option<Point> = None;
        for &(m, kind, p) in &draft.stops {
            if let Some(prev) = prev {
                along += self.metric.distance(prev, p);
            }
            prev = Some(p);
            let li = local[&m];
            match kind {
                StopKind::Pickup => pickup_offset[li] = along,
                StopKind::Dropoff => onboard[li] = along - pickup_offset[li],
            }
            stops.push(Stop {
                member: li,
                kind,
                location: p,
            });
        }
        RoutePlan {
            stops,
            internal_length: along,
            pickup_offset,
            onboard_distance: onboard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::Euclidean;
    use o2o_trace::{RequestId, TaxiId};

    fn taxi(id: u64, x: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, 0.0))
    }

    fn req(id: u64, s: f64, d: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(s, 0.0), Point::new(d, 0.0))
    }

    fn dispatcher() -> SarpDispatcher<Euclidean> {
        SarpDispatcher::new(
            Euclidean,
            PreferenceParams::unbounded().with_detour_threshold(5.0),
        )
    }

    #[test]
    fn inserts_compatible_request_into_route() {
        let taxis = vec![taxi(0, -1.0)];
        let requests = vec![req(0, 0.0, 10.0), req(1, 2.0, 8.0)];
        let s = dispatcher().dispatch(&taxis, &requests);
        assert_eq!(s.served_count(), 2);
        let a = s.group_of(TaxiId(0)).unwrap();
        assert_eq!(a.members.len(), 2);
        // Optimal insertion yields the chained route of length 11.
        assert!((a.total_drive - 11.0).abs() < 1e-9);
        assert_eq!(a.detours, vec![0.0, 0.0]);
    }

    #[test]
    fn existing_order_is_preserved() {
        // The second trip nests inside the first; SARP may only insert
        // around the existing stops, never reorder them.
        let taxis = vec![taxi(0, 0.0)];
        let requests = vec![req(0, 5.0, 6.0), req(1, 4.5, 5.5)];
        let s = dispatcher().dispatch(&taxis, &requests);
        let a = &s.assignments[0];
        // First request's stops must still appear in their original
        // relative order.
        let positions: Vec<usize> = a
            .route
            .stops
            .iter()
            .enumerate()
            .filter(|(_, st)| st.member == 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 2);
        assert!(positions[0] < positions[1]);
        assert_eq!(s.served_count(), 2);
    }

    #[test]
    fn detour_budget_blocks_bad_insertions() {
        let params = PreferenceParams::unbounded().with_detour_threshold(0.5);
        let d = SarpDispatcher::new(Euclidean, params);
        // A cross-town request: any *interleaved* insertion into taxi 0's
        // route blows the 0.5 km budget, so the only sharing option is
        // appending it after the first trip — still detour-compliant.
        let taxis = vec![taxi(0, 0.0), taxi(1, 60.0)];
        let requests = vec![
            req(0, 0.0, 20.0),
            Request::new(
                RequestId(1),
                0,
                Point::new(10.0, 8.0),
                Point::new(10.0, -8.0),
            ),
        ];
        let s = d.dispatch(&taxis, &requests);
        assert_eq!(s.served_count(), 2);
        for a in &s.assignments {
            for &det in &a.detours {
                assert!(det <= 0.5 + 1e-9, "detour {det} over budget");
            }
        }
    }

    #[test]
    fn accounting_is_consistent() {
        let taxis = vec![taxi(0, 0.0)];
        let requests = vec![req(0, 1.0, 9.0), req(1, 3.0, 7.0)];
        let s = dispatcher().dispatch(&taxis, &requests);
        let a = &s.assignments[0];
        // Wait = approach + pickup offset; member 0 boards first.
        assert!((a.wait_distances[0] - 1.0).abs() < 1e-9);
        let polyline: Vec<Point> = a.route.stops.iter().map(|st| st.location).collect();
        assert!((Euclidean.path_length(&polyline) - a.route.internal_length).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let s = dispatcher().dispatch(&[], &[]);
        assert_eq!(s.served_count(), 0);
        let s = dispatcher().dispatch(&[], &[req(0, 0.0, 1.0)]);
        assert_eq!(s.unserved, vec![RequestId(0)]);
    }

    #[test]
    fn shared_grid_matches_private_grid() {
        use o2o_core::build_taxi_grid;
        // Scattered, tie-free geometry: the engine's shared grid and the
        // private one must yield the identical schedule.
        let taxis: Vec<Taxi> = (0..11)
            .map(|i| {
                let f = f64::from(i);
                Taxi::new(
                    TaxiId(i as u64),
                    Point::new(f * 1.37 - 7.0, (f * f * 0.31) % 9.0 - 4.0),
                )
            })
            .collect();
        let requests: Vec<Request> = (0..9)
            .map(|j| {
                let f = f64::from(j);
                Request::new(
                    RequestId(j as u64),
                    0,
                    Point::new(f * 1.71 - 6.0, (f * 2.13) % 7.0 - 3.0),
                    Point::new(f * 0.93 - 2.0, (f * 1.57) % 5.0 - 2.0),
                )
            })
            .collect();
        let d = dispatcher();
        let grid = build_taxi_grid(&taxis);
        let shared = d.dispatch_with_grid(&taxis, &requests, Some(&grid));
        let private = d.dispatch(&taxis, &requests);
        assert_eq!(shared, private);
        assert!(shared.served_count() > 0);
    }

    #[test]
    fn group_cap_and_coverage() {
        let taxis = vec![taxi(0, 0.0), taxi(1, 4.0)];
        let requests: Vec<Request> = (0..8).map(|i| req(i, i as f64, i as f64 + 6.0)).collect();
        let s = SarpDispatcher::with_max_group_size(
            Euclidean,
            PreferenceParams::unbounded().with_detour_threshold(20.0),
            3,
        )
        .dispatch(&taxis, &requests);
        let mut seen = std::collections::HashSet::new();
        for a in &s.assignments {
            assert!(a.members.len() <= 3);
            for &m in &a.members {
                assert!(seen.insert(m));
            }
        }
        for &u in &s.unserved {
            assert!(seen.insert(u));
        }
        assert_eq!(seen.len(), 8);
    }
}
