//! *Lin* [6]: integer-linear-programming taxi sharing, solved by the
//! authors' greedy heuristic.
//!
//! The ILP of [6] assigns groups of requests to taxis minimising total
//! travel distance subject to capacity and detour constraints; "a
//! heuristic algorithm was proposed to achieve a faster execution time".
//! The heuristic reproduced here scores every feasible (taxi, group) pair
//! by its total driving distance and accepts the globally cheapest pairs
//! first — the standard greedy rounding of the ILP's LP relaxation.

use crate::util::{best_compliant_route, fits, group_assignment};
use o2o_core::{PreferenceParams, SharingConfig, SharingDispatcher, SharingSchedule};
use o2o_geo::Metric;
use o2o_obs as obs;
use o2o_trace::{Request, Taxi};

/// The Lin (ILP-heuristic) sharing baseline; see the module docs.
///
/// # Examples
///
/// ```
/// use o2o_baselines::LinDispatcher;
/// use o2o_core::PreferenceParams;
/// use o2o_geo::{Euclidean, Point};
/// use o2o_trace::{Request, RequestId, Taxi, TaxiId};
///
/// let d = LinDispatcher::new(Euclidean, PreferenceParams::default());
/// let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
/// let requests = vec![Request::new(
///     RequestId(0), 0, Point::new(1.0, 0.0), Point::new(5.0, 0.0),
/// )];
/// assert_eq!(d.dispatch(&taxis, &requests).served_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LinDispatcher<M> {
    /// Stage-1 feasibility enumeration is shared with Algorithm 3.
    helper: SharingDispatcher<M>,
}

impl<M: Metric> LinDispatcher<M> {
    /// Creates the dispatcher with the default sharing config (groups of
    /// up to 3, shareability-pruned triples).
    #[must_use]
    pub fn new(metric: M, params: PreferenceParams) -> Self {
        Self::with_config(metric, params, SharingConfig::default())
    }

    /// Creates the dispatcher with an explicit sharing config (group
    /// bound, triple generation).
    #[must_use]
    pub fn with_config(metric: M, params: PreferenceParams, config: SharingConfig) -> Self {
        LinDispatcher {
            helper: SharingDispatcher::with_config(metric, params, config),
        }
    }

    fn metric(&self) -> &M {
        self.helper.metric()
    }

    fn params(&self) -> &PreferenceParams {
        self.helper.params()
    }

    /// Dispatches the frame: every feasible `(taxi, group)` pair is scored
    /// by total driving distance, cheapest accepted first.
    #[must_use]
    pub fn dispatch(&self, taxis: &[Taxi], requests: &[Request]) -> SharingSchedule {
        self.dispatch_with_grid(taxis, requests, None)
    }

    /// [`dispatch`](Self::dispatch) with the engine's shared taxi grid.
    ///
    /// Lin's objective is global — the cheapest `(taxi, group)` pair over
    /// *all* pairs, constrained only by each member's detour budget — so
    /// no distance-based candidate pruning is sound: a far taxi can still
    /// host the globally cheapest group. The grid is therefore validated
    /// (it must cover exactly `taxis`) but not used; accepting it keeps
    /// every policy on the one engine-maintained grid instead of silently
    /// rebuilding its own.
    #[must_use]
    pub fn dispatch_with_grid(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        grid: Option<&o2o_geo::GridIndex<usize>>,
    ) -> SharingSchedule {
        let _span = obs::span("insertion_scan");
        crate::util::debug_assert_grid_covers(grid, taxis);
        if taxis.is_empty() || requests.is_empty() {
            return SharingSchedule {
                assignments: Vec::new(),
                unserved: requests.iter().map(|r| r.id).collect(),
            };
        }
        // Reuse Algorithm 3's stage-1 feasibility enumeration for the
        // candidate groups (the ILP's variable set).
        let mut groups: Vec<Vec<usize>> = self.helper.feasible_groups(requests);
        groups.extend((0..requests.len()).map(|j| vec![j]));

        // Score all (group, taxi) pairs.
        struct Candidate {
            cost: f64,
            group: usize,
            taxi: usize,
        }
        let mut candidates = Vec::new();
        for (gi, members) in groups.iter().enumerate() {
            let group: Vec<Request> = members.iter().map(|&m| requests[m]).collect();
            for (ti, taxi) in taxis.iter().enumerate() {
                if !fits(taxi, &group) {
                    continue;
                }
                if let Some(plan) = best_compliant_route(self.metric(), self.params(), taxi, &group)
                {
                    candidates.push(Candidate {
                        // Total distance per served request: the ILP's
                        // objective normalised so larger groups are not
                        // penalised for simply driving more.
                        cost: plan.total_drive(self.metric(), taxi.location) / group.len() as f64,
                        group: gi,
                        taxi: ti,
                    });
                }
            }
        }
        candidates.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.group.cmp(&b.group))
                .then(a.taxi.cmp(&b.taxi))
        });

        let mut request_used = vec![false; requests.len()];
        let mut taxi_used = vec![false; taxis.len()];
        let mut assignments = Vec::new();
        for c in candidates {
            if taxi_used[c.taxi] || groups[c.group].iter().any(|&m| request_used[m]) {
                continue;
            }
            taxi_used[c.taxi] = true;
            for &m in &groups[c.group] {
                request_used[m] = true;
            }
            let group: Vec<Request> = groups[c.group].iter().map(|&m| requests[m]).collect();
            let taxi = &taxis[c.taxi];
            let plan = best_compliant_route(self.metric(), self.params(), taxi, &group)
                .expect("candidate was compliant");
            assignments.push(group_assignment(
                self.metric(),
                self.params(),
                taxi,
                &group,
                plan,
            ));
        }
        let unserved = requests
            .iter()
            .enumerate()
            .filter(|(j, _)| !request_used[*j])
            .map(|(_, r)| r.id)
            .collect();
        SharingSchedule {
            assignments,
            unserved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::{Euclidean, Point};
    use o2o_trace::{RequestId, TaxiId};

    fn taxi(id: u64, x: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, 0.0))
    }

    fn req(id: u64, s: f64, d: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(s, 0.0), Point::new(d, 0.0))
    }

    fn dispatcher() -> LinDispatcher<Euclidean> {
        LinDispatcher::new(
            Euclidean,
            PreferenceParams::unbounded().with_detour_threshold(5.0),
        )
    }

    #[test]
    fn cheap_shared_ride_wins() {
        let taxis = vec![taxi(0, -1.0), taxi(1, -40.0)];
        let requests = vec![req(0, 0.0, 10.0), req(1, 2.0, 8.0)];
        let s = dispatcher().dispatch(&taxis, &requests);
        assert_eq!(s.served_count(), 2);
        // Shared ride on the near taxi costs 11/2 = 5.5 per request,
        // beating any single assignment.
        let g = s.group_of(TaxiId(0)).expect("near taxi used");
        assert_eq!(g.members.len(), 2);
    }

    #[test]
    fn supplied_grid_is_a_pure_pass_through() {
        use o2o_core::build_taxi_grid;
        let taxis = vec![taxi(0, -1.0), taxi(1, -40.0), taxi(2, 17.0)];
        let requests = vec![req(0, 0.0, 10.0), req(1, 2.0, 8.0), req(2, 15.0, 25.0)];
        let grid = build_taxi_grid(&taxis);
        let d = dispatcher();
        assert_eq!(
            d.dispatch_with_grid(&taxis, &requests, Some(&grid)),
            d.dispatch(&taxis, &requests)
        );
    }

    #[test]
    fn falls_back_to_singletons() {
        // Trips too divergent to share within θ = 5 and far apart.
        let taxis = vec![taxi(0, 0.0), taxi(1, 100.0)];
        let requests = vec![
            req(0, 0.0, 20.0),
            Request::new(
                RequestId(1),
                0,
                Point::new(110.0, 8.0),
                Point::new(110.0, -8.0),
            ),
        ];
        let s = dispatcher().dispatch(&taxis, &requests);
        assert_eq!(s.served_count(), 2);
        assert!(s.assignments.iter().all(|a| a.members.len() == 1));
    }

    #[test]
    fn taxi_capacity_respected() {
        let taxis = vec![Taxi::with_seats(TaxiId(0), Point::new(0.0, 0.0), 2)];
        let requests = vec![
            Request::with_party(
                RequestId(0),
                0,
                Point::new(1.0, 0.0),
                Point::new(5.0, 0.0),
                2,
            ),
            Request::with_party(
                RequestId(1),
                0,
                Point::new(2.0, 0.0),
                Point::new(6.0, 0.0),
                2,
            ),
        ];
        let s = dispatcher().dispatch(&taxis, &requests);
        assert_eq!(s.served_count(), 1);
        assert_eq!(s.unserved.len(), 1);
    }

    #[test]
    fn detours_within_budget() {
        let taxis: Vec<Taxi> = (0..2).map(|i| taxi(i, i as f64 * 10.0)).collect();
        let requests: Vec<Request> = (0..6)
            .map(|i| req(i, i as f64 * 2.0, i as f64 * 2.0 + 12.0))
            .collect();
        let s = dispatcher().dispatch(&taxis, &requests);
        for a in &s.assignments {
            for &d in &a.detours {
                assert!(d <= 5.0 + 1e-9);
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let s = dispatcher().dispatch(&[], &[]);
        assert_eq!(s.served_count(), 0);
        let s = dispatcher().dispatch(&[taxi(0, 0.0)], &[]);
        assert!(s.assignments.is_empty());
    }

    #[test]
    fn coverage_partition() {
        let taxis: Vec<Taxi> = (0..3).map(|i| taxi(i, i as f64 * 3.0)).collect();
        let requests: Vec<Request> = (0..9)
            .map(|i| req(i, (i % 5) as f64, (i % 5) as f64 + 7.0))
            .collect();
        let s = dispatcher().dispatch(&taxis, &requests);
        let mut seen = std::collections::HashSet::new();
        for a in &s.assignments {
            for &m in &a.members {
                assert!(seen.insert(m));
            }
        }
        for &u in &s.unserved {
            assert!(seen.insert(u));
        }
        assert_eq!(seen.len(), 9);
    }
}
