//! *Near*: greedy nearest-idle-taxi dispatch (Hanna et al. \[3\]).

use crate::util::{clone_or_build_taxi_grid, schedule_from_pairs};
use o2o_core::{PreferenceParams, Schedule};
use o2o_geo::{GridIndex, Metric};
use o2o_obs as obs;
use o2o_trace::{Request, Taxi};

/// Greedy baseline: each request (in arrival order) takes the nearest
/// still-idle taxi with enough seats.
///
/// Tong et al. \[4\] observed this method's excellent average performance
/// despite an exponential competitive ratio; the paper uses it as the
/// passenger-friendliest baseline. A [`GridIndex`] makes each query
/// sub-linear; candidates are re-ranked with the true metric, so a road
/// network is handled correctly (the straight-line distance used by the
/// index is a lower bound for route distances).
///
/// # Examples
///
/// ```
/// use o2o_baselines::NearDispatcher;
/// use o2o_core::PreferenceParams;
/// use o2o_geo::{Euclidean, Point};
/// use o2o_trace::{Request, RequestId, Taxi, TaxiId};
///
/// let d = NearDispatcher::new(Euclidean, PreferenceParams::default());
/// let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
/// let requests = vec![Request::new(
///     RequestId(0), 0, Point::new(1.0, 0.0), Point::new(2.0, 0.0),
/// )];
/// let s = d.dispatch(&taxis, &requests);
/// assert_eq!(s.served_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NearDispatcher<M> {
    metric: M,
    params: PreferenceParams,
}

impl<M: Metric> NearDispatcher<M> {
    /// Creates the dispatcher. `params` only affect the *reported* taxi
    /// dissatisfaction (α) — Near itself ignores driver interests, which
    /// is the point of the comparison.
    #[must_use]
    pub fn new(metric: M, params: PreferenceParams) -> Self {
        NearDispatcher { metric, params }
    }

    /// Dispatches the frame: requests in arrival (slice) order, each
    /// taking the nearest idle taxi that fits the party.
    #[must_use]
    pub fn dispatch(&self, taxis: &[Taxi], requests: &[Request]) -> Schedule {
        self.dispatch_with_grid(taxis, requests, None)
    }

    /// [`dispatch`](Self::dispatch) reusing a pre-built taxi grid (payload
    /// = index into `taxis`), e.g. the one the simulation engine shares
    /// across policies each frame. The grid is cloned — Near consumes it
    /// destructively, removing each dispatched taxi. `None` builds a
    /// private grid as before.
    #[must_use]
    pub fn dispatch_with_grid(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        grid: Option<&GridIndex<usize>>,
    ) -> Schedule {
        let _span = obs::span("greedy_scan");
        let mut pairs = Vec::new();
        if !taxis.is_empty() {
            let mut idx = clone_or_build_taxi_grid(grid, taxis, requests);
            let mut available = vec![true; taxis.len()];
            for (j, r) in requests.iter().enumerate() {
                if idx.is_empty() {
                    break;
                }
                // Candidate set from the grid (straight-line ranking); the
                // winner is chosen by the true metric, so over-fetch a
                // little to tolerate road-network re-ranking.
                let k = 8.min(idx.len());
                let mut best: Option<(f64, usize)> = None;
                for cand in idx.k_nearest(r.pickup, k) {
                    if taxis[cand.item].seats < r.passengers {
                        continue;
                    }
                    let d = self.metric.distance(taxis[cand.item].location, r.pickup);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, cand.item));
                    }
                }
                if best.is_none() {
                    // All grid candidates lacked seats: full scan.
                    for (i, t) in taxis.iter().enumerate() {
                        if available[i] && t.seats >= r.passengers {
                            let d = self.metric.distance(t.location, r.pickup);
                            if best.is_none_or(|(bd, _)| d < bd) {
                                best = Some((d, i));
                            }
                        }
                    }
                }
                if let Some((_, i)) = best {
                    idx.remove(&i, taxis[i].location);
                    available[i] = false;
                    pairs.push((j, i));
                }
            }
        }
        schedule_from_pairs(&self.metric, &self.params, taxis, requests, &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_core::DispatchOutcome;
    use o2o_geo::{Euclidean, Point};
    use o2o_trace::{RequestId, TaxiId};
    use proptest::prelude::*;

    fn taxi(id: u64, x: f64, y: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, y))
    }

    fn req(id: u64, sx: f64, sy: f64) -> Request {
        Request::new(
            RequestId(id),
            0,
            Point::new(sx, sy),
            Point::new(sx + 1.0, sy),
        )
    }

    #[test]
    fn takes_nearest_taxi() {
        let taxis = vec![taxi(0, 10.0, 0.0), taxi(1, 1.0, 0.0)];
        let requests = vec![req(0, 0.0, 0.0)];
        let d = NearDispatcher::new(Euclidean, PreferenceParams::paper());
        let s = d.dispatch(&taxis, &requests);
        assert_eq!(
            s.assignment_of(RequestId(0)),
            DispatchOutcome::Assigned(TaxiId(1))
        );
    }

    #[test]
    fn greedy_order_matters() {
        // Request 0 (first) steals the shared nearest taxi.
        let taxis = vec![taxi(0, 0.0, 0.0), taxi(1, 100.0, 0.0)];
        let requests = vec![req(0, 1.0, 0.0), req(1, 2.0, 0.0)];
        let d = NearDispatcher::new(Euclidean, PreferenceParams::paper());
        let s = d.dispatch(&taxis, &requests);
        assert_eq!(
            s.assignment_of(RequestId(0)),
            DispatchOutcome::Assigned(TaxiId(0))
        );
        assert_eq!(
            s.assignment_of(RequestId(1)),
            DispatchOutcome::Assigned(TaxiId(1))
        );
    }

    #[test]
    fn more_requests_than_taxis() {
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![req(0, 1.0, 0.0), req(1, 0.5, 0.0)];
        let d = NearDispatcher::new(Euclidean, PreferenceParams::paper());
        let s = d.dispatch(&taxis, &requests);
        assert_eq!(s.served_count(), 1);
        assert_eq!(s.unserved(), vec![RequestId(1)]);
    }

    #[test]
    fn seat_constraint_skips_small_taxis() {
        let taxis = vec![
            Taxi::with_seats(TaxiId(0), Point::new(0.5, 0.0), 1),
            Taxi::with_seats(TaxiId(1), Point::new(5.0, 0.0), 4),
        ];
        let requests = vec![Request::with_party(
            RequestId(0),
            0,
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            3,
        )];
        let d = NearDispatcher::new(Euclidean, PreferenceParams::paper());
        let s = d.dispatch(&taxis, &requests);
        assert_eq!(
            s.assignment_of(RequestId(0)),
            DispatchOutcome::Assigned(TaxiId(1))
        );
    }

    #[test]
    fn empty_inputs() {
        let d = NearDispatcher::new(Euclidean, PreferenceParams::paper());
        let s = d.dispatch(&[], &[]);
        assert_eq!(s.served_count(), 0);
        let s = d.dispatch(&[], &[req(0, 0.0, 0.0)]);
        assert_eq!(s.unserved().len(), 1);
    }

    #[test]
    fn shared_grid_gives_nearest_taxi_too() {
        use o2o_core::build_taxi_grid;
        let taxis = vec![taxi(0, 10.0, 0.0), taxi(1, 1.0, 0.0), taxi(2, -4.0, 3.0)];
        let requests = vec![req(0, 0.0, 0.0), req(1, 9.0, 1.0)];
        let d = NearDispatcher::new(Euclidean, PreferenceParams::paper());
        let grid = build_taxi_grid(&taxis);
        let shared = d.dispatch_with_grid(&taxis, &requests, Some(&grid));
        // Same greedy contract as the private-grid path: each request gets
        // the nearest still-free taxi.
        assert_eq!(
            shared.assignment_of(RequestId(0)),
            DispatchOutcome::Assigned(TaxiId(1))
        );
        assert_eq!(
            shared.assignment_of(RequestId(1)),
            DispatchOutcome::Assigned(TaxiId(0))
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Near matches a straightforward reference implementation.
        #[test]
        fn matches_reference_greedy(
            taxi_pts in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..12),
            req_pts in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..12),
        ) {
            let taxis: Vec<Taxi> = taxi_pts.iter().enumerate()
                .map(|(i, &(x, y))| taxi(i as u64, x, y)).collect();
            let requests: Vec<Request> = req_pts.iter().enumerate()
                .map(|(j, &(x, y))| req(j as u64, x, y)).collect();
            let d = NearDispatcher::new(Euclidean, PreferenceParams::paper());
            let s = d.dispatch(&taxis, &requests);
            // Reference: plain O(R·T) greedy, following the dispatcher's
            // own tie-breaks (the chosen taxi must always be at minimum
            // distance among the still-free ones).
            let mut free = vec![true; taxis.len()];
            for r in &requests {
                let want = taxis.iter().enumerate()
                    .filter(|(i, _)| free[*i])
                    .map(|(_, t)| t.location.euclidean(r.pickup))
                    .fold(f64::INFINITY, f64::min);
                match s.assignment_of(r.id).taxi() {
                    Some(got) => {
                        let gi = taxis.iter().position(|x| x.id == got).unwrap();
                        prop_assert!(free[gi], "dispatcher reused a taxi");
                        let got_d = taxis[gi].location.euclidean(r.pickup);
                        prop_assert!((got_d - want).abs() < 1e-9,
                            "chose {got_d}, nearest free was {want}");
                        free[gi] = false;
                    }
                    None => prop_assert!(want.is_infinite()),
                }
            }
        }
    }
}
