//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! package implements the benchmark-harness surface the `o2o-bench`
//! benches use: [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size`/`bench_function`/`bench_with_input`, [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: after a short warm-up, the harness calibrates an
//! iteration count so one sample takes a few milliseconds, collects
//! `sample_size` samples and prints min/median/mean per iteration. It is
//! deliberately simple — no outlier analysis, no HTML reports — but the
//! numbers are honest wall-clock medians, comparable across runs on the
//! same machine and stable enough to track the perf trajectory in
//! `BENCH_*.json` files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing statistics of one benchmark, per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean over all samples.
    pub mean: Duration,
}

/// The benchmark driver handed to the closure by `bench_*`.
pub struct Bencher {
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count whose batch
        // runtime is long enough to dwarf timer overhead.
        let mut iters: u64 = 1;
        let batch_target = Duration::from_millis(4);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_target || iters >= 1 << 24 {
                break;
            }
            // Aim directly for the target with one refinement step.
            let grow = if elapsed.is_zero() {
                16
            } else {
                (batch_target.as_nanos() / elapsed.as_nanos().max(1) + 1) as u64
            };
            iters = iters.saturating_mul(grow.clamp(2, 16)).min(1 << 24);
        }
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed() / u32::try_from(iters).expect("iters fit u32")
            })
            .collect();
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        self.stats = Some(Stats { min, median, mean });
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            stats: None,
        };
        f(&mut b);
        self.report(&id, b.stats);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            stats: None,
        };
        f(&mut b, input);
        self.report(&id, b.stats);
        self
    }

    fn report(&mut self, id: &BenchmarkId, stats: Option<Stats>) {
        let full = format!("{}/{}", self.name, id.id);
        match stats {
            Some(s) => {
                println!(
                    "{full:<50} time: [min {} median {} mean {}]",
                    fmt_duration(s.min),
                    fmt_duration(s.median),
                    fmt_duration(s.mean),
                );
                self.criterion.results.push((full, s));
            }
            None => println!("{full:<50} (no measurement: Bencher::iter never called)"),
        }
    }

    /// Ends the group (printing is incremental, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark harness.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Stats)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmarks `f` outside any group (upstream's top-level
    /// `Criterion::bench_function`).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: 20,
            stats: None,
        };
        f(&mut b);
        match b.stats {
            Some(s) => {
                println!(
                    "{:<50} time: [min {} median {} mean {}]",
                    id.id,
                    fmt_duration(s.min),
                    fmt_duration(s.median),
                    fmt_duration(s.mean),
                );
                self.results.push((id.id, s));
            }
            None => println!("{:<50} (no measurement: Bencher::iter never called)", id.id),
        }
        self
    }

    /// All measurements recorded so far, as `(group/id, stats)` pairs.
    ///
    /// Extension over upstream criterion: bench binaries use this to
    /// compute derived quantities (e.g. sequential/parallel speedups)
    /// without re-measuring.
    #[must_use]
    pub fn results(&self) -> &[(String, Stats)] {
        &self.results
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("busy", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, work);

    #[test]
    fn harness_measures_and_records() {
        let mut c = Criterion::default();
        benches(&mut c);
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].1.median.as_nanos() > 0);
        assert!(c.results()[0].0.contains("g/busy"));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("50x100").id, "50x100");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
