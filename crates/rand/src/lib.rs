//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this workspace-local package provides the (small) slice of the `rand`
//! 0.8 API the code base actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_bool`, `gen_range` over the common numeric ranges)
//! and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic for a given seed, which is all the
//! simulations and property tests here need. Streams differ from upstream
//! `rand`'s ChaCha-based `StdRng`, so seeds are not byte-compatible with
//! historical runs; every consumer in this workspace treats seeds as opaque
//! reproducibility handles, never as cross-version fixtures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random-number generator seedable from a `u64` (the only constructor
/// the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types `Range`/`RangeInclusive` can sample uniformly.
///
/// The range impls below are blanket impls over this trait (mirroring
/// upstream `rand`) rather than one impl per concrete range type: with
/// per-type impls, an integer-literal range like `rng.gen_range(1..6)`
/// would have several applicable candidates and the literal would default
/// to `i32` before the surrounding expression could pin it to e.g.
/// `usize`. The blanket impl keeps that type inference working.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_range<R: Rng + ?Sized>(start: Self, end: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// Types with a "standard" distribution for [`Rng::gen`]: uniform over the
/// full domain for integers, uniform in `[0, 1)` for floats.
pub trait Standard {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a value with the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.unit_f64() < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(
                start: $t,
                end: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let (lo, hi) = (start as i128, end as i128);
                let width = (hi - lo + i128::from(inclusive)) as u128;
                assert!(width > 0, "empty range");
                let v = (rng.next_u64() as u128) % width;
                (lo + v as i128) as $t
            }
        }
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(start: f64, end: f64, inclusive: bool, rng: &mut R) -> f64 {
        if inclusive {
            assert!(start <= end, "empty range");
            start + (end - start) * rng.unit_f64()
        } else {
            assert!(start < end, "empty range {start}..{end}");
            let v = start + (end - start) * rng.unit_f64();
            // Guard against rounding up to the excluded endpoint.
            if v >= end {
                start
            } else {
                v
            }
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(start: f32, end: f32, inclusive: bool, rng: &mut R) -> f32 {
        f64::sample_range(f64::from(start), f64::from(end), inclusive, rng) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.unit_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        rng.unit_f64() as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// SplitMix64 — used to expand seeds into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one invalid state; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard cheap
            // and explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The generator's full internal state. Together with
        /// [`StdRng::from_state`] this round-trips the generator exactly:
        /// a restored generator replays the identical stream the original
        /// would have produced, which is what checkpoint/resume needs
        /// (a seed alone cannot re-create a mid-stream generator).
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously exported
        /// [`state`](StdRng::state). The all-zero state (xoshiro's one
        /// invalid fixed point, which [`state`](StdRng::state) can never
        /// export) is mapped to the same guard state `seed_from_u64`
        /// uses, so no input can wedge the generator.
        #[must_use]
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-7.0..7.0);
            assert!((-7.0..7.0).contains(&f));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let v = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&v));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!(v.as_slice().choose(&mut rng).is_some());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn state_round_trip_replays_the_identical_stream() {
        let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
        // Advance mid-stream so the exported state differs from any
        // fresh seed expansion.
        for _ in 0..137 {
            let _ = rng.next_u64();
        }
        let snapshot = rng.state();
        let mut restored = StdRng::from_state(snapshot);
        assert_eq!(rng, restored, "from_state rebuilds the exact generator");
        for _ in 0..10_000 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
        // The restored generator's own export round-trips too.
        let again = StdRng::from_state(restored.state());
        assert_eq!(again, restored);
    }

    #[test]
    fn state_export_differs_after_advancing() {
        let mut rng = StdRng::seed_from_u64(1);
        let before = rng.state();
        let _ = rng.next_u64();
        assert_ne!(before, rng.state());
    }

    #[test]
    fn all_zero_state_is_guarded_not_wedged() {
        let mut rng = StdRng::from_state([0, 0, 0, 0]);
        // A wedged xoshiro would return 0 forever; the guard state must
        // produce a live stream.
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
    }
}
