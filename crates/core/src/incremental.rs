//! Cross-frame incremental dispatch for the NSTD algorithms.
//!
//! A rolling frame loop re-solves almost the same stable-matching
//! instance every tick: most idle taxis did not move and most pending
//! requests carried over, so the previous frame's stable matching is an
//! excellent predictor of the next one. [`IncrementalState`] carries the
//! previous matching across frames as *stable identities*
//! (`RequestId`/`TaxiId`); each frame it is re-expressed in the current
//! frame's indices and handed to
//! [`StableInstance::propose_seeded`](o2o_matching::StableInstance::propose_seeded)
//! as a warm-start seed.
//!
//! Exactness does not depend on the carried pairs still being valid: the
//! seeded proposal path prunes the seed against the **current** frame's
//! preference lists (mutual acceptability, prefix justification,
//! acyclicity) before resuming deferred acceptance, so a stale pair —
//! a taxi that moved, a request whose candidates changed, anything — is
//! simply dropped and re-proposed cold. Warm and cold schedules are
//! bit-identical for every frame delta; the property suite in
//! `tests/warm_equivalence.rs` pins this the same way
//! `tests/sparse_equivalence.rs` pins sparse == dense.
//!
//! The state also carries the previous frame's sparse candidate rows
//! ([`crate::CandidateCarry`]): a request unchanged between frames patches
//! its row from the carry — dropping moved taxis, admitting moved-in ones
//! — instead of re-querying the grid and the metric for every stationary
//! taxi. The carry stores exact metric distances, so one
//! [`IncrementalState`] must stay with one dispatcher (one metric); the
//! params are revalidated per frame, and any id/position change falls back
//! to the fresh path.

use o2o_matching::{MatchScratch, Matching};
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use std::collections::HashMap;

/// Reusable per-frame working memory for the dispatch hot path.
///
/// Lives inside [`IncrementalState`] so it rides the same `&mut` channel
/// the warm-start seed already uses: the engine and the policies thread
/// one state per dispatcher across frames, and with it this arena. Once
/// its buffers have grown to the steady-state frame shape, the warm
/// dispatch path performs no heap allocation — the deferred-acceptance
/// buffers (proposal queues, partner arrays, matching pool) come from
/// `matcher`, the seed re-indexing tables from the maps here, and the
/// sparse candidate rows from [`IncrementalState`]'s carry.
///
/// Purely a memory-placement concern: every result is bit-identical to
/// the allocating paths, pinned by `tests/warm_equivalence.rs`.
#[derive(Debug, Clone, Default)]
pub struct DispatchScratch {
    /// Pooled deferred-acceptance working memory (see
    /// [`o2o_matching::MatchScratch`]).
    pub(crate) matcher: MatchScratch,
    /// The current frame's warm seed, re-expressed in frame indices
    /// (refreshed by [`IncrementalState::refresh_seed`]).
    pub(crate) seed: Vec<(usize, usize)>,
    /// Taxi id → current frame index (seed re-expression).
    taxi_at: HashMap<TaxiId, usize>,
    /// Request id → current frame index (seed re-expression).
    request_at: HashMap<RequestId, usize>,
}

/// Whether an NSTD dispatch warm-starts from the previous frame.
///
/// Both modes produce **bit-identical schedules**; they differ only in
/// how much proposal work is redone per frame. `Cold` exists for A/B
/// benchmarking and as the escape hatch if warm-start overhead ever
/// exceeds its savings on a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IncrementalMode {
    /// Seed deferred acceptance from the previous frame's matching (the
    /// default).
    #[default]
    Warm,
    /// Re-run every frame from scratch.
    Cold,
}

/// Carries the previous frame's stable matching across frames as a
/// warm-start seed, keyed by stable identities so index churn between
/// frames (taxis leaving/entering the idle set, requests being served or
/// arriving) never mis-seeds a pair.
///
/// Also carries the previous frame's sparse candidate rows; because those
/// store exact metric distances, a state must only ever be fed to **one**
/// dispatcher (one metric). The seed pairs alone would tolerate a metric
/// change (they are revalidated), the rows would not.
#[derive(Debug, Clone, Default)]
pub struct IncrementalState {
    prev: Vec<(RequestId, TaxiId)>,
    /// Previous frame's sparse candidate rows (see
    /// [`crate::prefs::CandidateCarry`]): unchanged requests patch their
    /// candidate row from here instead of re-querying the grid and the
    /// metric for every stationary taxi.
    pub(crate) rows: crate::prefs::CandidateCarry,
    /// Reusable hot-path working memory (see [`DispatchScratch`]). Not
    /// cleared by [`IncrementalState::clear`]: it carries no matching
    /// *content*, only buffer capacity.
    pub(crate) scratch: DispatchScratch,
}

impl IncrementalState {
    /// An empty state (the first frame runs cold).
    #[must_use]
    pub fn new() -> Self {
        IncrementalState::default()
    }

    /// Forgets the carried matching and candidate rows (the next frame
    /// runs cold).
    pub fn clear(&mut self) {
        self.prev.clear();
        self.rows.clear();
    }

    /// The carried `(request, taxi)` pairs from the previous frame.
    #[must_use]
    pub fn carried_pairs(&self) -> &[(RequestId, TaxiId)] {
        &self.prev
    }

    /// Re-expresses the carried matching in the current frame's indices,
    /// into the scratch arena's seed buffer (`self.scratch.seed`). Pairs
    /// whose request or taxi is no longer in the frame are dropped here;
    /// pairs whose *preferences* changed are dropped later by the seeded
    /// proposal path's own validation. All working memory (the id → index
    /// maps and the seed itself) is reused across frames.
    pub(crate) fn refresh_seed(&mut self, taxis: &[Taxi], requests: &[Request]) {
        let DispatchScratch {
            seed,
            taxi_at,
            request_at,
            ..
        } = &mut self.scratch;
        seed.clear();
        if self.prev.is_empty() {
            return;
        }
        taxi_at.clear();
        taxi_at.extend(taxis.iter().enumerate().map(|(i, t)| (t.id, i)));
        request_at.clear();
        request_at.extend(requests.iter().enumerate().map(|(j, r)| (r.id, j)));
        seed.extend(self.prev.iter().filter_map(|&(rid, tid)| {
            match (request_at.get(&rid), taxi_at.get(&tid)) {
                (Some(&j), Some(&i)) => Some((j, i)),
                _ => None,
            }
        }));
    }

    /// Stores this frame's matching (in frame indices) for the next frame.
    pub(crate) fn record(&mut self, taxis: &[Taxi], requests: &[Request], m: &Matching) {
        self.prev.clear();
        self.prev
            .extend(m.pairs().map(|(j, i)| (requests[j].id, taxis[i].id)));
    }
}
