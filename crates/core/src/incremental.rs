//! Cross-frame incremental dispatch for the NSTD algorithms.
//!
//! A rolling frame loop re-solves almost the same stable-matching
//! instance every tick: most idle taxis did not move and most pending
//! requests carried over, so the previous frame's stable matching is an
//! excellent predictor of the next one. [`IncrementalState`] carries the
//! previous matching across frames as *stable identities*
//! (`RequestId`/`TaxiId`); each frame it is re-expressed in the current
//! frame's indices and handed to
//! [`StableInstance::propose_seeded`](o2o_matching::StableInstance::propose_seeded)
//! as a warm-start seed.
//!
//! Exactness does not depend on the carried pairs still being valid: the
//! seeded proposal path prunes the seed against the **current** frame's
//! preference lists (mutual acceptability, prefix justification,
//! acyclicity) before resuming deferred acceptance, so a stale pair —
//! a taxi that moved, a request whose candidates changed, anything — is
//! simply dropped and re-proposed cold. Warm and cold schedules are
//! bit-identical for every frame delta; the property suite in
//! `tests/warm_equivalence.rs` pins this the same way
//! `tests/sparse_equivalence.rs` pins sparse == dense.
//!
//! The state also carries the previous frame's sparse candidate rows
//! ([`crate::CandidateCarry`]): a request unchanged between frames patches
//! its row from the carry — dropping moved taxis, admitting moved-in ones
//! — instead of re-querying the grid and the metric for every stationary
//! taxi. The carry stores exact metric distances, so one
//! [`IncrementalState`] must stay with one dispatcher (one metric); the
//! params are revalidated per frame, and any id/position change falls back
//! to the fresh path.

use o2o_matching::Matching;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use std::collections::HashMap;

/// Whether an NSTD dispatch warm-starts from the previous frame.
///
/// Both modes produce **bit-identical schedules**; they differ only in
/// how much proposal work is redone per frame. `Cold` exists for A/B
/// benchmarking and as the escape hatch if warm-start overhead ever
/// exceeds its savings on a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IncrementalMode {
    /// Seed deferred acceptance from the previous frame's matching (the
    /// default).
    #[default]
    Warm,
    /// Re-run every frame from scratch.
    Cold,
}

/// Carries the previous frame's stable matching across frames as a
/// warm-start seed, keyed by stable identities so index churn between
/// frames (taxis leaving/entering the idle set, requests being served or
/// arriving) never mis-seeds a pair.
///
/// Also carries the previous frame's sparse candidate rows; because those
/// store exact metric distances, a state must only ever be fed to **one**
/// dispatcher (one metric). The seed pairs alone would tolerate a metric
/// change (they are revalidated), the rows would not.
#[derive(Debug, Clone, Default)]
pub struct IncrementalState {
    prev: Vec<(RequestId, TaxiId)>,
    /// Previous frame's sparse candidate rows (see
    /// [`crate::prefs::CandidateCarry`]): unchanged requests patch their
    /// candidate row from here instead of re-querying the grid and the
    /// metric for every stationary taxi.
    pub(crate) rows: crate::prefs::CandidateCarry,
}

impl IncrementalState {
    /// An empty state (the first frame runs cold).
    #[must_use]
    pub fn new() -> Self {
        IncrementalState::default()
    }

    /// Forgets the carried matching and candidate rows (the next frame
    /// runs cold).
    pub fn clear(&mut self) {
        self.prev.clear();
        self.rows.clear();
    }

    /// The carried `(request, taxi)` pairs from the previous frame.
    #[must_use]
    pub fn carried_pairs(&self) -> &[(RequestId, TaxiId)] {
        &self.prev
    }

    /// Re-expresses the carried matching in the current frame's indices.
    /// Pairs whose request or taxi is no longer in the frame are dropped
    /// here; pairs whose *preferences* changed are dropped later by the
    /// seeded proposal path's own validation.
    pub(crate) fn seed(&self, taxis: &[Taxi], requests: &[Request]) -> Vec<(usize, usize)> {
        if self.prev.is_empty() {
            return Vec::new();
        }
        let taxi_at: HashMap<TaxiId, usize> =
            taxis.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        let request_at: HashMap<RequestId, usize> = requests
            .iter()
            .enumerate()
            .map(|(j, r)| (r.id, j))
            .collect();
        self.prev
            .iter()
            .filter_map(
                |&(rid, tid)| match (request_at.get(&rid), taxi_at.get(&tid)) {
                    (Some(&j), Some(&i)) => Some((j, i)),
                    _ => None,
                },
            )
            .collect()
    }

    /// Stores this frame's matching (in frame indices) for the next frame.
    pub(crate) fn record(&mut self, taxis: &[Taxi], requests: &[Request], m: &Matching) {
        self.prev.clear();
        self.prev
            .extend(m.pairs().map(|(j, i)| (requests[j].id, taxis[i].id)));
    }
}
