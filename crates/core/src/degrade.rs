//! The degradation ladder: which algorithm a frame actually ran.
//!
//! Under a tight [`TimeBudget`](o2o_matching::TimeBudget) a dispatch call
//! steps down a ladder of successively cheaper algorithms instead of
//! overrunning its frame:
//!
//! ```text
//! NSTD-T  (taxi-optimal, needs full preference model)
//!   ↓ deadline hit after preference construction
//! NSTD-P  (passenger-optimal deferred acceptance on the same model)
//!   ↓ deadline hit before preference construction
//! greedy-nearest  (arrival order × nearest acceptable taxi, O(|R|·|T|))
//! ```
//!
//! and the unbounded BreakDispatch enumeration behind `all_schedules`
//! degrades from the full stable set to a well-formed prefix. Every step
//! down is reported as an explicit [`Degraded`] marker rather than
//! silently returning a different schedule, so callers (the simulator,
//! the benches) can count and attribute degradations.

use std::fmt;

/// A rung of the degradation ladder — which algorithm produced (or was
/// supposed to produce) a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchTier {
    /// NSTD-T: taxi-optimal stable schedule (role-swapped deferred
    /// acceptance).
    NstdT,
    /// NSTD-P: passenger-optimal stable schedule (Algorithm 1).
    NstdP,
    /// Greedy nearest-acceptable-taxi sweep in arrival order. Fast and
    /// bounded, but **not** stable in general.
    GreedyNearest,
    /// The complete BreakDispatch enumeration of all stable schedules
    /// (Algorithm 2).
    FullEnumeration,
    /// A budget-truncated prefix of the enumeration (still all-stable,
    /// passenger-optimal first, but incomplete).
    PartialEnumeration,
}

impl DispatchTier {
    /// The tier's stable display name as a static string — the same
    /// text [`fmt::Display`] writes, usable where an allocation-free
    /// name is needed (SLO breach rung attribution, event streams).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchTier::NstdT => "NSTD-T",
            DispatchTier::NstdP => "NSTD-P",
            DispatchTier::GreedyNearest => "greedy-nearest",
            DispatchTier::FullEnumeration => "full enumeration",
            DispatchTier::PartialEnumeration => "partial enumeration",
        }
    }
}

impl fmt::Display for DispatchTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a dispatch call stepped down the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The frame's wall-clock deadline had passed at the named stage.
    DeadlineExceeded {
        /// Where in the dispatch the deadline was observed (e.g.
        /// `"before preference construction"`).
        stage: &'static str,
    },
    /// The BreakDispatch node cap was reached after exploring `nodes`
    /// nodes.
    NodeCapReached {
        /// Nodes explored when the cap stopped the walk.
        nodes: u64,
    },
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::DeadlineExceeded { stage } => {
                write!(f, "frame deadline exceeded {stage}")
            }
            DegradeReason::NodeCapReached { nodes } => {
                write!(f, "enumeration node cap reached after {nodes} nodes")
            }
        }
    }
}

/// An explicit record that a dispatch call returned a cheaper tier's
/// result than the one asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degraded {
    /// The tier that was requested.
    pub from: DispatchTier,
    /// The tier that actually ran.
    pub to: DispatchTier,
    /// Why the ladder stepped down.
    pub reason: DegradeReason,
}

impl fmt::Display for Degraded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "degraded {} → {}: {}", self.from, self.to, self.reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let d = Degraded {
            from: DispatchTier::NstdT,
            to: DispatchTier::NstdP,
            reason: DegradeReason::DeadlineExceeded {
                stage: "after preference construction",
            },
        };
        assert_eq!(
            d.to_string(),
            "degraded NSTD-T → NSTD-P: frame deadline exceeded after preference construction"
        );
        let d = Degraded {
            from: DispatchTier::FullEnumeration,
            to: DispatchTier::PartialEnumeration,
            reason: DegradeReason::NodeCapReached { nodes: 12 },
        };
        assert_eq!(
            d.to_string(),
            "degraded full enumeration → partial enumeration: \
             enumeration node cap reached after 12 nodes"
        );
    }
}
