//! Spatial sharding of a dispatch frame: per-region deferred acceptance
//! with exact global reconciliation.
//!
//! The dummy-threshold argument (see [`crate::prefs`]) proves that a pair
//! `(t_i, r_j)` farther apart than `min(θ_p, θ_t + α·trip_j)` is a no-op in
//! every stable-matching algorithm. A [`ShardPlan`] exploits that: it tiles
//! the frame's bounding box into regions sized by the frame-wide
//! interaction radius `R` (the maximum of that bound over the frame's
//! requests, slack-inflated exactly like the sparse candidate builder —
//! both sides use [`crate::prefs::candidate_radius`], the single source of
//! truth), assigns every taxi and request to **exactly one** region, and
//! classifies each entity as *interior* (its interaction disk provably
//! cannot cross an internal region border) or *boundary*.
//!
//! Regions whose padded bounding boxes do not intersect are provably
//! independent: no candidate pair spans them, so deferred acceptance run on
//! a region's sub-instance agrees with the global matching on every
//! interior entity. The sharded dispatch path therefore runs deferred
//! acceptance per region in parallel, then reconciles with one *seeded*
//! global pass ([`o2o_matching::StableInstance::propose_seeded_with`]),
//! which is exact for **any** seed — the per-shard outcome only controls
//! how much proposal work the reconciliation can skip. Exactness of the
//! final schedule is by construction, not by geometry; the geometry makes
//! the fix-up cheap.

use crate::prefs::candidate_radius;
use crate::PreferenceParams;
use o2o_geo::{BBox, Point, RegionGrid};
use o2o_matching::{PreferenceError, StableInstance};
use o2o_trace::{Request, Taxi};

/// Configuration of the sharded dispatch path.
///
/// `target_shards` caps the number of regions; the actual count also
/// respects the geometric floor (each region side at least
/// `padding × R` for the frame's interaction radius `R`), so dense
/// thresholds or small cities can yield fewer regions than asked — down to
/// a single region, where the sharded path degenerates to the global one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    target_shards: usize,
    padding: f64,
}

impl ShardSpec {
    /// A spec asking for (at most) `target_shards` regions with the
    /// default padding factor of `1.0` (region sides at least one
    /// interaction radius).
    ///
    /// `target_shards == 0` is treated as `1`.
    #[must_use]
    pub fn new(target_shards: usize) -> Self {
        ShardSpec {
            target_shards: target_shards.max(1),
            padding: 1.0,
        }
    }

    /// Sets the minimum region side as a multiple of the interaction
    /// radius. Larger padding shrinks the boundary band fraction (fewer
    /// cross-border disks) at the cost of fewer, larger shards.
    ///
    /// # Panics
    ///
    /// Panics unless `padding ≥ 1.0` and finite — thinner regions would
    /// let one disk span three regions per axis, which the planner does
    /// not model.
    #[must_use]
    pub fn with_padding(mut self, padding: f64) -> Self {
        assert!(
            padding.is_finite() && padding >= 1.0,
            "padding must be finite and >= 1.0, got {padding}"
        );
        self.padding = padding;
        self
    }

    /// The requested region cap.
    #[must_use]
    pub fn target_shards(&self) -> usize {
        self.target_shards
    }

    /// The minimum region side, as a multiple of the interaction radius.
    #[must_use]
    pub fn padding(&self) -> f64 {
        self.padding
    }
}

impl Default for ShardSpec {
    /// Sixteen target shards, padding `1.0`.
    fn default() -> Self {
        ShardSpec::new(16)
    }
}

/// Whether a [`crate::NonSharingDispatcher`] routes its sparse cold paths
/// through the sharded pipeline.
///
/// Default off ([`ShardMode::Global`]): sharding is a scale optimisation
/// and stays opt-in until bench-proven for a deployment. Every mode
/// produces **bit-identical schedules** (property-tested in
/// `tests/shard_equivalence.rs`) — the toggle only changes how the work is
/// decomposed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ShardMode {
    /// One global deferred-acceptance instance (the original path).
    #[default]
    Global,
    /// Per-region deferred acceptance with seeded global reconciliation.
    Sharded(ShardSpec),
}

/// The taxis and requests owned by one region (ascending global indices).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardMembers {
    /// Global taxi indices owned by the region.
    pub taxis: Vec<usize>,
    /// Global request indices owned by the region.
    pub requests: Vec<usize>,
}

/// A frame's spatial shard assignment: the region grid, per-entity
/// ownership and boundary classification, and per-region member lists.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    grid: RegionGrid,
    /// Frame-wide interaction radius `R` (slack-inflated; `0` when no
    /// request can interact at all, `+∞` for unbounded thresholds).
    radius: f64,
    /// Per-request slack-inflated candidate radius (negative = the
    /// thresholds admit no candidate at any distance).
    request_radius: Vec<f64>,
    taxi_region: Vec<usize>,
    request_region: Vec<usize>,
    taxi_boundary: Vec<bool>,
    request_boundary: Vec<bool>,
    members: Vec<ShardMembers>,
}

impl ShardPlan {
    /// Builds the frame's shard plan.
    ///
    /// `trips[j]` must be request `j`'s trip distance under the dispatch
    /// metric (`D(r_j^s, r_j^d)`), the same value the preference builder
    /// uses — the per-request interaction radius is derived from it via
    /// [`candidate_radius`].
    ///
    /// # Panics
    ///
    /// Panics if `trips.len() != requests.len()`.
    #[must_use]
    pub fn build(
        spec: &ShardSpec,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
        trips: &[f64],
    ) -> ShardPlan {
        assert_eq!(trips.len(), requests.len(), "one trip distance per request");
        let request_radius: Vec<f64> = trips
            .iter()
            .map(|&trip| {
                let r = candidate_radius(params, trip);
                if r.is_nan() {
                    -1.0
                } else {
                    r
                }
            })
            .collect();
        // Frame-wide interaction radius: the farthest any pair can
        // interact. No requests (or none that can interact) ⇒ 0.
        let radius = request_radius.iter().fold(0.0f64, |a, &b| a.max(b));
        let bbox = BBox::from_points(
            taxis
                .iter()
                .map(|t| t.location)
                .chain(requests.iter().map(|r| r.pickup)),
        )
        .unwrap_or_else(|| BBox::square(Point::ORIGIN, 1.0));
        let min_side = if radius.is_finite() {
            spec.padding * radius
        } else {
            // Unbounded interaction radius: RegionGrid collapses to a
            // single region on a non-finite minimum side.
            f64::INFINITY
        };
        let grid = RegionGrid::new(bbox, spec.target_shards, min_side);
        let mut members = vec![ShardMembers::default(); grid.regions()];
        let mut taxi_region = Vec::with_capacity(taxis.len());
        let mut taxi_boundary = Vec::with_capacity(taxis.len());
        for (i, t) in taxis.iter().enumerate() {
            let s = grid.region_of(t.location);
            taxi_region.push(s);
            // A taxi can partner any request whose disk reaches it, so its
            // own disk radius is the frame-wide maximum.
            taxi_boundary.push(!grid.disk_is_interior(t.location, radius));
            members[s].taxis.push(i);
        }
        let mut request_region = Vec::with_capacity(requests.len());
        let mut request_boundary = Vec::with_capacity(requests.len());
        for (j, r) in requests.iter().enumerate() {
            let s = grid.region_of(r.pickup);
            request_region.push(s);
            request_boundary.push(!grid.disk_is_interior(r.pickup, request_radius[j].max(0.0)));
            members[s].requests.push(j);
        }
        ShardPlan {
            grid,
            radius,
            request_radius,
            taxi_region,
            request_region,
            taxi_boundary,
            request_boundary,
            members,
        }
    }

    /// The region grid in use.
    #[must_use]
    pub fn grid(&self) -> &RegionGrid {
        &self.grid
    }

    /// The frame-wide interaction radius `R`.
    #[must_use]
    pub fn interaction_radius(&self) -> f64 {
        self.radius
    }

    /// Request `j`'s slack-inflated candidate radius (negative when its
    /// thresholds admit no candidate).
    #[must_use]
    pub fn request_radius(&self, j: usize) -> f64 {
        self.request_radius[j]
    }

    /// Number of regions in the plan.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.grid.regions()
    }

    /// The member lists of `region`.
    #[must_use]
    pub fn members(&self, region: usize) -> &ShardMembers {
        &self.members[region]
    }

    /// The region owning taxi `i`.
    #[must_use]
    pub fn taxi_region(&self, i: usize) -> usize {
        self.taxi_region[i]
    }

    /// The region owning request `j`.
    #[must_use]
    pub fn request_region(&self, j: usize) -> usize {
        self.request_region[j]
    }

    /// Whether taxi `i` is in the boundary band (its interaction disk may
    /// cross an internal region border).
    #[must_use]
    pub fn taxi_is_boundary(&self, i: usize) -> bool {
        self.taxi_boundary[i]
    }

    /// Whether request `j` is in the boundary band.
    #[must_use]
    pub fn request_is_boundary(&self, j: usize) -> bool {
        self.request_boundary[j]
    }

    /// Number of boundary-band taxis.
    #[must_use]
    pub fn boundary_taxi_count(&self) -> usize {
        self.taxi_boundary.iter().filter(|&&b| b).count()
    }

    /// Number of boundary-band requests.
    #[must_use]
    pub fn boundary_request_count(&self) -> usize {
        self.request_boundary.iter().filter(|&&b| b).count()
    }

    /// Regions with at least one taxi **and** one request — the only ones
    /// whose sub-instances can produce matched pairs.
    #[must_use]
    pub fn occupied_regions(&self) -> Vec<usize> {
        (0..self.regions())
            .filter(|&s| !self.members[s].taxis.is_empty() && !self.members[s].requests.is_empty())
            .collect()
    }

    /// Extracts `region`'s stable-marriage sub-instance from the global
    /// one: the region's own requests and taxis, with every preference
    /// list filtered to in-region partners (relative order preserved).
    ///
    /// Both sides are filtered by the same predicate (partner owned by
    /// `region`), so mutual acceptability is preserved and the local lists
    /// are valid truncated preference lists. For *interior* entities the
    /// filter is a no-op — all their candidates are in-region by the
    /// independence argument — which debug builds assert.
    ///
    /// # Panics
    ///
    /// Panics if `global` does not have one proposer per request and one
    /// reviewer per taxi of the frame this plan was built for.
    #[must_use]
    pub fn extract_instance(&self, global: &StableInstance, region: usize) -> ShardInstance {
        assert_eq!(global.proposers(), self.request_region.len());
        assert_eq!(global.reviewers(), self.taxi_region.len());
        let m = &self.members[region];
        let mut taxi_local = vec![u32::MAX; self.taxi_region.len()];
        for (li, &i) in m.taxis.iter().enumerate() {
            taxi_local[i] = li as u32;
        }
        let mut request_local = vec![u32::MAX; self.request_region.len()];
        for (lj, &j) in m.requests.iter().enumerate() {
            request_local[j] = lj as u32;
        }
        let request_lists: Vec<Vec<usize>> = m
            .requests
            .iter()
            .map(|&j| {
                let list = global.proposer_list(j);
                debug_assert!(
                    self.request_boundary[j] || list.iter().all(|&i| self.taxi_region[i] == region),
                    "interior request {j} has a candidate outside its region"
                );
                list.iter()
                    .filter(|&&i| self.taxi_region[i] == region)
                    .map(|&i| taxi_local[i] as usize)
                    .collect()
            })
            .collect();
        let taxi_lists: Vec<Vec<usize>> = m
            .taxis
            .iter()
            .map(|&i| {
                let list = global.reviewer_list(i);
                debug_assert!(
                    self.taxi_boundary[i] || list.iter().all(|&j| self.request_region[j] == region),
                    "interior taxi {i} ranks a request outside its region"
                );
                list.iter()
                    .filter(|&&j| self.request_region[j] == region)
                    .map(|&j| request_local[j] as usize)
                    .collect()
            })
            .collect();
        let instance = StableInstance::new_sparse(request_lists, taxi_lists).unwrap_or_else(
            |e: PreferenceError| {
                unreachable!("filtered global lists stay in-range and duplicate-free: {e}")
            },
        );
        ShardInstance {
            instance,
            requests: m.requests.clone(),
            taxis: m.taxis.clone(),
        }
    }

    /// Per-region *padded* taxi sets for the sharded greedy baseline:
    /// `sets[s]` holds every taxi within the frame's interaction radius of
    /// region `s`'s rectangle (ascending global index). A taxi near a
    /// border appears in several sets; each request only queries its own
    /// region's set, which is guaranteed to contain every taxi its
    /// thresholds could accept.
    #[must_use]
    pub fn padded_taxi_sets(&self, taxis: &[Taxi]) -> Vec<Vec<usize>> {
        let mut sets = vec![Vec::new(); self.regions()];
        for (i, t) in taxis.iter().enumerate() {
            for s in self.grid.regions_near(t.location, self.radius) {
                sets[s].push(i);
            }
        }
        sets
    }
}

/// One region's extracted sub-instance plus its local→global index maps.
#[derive(Debug, Clone)]
pub struct ShardInstance {
    /// The region-local stable-marriage instance (local indices).
    pub instance: StableInstance,
    /// Local request index → global request index (ascending).
    pub requests: Vec<usize>,
    /// Local taxi index → global taxi index (ascending).
    pub taxis: Vec<usize>,
}

/// Measured structure and cost of one sharded dispatch.
///
/// The `*_ms` fields support the bench's critical-path accounting: on a
/// machine with at least as many threads as occupied shards, the sharded
/// matching stage costs `partition_ms + max_shard_ms + reconcile_ms`
/// wall-clock, while a single-threaded run pays `partition_ms +
/// sum_shard_ms + reconcile_ms`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Regions in the plan (`cols × rows`).
    pub regions: usize,
    /// Regions holding at least one taxi and one request.
    pub occupied: usize,
    /// Taxis whose interaction disk may cross a region border.
    pub boundary_taxis: usize,
    /// Requests whose interaction disk may cross a region border.
    pub boundary_requests: usize,
    /// Matched pairs produced shard-locally and fed to reconciliation as
    /// the warm seed.
    pub seed_pairs: usize,
    /// Milliseconds spent building the shard plan.
    pub partition_ms: f64,
    /// Slowest single shard's extract+match milliseconds (the parallel
    /// critical path of the shard stage).
    pub max_shard_ms: f64,
    /// Total extract+match milliseconds summed over shards (the
    /// sequential cost of the shard stage).
    pub sum_shard_ms: f64,
    /// Milliseconds spent in the seeded global reconciliation pass.
    pub reconcile_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::{Euclidean, Metric, Point};
    use o2o_trace::{RequestId, TaxiId};

    fn taxi(id: u64, x: f64, y: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, y))
    }

    fn request(id: u64, sx: f64, sy: f64, dx: f64, dy: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(sx, sy), Point::new(dx, dy))
    }

    fn trips(metric: &Euclidean, requests: &[Request]) -> Vec<f64> {
        requests.iter().map(|r| r.trip_distance(metric)).collect()
    }

    #[test]
    fn spec_validates_padding() {
        let spec = ShardSpec::new(8).with_padding(2.0);
        assert_eq!(spec.target_shards(), 8);
        assert_eq!(spec.padding(), 2.0);
        assert_eq!(ShardSpec::new(0).target_shards(), 1);
    }

    #[test]
    #[should_panic(expected = "padding")]
    fn spec_rejects_thin_padding() {
        let _ = ShardSpec::new(8).with_padding(0.5);
    }

    #[test]
    fn plan_partitions_every_entity_once() {
        let params = PreferenceParams::paper();
        let taxis: Vec<Taxi> = (0..40)
            .map(|i| taxi(i, (i as f64 * 7.3) % 60.0, (i as f64 * 3.1) % 60.0))
            .collect();
        let requests: Vec<Request> = (0..30)
            .map(|j| {
                let x = (j as f64 * 5.7) % 60.0;
                let y = (j as f64 * 9.1) % 60.0;
                request(j as u64, x, y, x + 2.0, y + 1.0)
            })
            .collect();
        let t = trips(&Euclidean, &requests);
        let plan = ShardPlan::build(&ShardSpec::new(16), &params, &taxis, &requests, &t);
        let mut seen_t = vec![0usize; taxis.len()];
        let mut seen_r = vec![0usize; requests.len()];
        for s in 0..plan.regions() {
            for &i in &plan.members(s).taxis {
                assert_eq!(plan.taxi_region(i), s);
                seen_t[i] += 1;
            }
            for &j in &plan.members(s).requests {
                assert_eq!(plan.request_region(j), s);
                seen_r[j] += 1;
            }
        }
        assert!(
            seen_t.iter().all(|&c| c == 1),
            "every taxi in exactly one shard"
        );
        assert!(
            seen_r.iter().all(|&c| c == 1),
            "every request in exactly one shard"
        );
    }

    #[test]
    fn unbounded_params_collapse_to_one_region() {
        let params = PreferenceParams::unbounded();
        let taxis = vec![taxi(0, 0.0, 0.0), taxi(1, 50.0, 50.0)];
        let requests = vec![request(0, 10.0, 10.0, 12.0, 10.0)];
        let t = trips(&Euclidean, &requests);
        let plan = ShardPlan::build(&ShardSpec::new(64), &params, &taxis, &requests, &t);
        assert_eq!(plan.regions(), 1);
        assert!(plan.interaction_radius().is_infinite());
        assert_eq!(plan.occupied_regions(), vec![0]);
    }

    #[test]
    fn empty_frame_is_well_formed() {
        let params = PreferenceParams::paper();
        let plan = ShardPlan::build(&ShardSpec::new(8), &params, &[], &[], &[]);
        assert_eq!(plan.interaction_radius(), 0.0);
        assert!(plan.occupied_regions().is_empty());
    }

    #[test]
    fn padded_sets_cover_all_acceptable_taxis() {
        let params = PreferenceParams::paper();
        let taxis: Vec<Taxi> = (0..60)
            .map(|i| taxi(i, (i as f64 * 4.3) % 50.0, (i as f64 * 6.9) % 50.0))
            .collect();
        let requests: Vec<Request> = (0..40)
            .map(|j| {
                let x = (j as f64 * 3.7) % 50.0;
                let y = (j as f64 * 8.3) % 50.0;
                request(j as u64, x, y, x + 3.0, y)
            })
            .collect();
        let t = trips(&Euclidean, &requests);
        let plan = ShardPlan::build(&ShardSpec::new(16), &params, &taxis, &requests, &t);
        let sets = plan.padded_taxi_sets(&taxis);
        for (j, r) in requests.iter().enumerate() {
            let set = &sets[plan.request_region(j)];
            for (i, tx) in taxis.iter().enumerate() {
                let d = Euclidean.distance(tx.location, r.pickup);
                let score = d - params.alpha * t[j];
                if d <= params.passenger_threshold && score <= params.taxi_threshold {
                    assert!(
                        set.contains(&i),
                        "acceptable taxi {i} missing from request {j}'s padded set"
                    );
                }
            }
        }
    }
}
