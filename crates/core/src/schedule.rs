//! Non-sharing dispatch schedules — the paper's `S`.

use o2o_trace::{RequestId, TaxiId};
use std::collections::HashMap;

/// What a schedule decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// The request was matched to this taxi.
    Assigned(TaxiId),
    /// The request was matched to its dummy (no dispatch this frame).
    Unserved,
}

impl DispatchOutcome {
    /// The assigned taxi, if any.
    #[must_use]
    pub fn taxi(self) -> Option<TaxiId> {
        match self {
            DispatchOutcome::Assigned(t) => Some(t),
            DispatchOutcome::Unserved => None,
        }
    }
}

/// A non-sharing taxi dispatch schedule: a one-to-one partial matching
/// between requests and taxis plus the dissatisfaction values realised by
/// each matched pair.
///
/// The paper's metrics are attached at construction time:
///
/// * **passenger dissatisfaction** of a matched request: `D(t, r^s)`,
/// * **taxi dissatisfaction** of a matched taxi:
///   `D(t, r^s) − α·D(r^s, r^d)`.
///
/// Smaller is better for both. Unmatched agents have no dissatisfaction
/// value (the paper's CDFs are over matched pairs).
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    request_ids: Vec<RequestId>,
    taxi_ids: Vec<TaxiId>,
    request_to_taxi: Vec<Option<usize>>,
    taxi_to_request: Vec<Option<usize>>,
    passenger_cost: Vec<Option<f64>>,
    taxi_cost: Vec<Option<f64>>,
    request_index: HashMap<RequestId, usize>,
    taxi_index: HashMap<TaxiId, usize>,
}

impl Schedule {
    /// Builds a schedule from parallel arrays.
    ///
    /// `request_to_taxi[i]` is the index into `taxi_ids` assigned to
    /// `request_ids[i]`. `passenger_cost` / `taxi_cost` carry the
    /// dissatisfaction of matched requests / taxis (`None` when unmatched).
    ///
    /// # Panics
    ///
    /// Panics if array lengths disagree, an index is out of range, or the
    /// matching is not one-to-one.
    #[must_use]
    pub fn from_parts(
        request_ids: Vec<RequestId>,
        taxi_ids: Vec<TaxiId>,
        request_to_taxi: Vec<Option<usize>>,
        passenger_cost: Vec<Option<f64>>,
        taxi_cost: Vec<Option<f64>>,
    ) -> Self {
        assert_eq!(request_ids.len(), request_to_taxi.len());
        assert_eq!(request_ids.len(), passenger_cost.len());
        assert_eq!(taxi_ids.len(), taxi_cost.len());
        let mut taxi_to_request = vec![None; taxi_ids.len()];
        for (ri, &ti) in request_to_taxi.iter().enumerate() {
            if let Some(ti) = ti {
                assert!(ti < taxi_ids.len(), "taxi index {ti} out of range");
                assert!(
                    taxi_to_request[ti].is_none(),
                    "taxi {ti} assigned to two requests"
                );
                taxi_to_request[ti] = Some(ri);
            }
        }
        let request_index = request_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect::<HashMap<_, _>>();
        assert_eq!(
            request_index.len(),
            request_ids.len(),
            "duplicate request id"
        );
        let taxi_index = taxi_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect::<HashMap<_, _>>();
        assert_eq!(taxi_index.len(), taxi_ids.len(), "duplicate taxi id");
        Schedule {
            request_ids,
            taxi_ids,
            request_to_taxi,
            taxi_to_request,
            passenger_cost,
            taxi_cost,
            request_index,
            taxi_index,
        }
    }

    /// The outcome for request `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` was not part of the dispatched batch.
    #[must_use]
    pub fn assignment_of(&self, r: RequestId) -> DispatchOutcome {
        let i = *self
            .request_index
            .get(&r)
            .unwrap_or_else(|| panic!("{r} was not in this dispatch batch"));
        match self.request_to_taxi[i] {
            Some(t) => DispatchOutcome::Assigned(self.taxi_ids[t]),
            None => DispatchOutcome::Unserved,
        }
    }

    /// The request dispatched to taxi `t`, or `None` if it stayed idle.
    ///
    /// # Panics
    ///
    /// Panics if `t` was not part of the dispatched batch.
    #[must_use]
    pub fn request_of(&self, t: TaxiId) -> Option<RequestId> {
        let i = *self
            .taxi_index
            .get(&t)
            .unwrap_or_else(|| panic!("{t} was not in this dispatch batch"));
        self.taxi_to_request[i].map(|r| self.request_ids[r])
    }

    /// Matched `(request, taxi)` pairs in request order.
    pub fn pairs(&self) -> impl Iterator<Item = (RequestId, TaxiId)> + '_ {
        self.request_to_taxi
            .iter()
            .enumerate()
            .filter_map(move |(ri, ti)| ti.map(|ti| (self.request_ids[ri], self.taxi_ids[ti])))
    }

    /// Number of matched pairs.
    #[must_use]
    pub fn served_count(&self) -> usize {
        self.request_to_taxi.iter().flatten().count()
    }

    /// Requests left unserved, in request order.
    #[must_use]
    pub fn unserved(&self) -> Vec<RequestId> {
        self.request_to_taxi
            .iter()
            .enumerate()
            .filter(|(_, ti)| ti.is_none())
            .map(|(ri, _)| self.request_ids[ri])
            .collect()
    }

    /// Passenger dissatisfaction `D(t, r^s)` of a matched request.
    ///
    /// # Panics
    ///
    /// Panics if `r` was not part of the dispatched batch.
    #[must_use]
    pub fn passenger_dissatisfaction(&self, r: RequestId) -> Option<f64> {
        let i = *self
            .request_index
            .get(&r)
            .unwrap_or_else(|| panic!("{r} was not in this dispatch batch"));
        self.passenger_cost[i]
    }

    /// Taxi dissatisfaction `D(t, r^s) − α·D(r^s, r^d)` of a matched taxi.
    ///
    /// # Panics
    ///
    /// Panics if `t` was not part of the dispatched batch.
    #[must_use]
    pub fn taxi_dissatisfaction(&self, t: TaxiId) -> Option<f64> {
        let i = *self
            .taxi_index
            .get(&t)
            .unwrap_or_else(|| panic!("{t} was not in this dispatch batch"));
        self.taxi_cost[i]
    }

    /// Sum of passenger dissatisfaction over matched requests.
    #[must_use]
    pub fn total_passenger_dissatisfaction(&self) -> f64 {
        self.passenger_cost.iter().flatten().sum()
    }

    /// Sum of taxi dissatisfaction over matched taxis.
    #[must_use]
    pub fn total_taxi_dissatisfaction(&self) -> f64 {
        self.taxi_cost.iter().flatten().sum()
    }

    /// Request ids in this batch, in dispatch order.
    #[must_use]
    pub fn request_ids(&self) -> &[RequestId] {
        &self.request_ids
    }

    /// Taxi ids in this batch.
    #[must_use]
    pub fn taxi_ids(&self) -> &[TaxiId] {
        &self.taxi_ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::from_parts(
            vec![RequestId(10), RequestId(11), RequestId(12)],
            vec![TaxiId(0), TaxiId(1)],
            vec![Some(1), None, Some(0)],
            vec![Some(2.0), None, Some(3.0)],
            vec![Some(1.5), Some(-0.5)],
        )
    }

    #[test]
    fn lookups_work_both_ways() {
        let s = sample();
        assert_eq!(
            s.assignment_of(RequestId(10)),
            DispatchOutcome::Assigned(TaxiId(1))
        );
        assert_eq!(s.assignment_of(RequestId(11)), DispatchOutcome::Unserved);
        assert_eq!(s.request_of(TaxiId(0)), Some(RequestId(12)));
        assert_eq!(s.request_of(TaxiId(1)), Some(RequestId(10)));
    }

    #[test]
    fn counts_and_unserved() {
        let s = sample();
        assert_eq!(s.served_count(), 2);
        assert_eq!(s.unserved(), vec![RequestId(11)]);
        assert_eq!(s.pairs().count(), 2);
    }

    #[test]
    fn dissatisfaction_accessors() {
        let s = sample();
        assert_eq!(s.passenger_dissatisfaction(RequestId(10)), Some(2.0));
        assert_eq!(s.passenger_dissatisfaction(RequestId(11)), None);
        assert_eq!(s.taxi_dissatisfaction(TaxiId(1)), Some(-0.5));
        assert_eq!(s.total_passenger_dissatisfaction(), 5.0);
        assert_eq!(s.total_taxi_dissatisfaction(), 1.0);
    }

    #[test]
    fn outcome_taxi_helper() {
        assert_eq!(DispatchOutcome::Assigned(TaxiId(3)).taxi(), Some(TaxiId(3)));
        assert_eq!(DispatchOutcome::Unserved.taxi(), None);
    }

    #[test]
    #[should_panic(expected = "not in this dispatch batch")]
    fn unknown_request_panics() {
        let _ = sample().assignment_of(RequestId(99));
    }

    #[test]
    #[should_panic(expected = "assigned to two requests")]
    fn double_assignment_panics() {
        let _ = Schedule::from_parts(
            vec![RequestId(0), RequestId(1)],
            vec![TaxiId(0)],
            vec![Some(0), Some(0)],
            vec![Some(1.0), Some(1.0)],
            vec![Some(1.0)],
        );
    }
}
