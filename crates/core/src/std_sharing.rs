//! Sharing taxi dispatch — the paper's Algorithm 3 (STD-P / STD-T).
//!
//! Three stages:
//!
//! 1. **Feasible subsets** (`line 1`): exhaustively enumerate groups
//!    `c_k` of at most `max_group_size` requests whose canonical shared
//!    route keeps every member's detour within θ
//!    (`D_ck(r^s, r^d) − D(r^s, r^d) ≤ θ`).
//! 2. **Maximum set packing** (`line 2`, Eqs. 1–3): pack as many disjoint
//!    groups as possible with the configured
//!    [`SetPackingStrategy`].
//! 3. **Stable matching** (`line 3`): treat each packed group (and each
//!    leftover request) as a single meta-request and run Algorithm 1 with
//!    the sharing interest models — passenger key
//!    `D_ck(t, r^s) + β·[D_ck(r^s, r^d) − D(r^s, r^d)]` averaged over the
//!    group, driver key `D_ck(t) − (α+1)·Σ_j D(r_j^s, r_j^d)`.

use crate::shared_route::{routes_by_first_pickup, RoutePlan};
use crate::{PreferenceParams, Schedule};
use o2o_geo::Metric;
use o2o_matching::{Matching, SetPacking, SetPackingStrategy, StableInstance};
use o2o_obs as obs;
use o2o_par::{par_map, par_map_indexed, Parallelism};
use o2o_trace::{Request, RequestId, Taxi, TaxiId};

/// What stage 2's packing maximises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackingObjective {
    /// The paper's Eq. 1: maximise the number of packed subsets.
    #[default]
    GroupCount,
    /// Maximise the number of *requests covered* by packed subsets
    /// (weights each group by its size) — an extension; see the
    /// count-vs-coverage ablation.
    CoveredRequests,
}

/// How stage 1 generates candidate triples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TripleCandidates {
    /// Only triples whose three sub-pairs are all feasible are routed —
    /// the shareability-network pruning (Santi et al.); cubically fewer
    /// route searches with negligible loss in practice.
    #[default]
    FromFeasiblePairs,
    /// Route every triple, exactly as the paper's `O(|R|³)` line 1.
    Exhaustive,
}

/// Configuration of the sharing dispatcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingConfig {
    /// Set-packing solver for stage 2 (paper: the approximation of \[21\],
    /// here [`SetPackingStrategy::LocalSearch`]).
    pub packing: SetPackingStrategy,
    /// Candidate-triple generation policy.
    pub triples: TripleCandidates,
    /// Largest group size (paper: 3; `1` disables sharing entirely and
    /// recovers non-sharing dispatch).
    pub max_group_size: usize,
    /// Stage-2 objective (paper: group count).
    pub objective: PackingObjective,
    /// Keep only each request's `k` most compatible partners (smallest
    /// canonical shared-route length) when generating candidate groups —
    /// the standard k-nearest-neighbour shareability construction. Dense
    /// commuter demand makes *most* pairs detour-feasible, so the
    /// unbounded candidate set is `Θ(|R|²)` pairs and worse for triples;
    /// the cap keeps stage 1 linear in `|R|` with negligible packing
    /// loss. `None` enumerates every feasible group (the paper's literal
    /// `O(|R|³)` — use only for small frames).
    pub max_partners_per_request: Option<usize>,
}

impl Default for SharingConfig {
    fn default() -> Self {
        SharingConfig {
            packing: SetPackingStrategy::LocalSearch,
            triples: TripleCandidates::FromFeasiblePairs,
            objective: PackingObjective::GroupCount,
            max_group_size: 3,
            max_partners_per_request: Some(6),
        }
    }
}

/// One taxi serving a (possibly singleton) group of requests.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAssignment {
    /// The dispatched taxi.
    pub taxi: TaxiId,
    /// Members of the group.
    pub members: Vec<RequestId>,
    /// The route the taxi drives (chosen to minimise total driving from
    /// the taxi's location).
    pub route: RoutePlan,
    /// Per-member wait distance `D_ck(t, r^s)`.
    pub wait_distances: Vec<f64>,
    /// Per-member detour `D_ck(r^s, r^d) − D(r^s, r^d)`.
    pub detours: Vec<f64>,
    /// Per-member passenger dissatisfaction `wait + β·detour`.
    pub passenger_costs: Vec<f64>,
    /// Taxi dissatisfaction `D_ck(t) − (α+1)·Σ_j D(r_j^s, r_j^d)`.
    pub taxi_cost: f64,
    /// Total taxi driving distance `D_ck(t)`.
    pub total_drive: f64,
}

/// The outcome of one sharing dispatch frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SharingSchedule {
    /// Dispatched groups.
    pub assignments: Vec<GroupAssignment>,
    /// Requests left without a taxi this frame.
    pub unserved: Vec<RequestId>,
}

impl SharingSchedule {
    /// Number of served requests (across all groups).
    #[must_use]
    pub fn served_count(&self) -> usize {
        self.assignments.iter().map(|a| a.members.len()).sum()
    }

    /// Fraction of served requests riding in a group of two or more.
    ///
    /// Returns 0 when nothing is served.
    #[must_use]
    pub fn sharing_rate(&self) -> f64 {
        let served = self.served_count();
        if served == 0 {
            return 0.0;
        }
        let shared: usize = self
            .assignments
            .iter()
            .filter(|a| a.members.len() >= 2)
            .map(|a| a.members.len())
            .sum();
        shared as f64 / served as f64
    }

    /// Passenger dissatisfaction of `r`, if served.
    #[must_use]
    pub fn passenger_dissatisfaction(&self, r: RequestId) -> Option<f64> {
        self.assignments.iter().find_map(|a| {
            a.members
                .iter()
                .position(|&m| m == r)
                .map(|i| a.passenger_costs[i])
        })
    }

    /// Taxi dissatisfaction of `t`, if dispatched.
    #[must_use]
    pub fn taxi_dissatisfaction(&self, t: TaxiId) -> Option<f64> {
        self.assignments
            .iter()
            .find(|a| a.taxi == t)
            .map(|a| a.taxi_cost)
    }

    /// The group served by taxi `t`, if any.
    #[must_use]
    pub fn group_of(&self, t: TaxiId) -> Option<&GroupAssignment> {
        self.assignments.iter().find(|a| a.taxi == t)
    }
}

/// Sharing dispatcher (Algorithm 3); see the module docs for the stages.
///
/// # Examples
///
/// ```
/// use o2o_core::{PreferenceParams, SharingDispatcher};
/// use o2o_geo::{Euclidean, Point};
/// use o2o_trace::{Request, RequestId, Taxi, TaxiId};
///
/// let d = SharingDispatcher::new(Euclidean, PreferenceParams::default());
/// let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
/// let requests = vec![
///     Request::new(RequestId(0), 0, Point::new(1.0, 0.0), Point::new(9.0, 0.0)),
///     Request::new(RequestId(1), 0, Point::new(2.0, 0.0), Point::new(8.0, 0.0)),
/// ];
/// let s = d.dispatch_passenger_optimal(&taxis, &requests);
/// // Both requests chain perfectly, so one taxi serves both.
/// assert_eq!(s.served_count(), 2);
/// assert_eq!(s.assignments[0].members.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SharingDispatcher<M> {
    metric: M,
    params: PreferenceParams,
    config: SharingConfig,
    par: Parallelism,
}

struct GroupData {
    members: Vec<usize>,
    plans: Vec<RoutePlan>,
    directs: Vec<f64>,
    sum_trips: f64,
    total_passengers: u16,
}

struct Eval {
    plan_idx: usize,
    passenger_cost: f64,
    taxi_cost: f64,
}

impl<M: Metric> SharingDispatcher<M> {
    /// Creates a dispatcher with the default [`SharingConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`].
    #[must_use]
    pub fn new(metric: M, params: PreferenceParams) -> Self {
        Self::with_config(metric, params, SharingConfig::default())
    }

    /// Creates a dispatcher with an explicit config.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid or `max_group_size` is outside
    /// `1..=`[`crate::shared_route::MAX_GROUP_SIZE`].
    #[must_use]
    pub fn with_config(metric: M, params: PreferenceParams, config: SharingConfig) -> Self {
        params.validate().expect("invalid preference parameters");
        assert!(
            (1..=crate::shared_route::MAX_GROUP_SIZE).contains(&config.max_group_size),
            "max_group_size {} outside supported range",
            config.max_group_size
        );
        SharingDispatcher {
            metric,
            params,
            config,
            par: Parallelism::sequential(),
        }
    }

    /// Sets the thread budget for the expensive pipeline stages (stage-1
    /// candidate routing, packing scores, per-taxi group evaluation).
    ///
    /// Results are bit-identical for every setting: the parallel maps
    /// preserve input order and every cell is an independent computation,
    /// so `Parallelism::sequential()` and `Parallelism::fixed(n)` produce
    /// the same schedule.
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The config in use.
    #[must_use]
    pub fn config(&self) -> &SharingConfig {
        &self.config
    }

    /// The thread budget in use.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The metric in use.
    #[must_use]
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &PreferenceParams {
        &self.params
    }

    /// Whether the subset of `requests` at `members` can share a taxi:
    /// every member's detour on the group's canonical best route is within
    /// θ (`detour_threshold`).
    #[must_use]
    pub fn is_group_feasible(&self, requests: &[Request], members: &[usize]) -> bool {
        let mut group = [requests[members[0]]; crate::shared_route::MAX_GROUP_SIZE];
        for (slot, &i) in group.iter_mut().zip(members) {
            *slot = requests[i];
        }
        crate::shared_route::min_route_within_detour(
            &self.metric,
            &group[..members.len()],
            self.params.detour_threshold,
        )
    }

    /// Stage 1: all feasible sharing groups (size ≥ 2), as index sets into
    /// `requests`.
    ///
    /// Candidate pairs are pruned spatially before routing: if the
    /// length-minimal genuinely-shared route starts at `r_a`'s pick-up, it
    /// visits the other pick-up while `r_a` is on board, so
    /// `D(r_a^s, r_b^s) ≤ D(r_a^s, r_a^d) + θ` must hold from one side —
    /// a grid-index radius query per request replaces the all-pairs scan
    /// without losing any feasible pair.
    #[must_use]
    pub fn feasible_groups(&self, requests: &[Request]) -> Vec<Vec<usize>> {
        let _span = obs::span("feasible_groups");
        let n = requests.len();
        let mut out = Vec::new();
        if self.config.max_group_size < 2 || n < 2 {
            return out;
        }
        // Pickup index for the necessary-condition radius query.
        let bbox =
            o2o_geo::BBox::from_points(requests.iter().map(|r| r.pickup)).expect("non-empty");
        let cell = (bbox.width().max(bbox.height()) / 48.0).max(0.1);
        let mut index = o2o_geo::GridIndex::new(bbox, cell);
        for (i, r) in requests.iter().enumerate() {
            index.insert(i, r.pickup);
        }
        let theta = self.params.detour_threshold;
        // Gather candidate pairs with the (cheap) radius queries first,
        // then route them — the expensive part — in one parallel pass.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for (a, request) in requests.iter().enumerate() {
            let radius = request.trip_distance(&self.metric) + theta;
            if !radius.is_finite() {
                for b in (a + 1)..n {
                    candidates.push((a, b));
                }
            } else {
                for cand in index.within(request.pickup, radius) {
                    let b = cand.item;
                    if b != a {
                        candidates.push((a.min(b), a.max(b)));
                    }
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        // Score every feasible pair once (score = canonical route length).
        let lens = par_map(self.par, candidates.clone(), |(a, b)| {
            crate::shared_route::min_route_length_if_within_detour(
                &self.metric,
                &[requests[a], requests[b]],
                theta,
            )
        });
        let pair_score: std::collections::HashMap<(usize, usize), f64> = candidates
            .iter()
            .zip(lens)
            .filter_map(|(&key, len)| len.map(|len| (key, len)))
            .collect();
        // Bounded candidate generation: keep each request's best partners.
        let kept: std::collections::HashSet<(usize, usize)> =
            match self.config.max_partners_per_request {
                None => pair_score.keys().copied().collect(),
                Some(cap) => {
                    let mut per_request: Vec<Vec<(f64, usize)>> = vec![Vec::new(); n];
                    for (&(a, b), &len) in &pair_score {
                        per_request[a].push((len, b));
                        per_request[b].push((len, a));
                    }
                    let mut kept = std::collections::HashSet::new();
                    for (a, list) in per_request.iter_mut().enumerate() {
                        list.sort_by(|x, y| {
                            x.0.partial_cmp(&y.0)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(x.1.cmp(&y.1))
                        });
                        for &(_, b) in list.iter().take(cap) {
                            kept.insert((a.min(b), a.max(b)));
                        }
                    }
                    kept
                }
            };
        let mut pair_ok = vec![Vec::new(); n];
        for &(a, b) in &kept {
            pair_ok[a].push(b);
            out.push(vec![a, b]);
        }
        for list in &mut pair_ok {
            list.sort_unstable();
        }
        out.sort();
        if self.config.max_group_size >= 3 {
            match self.config.triples {
                TripleCandidates::FromFeasiblePairs => {
                    // Adjacency-closed triples are cheap to enumerate;
                    // route each candidate in parallel. The gathered order
                    // (a, then b's rank, then c) matches the sequential
                    // nesting, so the output order is unchanged.
                    let mut triple_cand: Vec<[usize; 3]> = Vec::new();
                    for a in 0..n {
                        for bi in 0..pair_ok[a].len() {
                            let b = pair_ok[a][bi];
                            for &c in &pair_ok[a][bi + 1..] {
                                if pair_ok[b].binary_search(&c).is_ok() {
                                    triple_cand.push([a, b, c]);
                                }
                            }
                        }
                    }
                    let feasible = par_map(self.par, triple_cand.clone(), |[a, b, c]| {
                        self.is_group_feasible(requests, &[a, b, c])
                    });
                    for ([a, b, c], ok) in triple_cand.into_iter().zip(feasible) {
                        if ok {
                            out.push(vec![a, b, c]);
                        }
                    }
                }
                TripleCandidates::Exhaustive => {
                    // O(n³) route searches: split by leading index so the
                    // candidate list never materialises; chunks come back
                    // in `a` order, matching the sequential nesting.
                    let per_a = par_map(self.par, (0..n).collect::<Vec<usize>>(), |a| {
                        let mut found = Vec::new();
                        for b in (a + 1)..n {
                            for c in (b + 1)..n {
                                if self.is_group_feasible(requests, &[a, b, c]) {
                                    found.push(vec![a, b, c]);
                                }
                            }
                        }
                        found
                    });
                    out.extend(per_a.into_iter().flatten());
                }
            }
        }
        out
    }

    /// Stages 1–2: the packed partition of the frame — disjoint sharing
    /// groups plus leftover singletons, covering every request exactly
    /// once.
    #[must_use]
    pub fn pack(&self, requests: &[Request]) -> Vec<Vec<usize>> {
        let candidates = self.feasible_groups(requests);
        let _span = obs::span("set_packing");
        obs::add("sharing.feasible_groups", candidates.len() as u64);
        let mut candidates = candidates;
        // Quality-aware ordering: the greedy packer (and the local search
        // seeded from it) prefers smaller sets first and breaks ties by
        // position, so sorting by canonical route length per member makes
        // equal-cardinality packings favour compatible groups.
        let mut scored: Vec<(usize, f64)> =
            par_map_indexed(self.par, candidates.clone(), |k, members| {
                let group: Vec<Request> = members.iter().map(|&i| requests[i]).collect();
                let len = crate::shared_route::min_route_length_if_within_detour(
                    &self.metric,
                    &group,
                    self.params.detour_threshold,
                )
                .unwrap_or(f64::INFINITY);
                (k, len / members.len() as f64)
            });
        scored.sort_by(|a, b| {
            (candidates[a.0].len(), a.1)
                .partial_cmp(&(candidates[b.0].len(), b.1))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        candidates = scored
            .into_iter()
            .map(|(k, _)| std::mem::take(&mut candidates[k]))
            .collect();
        let packing = SetPacking::new(requests.len(), candidates.clone())
            .expect("feasible groups are valid sets");
        let chosen = match self.config.objective {
            PackingObjective::GroupCount => packing.pack(self.config.packing),
            PackingObjective::CoveredRequests => {
                let sizes: Vec<f64> = candidates.iter().map(|g| g.len() as f64).collect();
                packing.pack_weighted(self.config.packing, &sizes)
            }
        };
        let mut covered = vec![false; requests.len()];
        let mut metas: Vec<Vec<usize>> = chosen
            .into_iter()
            .map(|k| {
                for &i in &candidates[k] {
                    covered[i] = true;
                }
                candidates[k].clone()
            })
            .collect();
        for (i, covered) in covered.iter().enumerate() {
            if !covered {
                metas.push(vec![i]);
            }
        }
        metas.sort();
        metas
    }

    /// **STD-P**: sharing dispatch with the passenger-optimal stable
    /// matching in stage 3.
    #[must_use]
    pub fn dispatch_passenger_optimal(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
    ) -> SharingSchedule {
        self.dispatch(taxis, requests, false)
    }

    /// **STD-T**: sharing dispatch with the taxi-optimal stable matching
    /// in stage 3.
    #[must_use]
    pub fn dispatch_taxi_optimal(&self, taxis: &[Taxi], requests: &[Request]) -> SharingSchedule {
        self.dispatch(taxis, requests, true)
    }

    fn group_data(&self, requests: &[Request], members: Vec<usize>) -> GroupData {
        let group: Vec<Request> = members.iter().map(|&i| requests[i]).collect();
        let plans = routes_by_first_pickup(&self.metric, &group);
        let directs: Vec<f64> = group
            .iter()
            .map(|r| r.trip_distance(&self.metric))
            .collect();
        let sum_trips = directs.iter().sum();
        let total_passengers = group.iter().map(|r| u16::from(r.passengers)).sum();
        GroupData {
            members,
            plans,
            directs,
            sum_trips,
            total_passengers,
        }
    }

    /// Whether every member's detour on `plan` is within θ.
    fn plan_within_detour(&self, g: &GroupData, plan: &RoutePlan) -> bool {
        (0..g.members.len())
            .all(|m| plan.detour(m, g.directs[m]) <= self.params.detour_threshold + 1e-9)
    }

    fn evaluate(&self, g: &GroupData, taxi: &Taxi) -> Eval {
        // The taxi drives the length-minimal route among the orders that
        // keep every member's detour within θ (the canonical feasible
        // route is always among them, so the choice is never empty). Only
        // the approach leg depends on the taxi, so pick among the
        // per-first-pickup plans.
        let (plan_idx, plan, approach) = g
            .plans
            .iter()
            .enumerate()
            .filter(|(_, p)| g.members.len() == 1 || self.plan_within_detour(g, p))
            .map(|(i, p)| (i, p, self.metric.distance(taxi.location, p.first_stop())))
            .min_by(|a, b| {
                (a.2 + a.1.internal_length)
                    .partial_cmp(&(b.2 + b.1.internal_length))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("groups are non-empty");
        let total_drive = approach + plan.internal_length;
        let k = g.members.len() as f64;
        let passenger_cost = (0..g.members.len())
            .map(|m| {
                let wait = approach + plan.pickup_offset[m];
                let detour = plan.detour(m, g.directs[m]);
                wait + self.params.beta * detour
            })
            .sum::<f64>()
            / k;
        let taxi_cost = total_drive - (self.params.alpha + 1.0) * g.sum_trips;
        Eval {
            plan_idx,
            passenger_cost,
            taxi_cost,
        }
    }

    fn dispatch(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_optimal: bool,
    ) -> SharingSchedule {
        if requests.is_empty() || taxis.is_empty() {
            return SharingSchedule {
                assignments: Vec::new(),
                unserved: requests.iter().map(|r| r.id).collect(),
            };
        }
        // Shared-route search per packed group, then the full
        // (group × taxi) evaluation matrix — both row-parallel.
        let packed = self.pack(requests);
        let _span = obs::span("sharing_evaluate");
        let groups: Vec<GroupData> = par_map(self.par, packed, |members| {
            self.group_data(requests, members)
        });
        let groups_ref = &groups;
        let evals: Vec<Vec<Eval>> =
            par_map(self.par, (0..groups.len()).collect::<Vec<usize>>(), |gi| {
                taxis
                    .iter()
                    .map(|t| self.evaluate(&groups_ref[gi], t))
                    .collect()
            });
        drop(_span);
        let fits = |g: &GroupData, t: &Taxi| g.total_passengers <= u16::from(t.seats);

        let group_lists: Vec<Vec<usize>> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                let mut list: Vec<usize> = (0..taxis.len())
                    .filter(|&ti| {
                        fits(g, &taxis[ti])
                            && evals[gi][ti].passenger_cost <= self.params.passenger_threshold
                    })
                    .collect();
                list.sort_by(|&a, &b| {
                    evals[gi][a]
                        .passenger_cost
                        .partial_cmp(&evals[gi][b].passenger_cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                list
            })
            .collect();
        let taxi_lists: Vec<Vec<usize>> = taxis
            .iter()
            .enumerate()
            .map(|(ti, t)| {
                let mut list: Vec<usize> = (0..groups.len())
                    .filter(|&gi| {
                        fits(&groups[gi], t)
                            && evals[gi][ti].taxi_cost <= self.params.taxi_threshold
                    })
                    .collect();
                list.sort_by(|&a, &b| {
                    evals[a][ti]
                        .taxi_cost
                        .partial_cmp(&evals[b][ti].taxi_cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                list
            })
            .collect();
        let instance = StableInstance::new(group_lists, taxi_lists)
            .expect("generated lists are in range and duplicate-free");
        let matching: Matching = if taxi_optimal {
            instance.reviewer_optimal()
        } else {
            instance.propose()
        };

        let mut assignments = Vec::new();
        let mut unserved = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            match matching.proposer_partner(gi) {
                Some(ti) => {
                    let taxi = &taxis[ti];
                    let eval = &evals[gi][ti];
                    let plan = g.plans[eval.plan_idx].clone();
                    let approach = self.metric.distance(taxi.location, plan.first_stop());
                    let wait_distances: Vec<f64> = (0..g.members.len())
                        .map(|m| approach + plan.pickup_offset[m])
                        .collect();
                    let detours: Vec<f64> = (0..g.members.len())
                        .map(|m| plan.detour(m, g.directs[m]))
                        .collect();
                    let passenger_costs: Vec<f64> = wait_distances
                        .iter()
                        .zip(&detours)
                        .map(|(w, d)| w + self.params.beta * d)
                        .collect();
                    let total_drive = approach + plan.internal_length;
                    assignments.push(GroupAssignment {
                        taxi: taxi.id,
                        members: g.members.iter().map(|&i| requests[i].id).collect(),
                        route: plan,
                        wait_distances,
                        detours,
                        passenger_costs,
                        taxi_cost: eval.taxi_cost,
                        total_drive,
                    });
                }
                None => {
                    unserved.extend(g.members.iter().map(|&i| requests[i].id));
                }
            }
        }
        unserved.sort_unstable_by_key(|r| r.0);
        SharingSchedule {
            assignments,
            unserved,
        }
    }

    /// With `max_group_size = 1`, sharing dispatch degenerates to the
    /// non-sharing Algorithm 1; this helper converts the result into a
    /// [`Schedule`] for direct comparison.
    ///
    /// # Panics
    ///
    /// Panics if any assignment actually contains more than one member.
    #[must_use]
    pub fn as_non_sharing_schedule(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        s: &SharingSchedule,
    ) -> Schedule {
        let request_ids: Vec<RequestId> = requests.iter().map(|r| r.id).collect();
        let taxi_ids: Vec<TaxiId> = taxis.iter().map(|t| t.id).collect();
        let taxi_pos: std::collections::HashMap<TaxiId, usize> =
            taxi_ids.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut request_to_taxi = vec![None; requests.len()];
        let mut passenger_cost = vec![None; requests.len()];
        let mut taxi_cost = vec![None; taxis.len()];
        for a in &s.assignments {
            assert_eq!(a.members.len(), 1, "schedule contains a shared group");
            let rj = request_ids
                .iter()
                .position(|&r| r == a.members[0])
                .expect("member is from this batch");
            let ti = taxi_pos[&a.taxi];
            request_to_taxi[rj] = Some(ti);
            passenger_cost[rj] = Some(a.passenger_costs[0]);
            taxi_cost[ti] = Some(a.taxi_cost);
        }
        Schedule::from_parts(
            request_ids,
            taxi_ids,
            request_to_taxi,
            passenger_cost,
            taxi_cost,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NonSharingDispatcher;
    use o2o_geo::{Euclidean, Point};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn taxi(id: u64, x: f64, y: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, y))
    }

    fn req(id: u64, sx: f64, sy: f64, dx: f64, dy: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(sx, sy), Point::new(dx, dy))
    }

    fn dispatcher() -> SharingDispatcher<Euclidean> {
        SharingDispatcher::new(
            Euclidean,
            PreferenceParams::unbounded().with_detour_threshold(5.0),
        )
    }

    #[test]
    fn collinear_pair_is_feasible_and_packed() {
        let requests = vec![req(0, 0.0, 0.0, 10.0, 0.0), req(1, 2.0, 0.0, 8.0, 0.0)];
        let d = dispatcher();
        assert!(d.is_group_feasible(&requests, &[0, 1]));
        let metas = d.pack(&requests);
        assert_eq!(metas, vec![vec![0, 1]]);
    }

    #[test]
    fn back_to_back_trips_are_not_sharing() {
        // Opposite directions: serving the trips sequentially would give
        // zero detour, but that is a re-dispatch, not a shared ride — the
        // route search excludes vehicle-empty orders, and every genuine
        // interleaving forces a huge detour, so the pair is infeasible.
        let requests = vec![req(0, 0.0, 0.0, 30.0, 0.0), req(1, 30.0, 10.0, 0.0, 10.0)];
        let d = dispatcher();
        assert!(!d.is_group_feasible(&requests, &[0, 1]));
        assert_eq!(d.pack(&requests).len(), 2);
    }

    #[test]
    fn crossing_trips_are_infeasible() {
        // r0 goes east 20 km; r1 cuts straight across r0's path. The
        // length-minimal route interleaves the trips and forces r0 into a
        // >5 km detour, so the group is infeasible under θ = 5.
        let requests = vec![req(0, 0.0, 0.0, 20.0, 0.0), req(1, 10.0, 5.0, 10.0, -5.0)];
        let d = dispatcher();
        assert!(!d.is_group_feasible(&requests, &[0, 1]));
        let metas = d.pack(&requests);
        assert_eq!(metas.len(), 2);
    }

    #[test]
    fn coverage_objective_packs_at_least_as_many_requests() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let requests: Vec<Request> = (0..14)
                .map(|i| {
                    req(
                        i,
                        rng.gen_range(-3.0..3.0),
                        rng.gen_range(-3.0..3.0),
                        rng.gen_range(-3.0..3.0),
                        rng.gen_range(-3.0..3.0),
                    )
                })
                .collect();
            let params = PreferenceParams::unbounded().with_detour_threshold(4.0);
            let covered = |cfg: SharingConfig| -> usize {
                SharingDispatcher::with_config(Euclidean, params, cfg)
                    .pack(&requests)
                    .iter()
                    .filter(|g| g.len() >= 2)
                    .map(Vec::len)
                    .sum()
            };
            let count_obj = covered(SharingConfig::default());
            let coverage_obj = covered(SharingConfig {
                objective: PackingObjective::CoveredRequests,
                ..SharingConfig::default()
            });
            assert!(
                coverage_obj + 1 >= count_obj,
                "coverage {coverage_obj} should not trail count {count_obj} by more than                  local-search noise"
            );
        }
    }

    #[test]
    fn pack_covers_every_request_once() {
        let mut rng = StdRng::seed_from_u64(5);
        let requests: Vec<Request> = (0..12)
            .map(|i| {
                req(
                    i,
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-3.0..3.0),
                )
            })
            .collect();
        let metas = dispatcher().pack(&requests);
        let mut seen = vec![false; requests.len()];
        for g in &metas {
            for &i in g {
                assert!(!seen[i], "request {i} in two groups");
                seen[i] = true;
            }
            assert!(g.len() <= 3);
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shared_assignment_reports_consistent_metrics() {
        let taxis = vec![taxi(0, -1.0, 0.0)];
        let requests = vec![req(0, 0.0, 0.0, 10.0, 0.0), req(1, 2.0, 0.0, 8.0, 0.0)];
        let s = dispatcher().dispatch_passenger_optimal(&taxis, &requests);
        assert_eq!(s.served_count(), 2);
        assert_eq!(s.sharing_rate(), 1.0);
        let a = &s.assignments[0];
        // Route: taxi(-1,0) → 0 → 2 → 8 → 10; total drive 11.
        assert!((a.total_drive - 11.0).abs() < 1e-9);
        assert!((a.wait_distances[0] - 1.0).abs() < 1e-9);
        assert!((a.wait_distances[1] - 3.0).abs() < 1e-9);
        assert_eq!(a.detours, vec![0.0, 0.0]);
        // Taxi cost = 11 − 2·(10+6) = −21 with α = 1.
        assert!((a.taxi_cost - (11.0 - 2.0 * 16.0)).abs() < 1e-9);
        assert_eq!(
            s.passenger_dissatisfaction(RequestId(1)),
            Some(a.passenger_costs[1])
        );
        assert_eq!(s.taxi_dissatisfaction(TaxiId(0)), Some(a.taxi_cost));
        assert!(s.group_of(TaxiId(0)).is_some());
    }

    #[test]
    fn seat_constraint_blocks_large_groups() {
        let mut taxis = vec![Taxi::with_seats(TaxiId(0), Point::new(0.0, 0.0), 2)];
        let requests = vec![
            Request::with_party(
                RequestId(0),
                0,
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                2,
            ),
            Request::with_party(
                RequestId(1),
                0,
                Point::new(1.0, 0.0),
                Point::new(4.0, 0.0),
                2,
            ),
        ];
        let d = dispatcher();
        let s = d.dispatch_passenger_optimal(&taxis, &requests);
        // Group of 4 passengers cannot fit a 2-seat taxi; only a singleton
        // can be served.
        assert!(s.assignments.iter().all(|a| a.members.len() == 1));
        // A 4-seat taxi can take the group.
        taxis[0] = Taxi::with_seats(TaxiId(0), Point::new(0.0, 0.0), 4);
        let s = d.dispatch_passenger_optimal(&taxis, &requests);
        assert_eq!(s.served_count(), 2);
    }

    #[test]
    fn empty_inputs() {
        let d = dispatcher();
        let s = d.dispatch_passenger_optimal(&[], &[]);
        assert_eq!(s.served_count(), 0);
        let s = d.dispatch_passenger_optimal(&[], &[req(0, 0.0, 0.0, 1.0, 0.0)]);
        assert_eq!(s.unserved, vec![RequestId(0)]);
        let s = d.dispatch_passenger_optimal(&[taxi(0, 0.0, 0.0)], &[]);
        assert!(s.assignments.is_empty());
    }

    #[test]
    fn group_size_one_matches_non_sharing_dispatch() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..25 {
            let taxis: Vec<Taxi> = (0..4)
                .map(|i| taxi(i, rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                .collect();
            let requests: Vec<Request> = (0..5)
                .map(|j| {
                    req(
                        j,
                        rng.gen_range(-5.0..5.0),
                        rng.gen_range(-5.0..5.0),
                        rng.gen_range(-5.0..5.0),
                        rng.gen_range(-5.0..5.0),
                    )
                })
                .collect();
            let params = PreferenceParams::paper();
            let sharing = SharingDispatcher::with_config(
                Euclidean,
                params,
                SharingConfig {
                    max_group_size: 1,
                    ..SharingConfig::default()
                },
            );
            let non_sharing = NonSharingDispatcher::new(Euclidean, params);
            // Costs can differ by float rounding (different association
            // order), so compare matchings exactly and costs approximately.
            let assert_equivalent = |a: &Schedule, b: &Schedule| {
                for r in &requests {
                    assert_eq!(a.assignment_of(r.id), b.assignment_of(r.id));
                    match (
                        a.passenger_dissatisfaction(r.id),
                        b.passenger_dissatisfaction(r.id),
                    ) {
                        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                        (x, y) => assert_eq!(x, y),
                    }
                }
                for t in &taxis {
                    match (a.taxi_dissatisfaction(t.id), b.taxi_dissatisfaction(t.id)) {
                        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                        (x, y) => assert_eq!(x, y),
                    }
                }
            };
            let a = sharing.dispatch_passenger_optimal(&taxis, &requests);
            let a = sharing.as_non_sharing_schedule(&taxis, &requests, &a);
            let b = non_sharing.passenger_optimal(&taxis, &requests);
            assert_equivalent(&a, &b);
            let at = sharing.dispatch_taxi_optimal(&taxis, &requests);
            let at = sharing.as_non_sharing_schedule(&taxis, &requests, &at);
            let bt = non_sharing.taxi_optimal(&taxis, &requests);
            assert_equivalent(&at, &bt);
        }
    }

    #[test]
    fn exhaustive_triples_superset_of_pruned() {
        let mut rng = StdRng::seed_from_u64(3);
        let requests: Vec<Request> = (0..8)
            .map(|i| {
                req(
                    i,
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(-2.0..2.0),
                )
            })
            .collect();
        let params = PreferenceParams::unbounded().with_detour_threshold(3.0);
        let pruned = SharingDispatcher::with_config(
            Euclidean,
            params,
            SharingConfig {
                triples: TripleCandidates::FromFeasiblePairs,
                ..SharingConfig::default()
            },
        );
        let exhaustive = SharingDispatcher::with_config(
            Euclidean,
            params,
            SharingConfig {
                triples: TripleCandidates::Exhaustive,
                ..SharingConfig::default()
            },
        );
        let a = pruned.feasible_groups(&requests);
        let b = exhaustive.feasible_groups(&requests);
        for g in &a {
            assert!(b.contains(g), "pruned found a group exhaustive missed");
        }
        assert!(a.len() <= b.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Dispatch invariants on random frames: disjoint service, detours
        /// within θ, each taxi used at most once, metrics finite.
        #[test]
        fn dispatch_invariants(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let taxis: Vec<Taxi> = (0..4)
                .map(|i| taxi(i, rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)))
                .collect();
            let requests: Vec<Request> = (0..7)
                .map(|j| req(
                    j,
                    rng.gen_range(-4.0..4.0),
                    rng.gen_range(-4.0..4.0),
                    rng.gen_range(-4.0..4.0),
                    rng.gen_range(-4.0..4.0),
                ))
                .collect();
            let d = SharingDispatcher::new(
                Euclidean,
                PreferenceParams::unbounded().with_detour_threshold(2.0),
            );
            let s = d.dispatch_passenger_optimal(&taxis, &requests);
            let mut seen_requests = std::collections::HashSet::new();
            let mut seen_taxis = std::collections::HashSet::new();
            for a in &s.assignments {
                prop_assert!(seen_taxis.insert(a.taxi), "taxi reused");
                for (&m, &detour) in a.members.iter().zip(&a.detours) {
                    prop_assert!(seen_requests.insert(m), "request served twice");
                    prop_assert!(detour <= 2.0 + 1e-9, "detour {detour} over budget");
                }
                prop_assert!(a.taxi_cost.is_finite());
                prop_assert!(a.passenger_costs.iter().all(|c| c.is_finite()));
            }
            for u in &s.unserved {
                prop_assert!(seen_requests.insert(*u), "unserved request also served");
            }
            prop_assert_eq!(seen_requests.len(), requests.len());
        }
    }
}
