//! Preference-order construction — the paper's §IV.A interest models.
//!
//! * A **passenger** `r_j` "mainly cares about the taxi wait time", so it
//!   ranks taxis by `D(t_i, r_j^s)` ascending; taxis beyond the wait
//!   threshold, and taxis without enough seats, fall below the dummy entry
//!   (the passenger would rather stay unserved).
//! * A **driver** `t_i` weighs "(i) the idle taxi driving distance … and
//!   (ii) the taxi traveling distance" and ranks requests by
//!   `D(t_i, r_j^s) − α·D(r_j^s, r_j^d)` ascending; requests whose score
//!   exceeds the driver threshold, and parties that do not fit, fall below
//!   the dummy.
//!
//! The result is a [`StableInstance`] (requests propose, taxis review) plus
//! the raw cost matrices needed to report dissatisfaction afterwards.

use crate::PreferenceParams;
use o2o_geo::{heuristic_cell_size, BBox, GridIndex, Metric, Point};
use o2o_matching::StableInstance;
use o2o_obs as obs;
use o2o_par::{par_map, try_par_map, Parallelism, WorkerPanic};
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use std::collections::HashMap;

/// The idle-taxi × pending-request pick-up distance matrix of one frame.
///
/// `D(t_i, r_j^s)` is policy-independent: every dispatcher starts from
/// the same matrix, so the simulator can precompute it once per frame (in
/// parallel) and hand it to whichever policy runs. Sharing it changes
/// nothing numerically — the entries are exactly the metric's answers —
/// it only avoids recomputing them per policy stage.
#[derive(Debug, Clone, PartialEq)]
pub struct PickupDistances {
    n_requests: usize,
    n_taxis: usize,
    /// Row-major: `d[j * n_taxis + i]` = `D(t_i, r_j^s)`.
    d: Vec<f64>,
}

impl PickupDistances {
    /// Computes the full matrix, splitting request rows across threads.
    #[must_use]
    pub fn compute<M: Metric>(
        metric: &M,
        taxis: &[Taxi],
        requests: &[Request],
        par: Parallelism,
    ) -> Self {
        // One contiguous location array shared by every row lets each
        // request run the batched one-to-many kernel (the pickup as the
        // shared origin — metrics are symmetric by contract, and the
        // built-in kernels are bit-exact under the argument swap).
        let locations: Vec<Point> = taxis.iter().map(|t| t.location).collect();
        let rows = par_map(par, requests.to_vec(), |r| {
            let mut row = vec![0.0f64; locations.len()];
            metric.distances_into(r.pickup, &locations, &mut row);
            row
        });
        PickupDistances {
            n_requests: requests.len(),
            n_taxis: taxis.len(),
            d: rows.concat(),
        }
    }

    /// [`compute`](Self::compute) with panic isolation: metric workers
    /// run under `catch_unwind` ([`o2o_par::try_par_map`]), a panicking
    /// chunk is retried sequentially once, and a persistent panic comes
    /// back as a typed [`WorkerPanic`] instead of tearing down the frame
    /// loop. On success the matrix is bit-identical to
    /// [`compute`](Self::compute).
    ///
    /// # Errors
    ///
    /// Returns [`WorkerPanic`] (with the offending request row index)
    /// when a metric evaluation panics even on retry.
    pub fn try_compute<M: Metric>(
        metric: &M,
        taxis: &[Taxi],
        requests: &[Request],
        par: Parallelism,
    ) -> Result<Self, WorkerPanic> {
        let locations: Vec<Point> = taxis.iter().map(|t| t.location).collect();
        let out = try_par_map(par, requests.to_vec(), |r| {
            let mut row = vec![0.0f64; locations.len()];
            metric.distances_into(r.pickup, &locations, &mut row);
            row
        })?;
        Ok(PickupDistances {
            n_requests: requests.len(),
            n_taxis: taxis.len(),
            d: out.values.concat(),
        })
    }

    /// `D(t_i, r_j^s)` for request row `j` and taxi column `i`.
    #[must_use]
    pub fn get(&self, request: usize, taxi: usize) -> f64 {
        self.d[request * self.n_taxis + taxi]
    }

    /// `(requests, taxis)` dimensions of the matrix.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.n_requests, self.n_taxis)
    }
}

/// Preference orders of one dispatch frame, ready for matching.
///
/// Requests are proposers (index = position in the input slice), taxis are
/// reviewers.
#[derive(Debug, Clone)]
pub struct PreferenceModel {
    /// The stable-marriage instance (requests propose).
    pub instance: StableInstance,
    /// `pickup[j][i]` = `D(t_i, r_j^s)` — passenger `j`'s cost of taxi `i`.
    pub pickup: Vec<Vec<f64>>,
    /// `score[i][j]` = `D(t_i, r_j^s) − α·D(r_j^s, r_j^d)` — driver `i`'s
    /// cost of request `j`.
    pub score: Vec<Vec<f64>>,
}

impl PreferenceModel {
    /// Builds the paper's non-sharing preference orders.
    ///
    /// Complexity `O(|R|·|T|·(cost of the metric) + |R|·|T|·log|T|)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`].
    #[must_use]
    pub fn build<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
    ) -> Self {
        Self::build_with(
            metric,
            params,
            taxis,
            requests,
            Parallelism::sequential(),
            None,
        )
    }

    /// [`build`](Self::build) with an explicit thread budget and an
    /// optional precomputed pick-up distance matrix.
    ///
    /// The result is bit-identical for every `par`: rows are independent
    /// and the parallel map preserves input order, so every float is the
    /// same operation on the same inputs as the sequential pass. When
    /// `pickup_distances` is given (shape-checked against the inputs) the
    /// matrix pass reuses it instead of querying the metric — it must
    /// therefore have been computed with this same `metric` (a memoizing
    /// wrapper such as a distance cache over it is fine); debug builds
    /// assert a sampled entry agrees.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`] or
    /// `pickup_distances` has the wrong shape.
    #[must_use]
    pub fn build_with<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
        par: Parallelism,
        pickup_distances: Option<&PickupDistances>,
    ) -> Self {
        let _span = obs::span("preference_build");
        params.validate().expect("invalid preference parameters");
        let n_r = requests.len();
        let n_t = taxis.len();
        if let Some(pd) = pickup_distances {
            assert_eq!(
                pd.shape(),
                (n_r, n_t),
                "pickup-distance matrix shape mismatch: frame has {n_r} \
                 requests × {n_t} taxis (first request {:?}, first taxi {:?})",
                requests.first().map(|r| r.id),
                taxis.first().map(|t| t.id),
            );
            // The caller promises the matrix was computed with this same
            // `metric`; a mismatch (e.g. Euclidean precomputation fed to
            // a road-network policy) silently skews every preference, so
            // spot-check one entry in debug builds.
            if n_r > 0 && n_t > 0 {
                let expect = metric.distance(taxis[0].location, requests[0].pickup);
                debug_assert!(
                    (pd.get(0, 0) - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                    "pickup-distance matrix disagrees with the policy metric \
                     for taxi {:?} → request {:?} (cached {} vs metric \
                     {expect}): was it computed with a different metric?",
                    taxis[0].id,
                    requests[0].id,
                    pd.get(0, 0),
                );
            }
        }

        // One row per request: costs against every taxi, plus the
        // passenger list — taxis with enough seats within the wait
        // threshold, nearest first (ties by taxi index for determinism).
        type Row = (Vec<f64>, Vec<f64>, Vec<usize>);
        let locations: Vec<Point> = taxis.iter().map(|t| t.location).collect();
        let rows: Vec<Row> = par_map(par, (0..n_r).collect(), |j| {
            let r = &requests[j];
            let trip = r.trip_distance(metric);
            let mut pickup_row = vec![0.0f64; n_t];
            match pickup_distances {
                Some(pd) => {
                    for (i, d) in pickup_row.iter_mut().enumerate() {
                        *d = pd.get(j, i);
                    }
                }
                // Batched one-to-many kernel (pickup as the shared
                // origin; see PickupDistances::compute).
                None => metric.distances_into(r.pickup, &locations, &mut pickup_row),
            }
            let mut score_row = Vec::with_capacity(n_t);
            for &d in &pickup_row {
                score_row.push(d - params.alpha * trip);
            }
            let mut list: Vec<usize> = (0..n_t)
                .filter(|&i| {
                    taxis[i].seats >= r.passengers && pickup_row[i] <= params.passenger_threshold
                })
                .collect();
            list.sort_by(|&a, &b| {
                pickup_row[a]
                    .partial_cmp(&pickup_row[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            (pickup_row, score_row, list)
        });
        let mut pickup = Vec::with_capacity(n_r);
        let mut score = Vec::with_capacity(n_r); // request-major; transposed below
        let mut request_lists = Vec::with_capacity(n_r);
        for (pickup_row, score_row, list) in rows {
            pickup.push(pickup_row);
            score.push(score_row);
            request_lists.push(list);
        }

        // One column per taxi: the driver list — fitting parties whose
        // score clears the threshold, lowest score first — and the
        // taxi-major score row for reporting.
        let score_ref = &score;
        let cols: Vec<(Vec<usize>, Vec<f64>)> = par_map(par, (0..n_t).collect(), |i| {
            let t = &taxis[i];
            let mut list: Vec<usize> = (0..n_r)
                .filter(|&j| {
                    t.seats >= requests[j].passengers && score_ref[j][i] <= params.taxi_threshold
                })
                .collect();
            list.sort_by(|&a, &b| {
                score_ref[a][i]
                    .partial_cmp(&score_ref[b][i])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let score_t_row: Vec<f64> = (0..n_r).map(|j| score_ref[j][i]).collect();
            (list, score_t_row)
        });
        let mut taxi_lists = Vec::with_capacity(n_t);
        let mut score_t = Vec::with_capacity(n_t);
        for (list, score_t_row) in cols {
            taxi_lists.push(list);
            score_t.push(score_t_row);
        }

        let instance = StableInstance::new(request_lists, taxi_lists)
            .expect("generated lists are in range and duplicate-free");
        PreferenceModel {
            instance,
            pickup,
            score: score_t,
        }
    }
}

/// The inclusive Euclidean candidate radius around a request's pick-up:
/// any taxi that can be mutually acceptable lies within it.
///
/// Both acceptance filters bound the pick-up distance by
/// `min(θ_p, θ_t + α·trip)`; the bound is inflated by a relative `1e-9`
/// slack so the float rounding of `d − α·trip` can never exclude a taxi
/// the dense filter would admit (see [`SparsePickupDistances`]). This is
/// the **single source of truth** for that radius — the sparse candidate
/// builder, the incremental row patcher and the shard partitioner must all
/// agree on it bit-for-bit, or an entity could be classified interior to a
/// shard while the candidate builder still reaches across the border.
///
/// Returns a negative value or `NaN` only when the thresholds themselves
/// are (callers treat that as "no candidates"); `+∞` means unbounded.
#[must_use]
pub fn candidate_radius(params: &PreferenceParams, trip: f64) -> f64 {
    let alpha_trip = params.alpha * trip;
    let bound = params
        .passenger_threshold
        .min(params.taxi_threshold + alpha_trip);
    bound + 1e-9 * (1.0 + bound.abs() + alpha_trip.abs())
}

/// Builds the per-frame spatial index over taxi positions: taxi *index*
/// payloads (positions in the input slice) in a grid sized by
/// [`heuristic_cell_size`].
///
/// Built once per frame and shared by the sparse preference builder and the
/// grid-based baselines. The bounding box covers only the taxis; queries
/// from pick-up points outside it are still exact (the grid clamps the
/// query cell, which only shrinks per-axis offsets to stored points, so
/// ring lower bounds remain valid).
#[must_use]
pub fn build_taxi_grid(taxis: &[Taxi]) -> GridIndex<usize> {
    let _span = obs::span("grid_build");
    let bbox = BBox::from_points(taxis.iter().map(|t| t.location))
        .unwrap_or_else(|| BBox::square(Point::ORIGIN, 1.0));
    GridIndex::bulk_build(
        bbox,
        heuristic_cell_size(bbox),
        taxis
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.location))
            .collect(),
    )
}

/// Sparse per-request pick-up distances: for each request, only the taxis
/// a grid prefilter admits as possibly mutually acceptable.
///
/// A pair `(t_i, r_j)` can appear in any preference list only when both
/// sides accept it: `D(t_i, r_j^s) ≤ θ_p` (passenger) **and**
/// `D(t_i, r_j^s) − α·trip_j ≤ θ_t` (driver) — entries failing either test
/// are no-ops in every stable-matching algorithm (a proposal to a reviewer
/// that does not rank you back is skipped, and vice versa), so dropping
/// them changes nothing. Both tests bound the pick-up distance by
/// `min(θ_p, θ_t + α·trip_j)`, which a taxi grid answers in `O(candidates)`
/// instead of `O(|T|)` per request.
///
/// The grid measures Euclidean distance, which must lower-bound the
/// dispatch metric (true for [`o2o_geo::Manhattan`] and for road networks
/// whose edge weights are at least the segment lengths — the same contract
/// [`GridIndex`] documents for the baselines). The query radius is inflated
/// by a relative `1e-9` slack so the float rounding of `d − α·trip` can
/// never exclude a taxi the dense filter `d − α·trip ≤ θ_t` would admit;
/// candidates then pass through exactly the dense filters on the true
/// metric distances, keeping the surviving set — and every cost — bit-for-
/// bit identical to the dense path.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsePickupDistances {
    n_requests: usize,
    n_taxis: usize,
    /// `rows[j]` = `(taxi index, D(t_i, r_j^s))` for every prefiltered
    /// candidate, sorted by `(distance, taxi index)`.
    rows: Vec<Vec<(usize, f64)>>,
    /// `trips[j]` = `D(r_j^s, r_j^d)`.
    trips: Vec<f64>,
}

impl SparsePickupDistances {
    /// Computes candidate rows for every request, in parallel.
    ///
    /// `grid` must index `0..taxis.len()` at the taxis' current locations
    /// (see [`build_taxi_grid`]).
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`]. Debug builds
    /// assert that `grid` holds one entry per taxi.
    #[must_use]
    pub fn compute<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
        grid: &GridIndex<usize>,
        par: Parallelism,
    ) -> Self {
        params.validate().expect("invalid preference parameters");
        debug_assert_eq!(
            grid.len(),
            taxis.len(),
            "taxi grid does not match the taxi slice"
        );
        let n_r = requests.len();
        let n_t = taxis.len();
        let rows_trips: Vec<(Vec<(usize, f64)>, f64)> = par_map(par, (0..n_r).collect(), |j| {
            Self::fresh_row(metric, params, taxis, &requests[j], grid)
        });
        let mut rows = Vec::with_capacity(n_r);
        let mut trips = Vec::with_capacity(n_r);
        for (row, trip) in rows_trips {
            rows.push(row);
            trips.push(trip);
        }
        SparsePickupDistances {
            n_requests: n_r,
            n_taxis: n_t,
            rows,
            trips,
        }
    }

    /// Candidate `(taxi, D(t_i, r_j^s))` pairs for request `j`, sorted by
    /// `(distance, taxi index)`.
    #[must_use]
    pub fn row(&self, request: usize) -> &[(usize, f64)] {
        &self.rows[request]
    }

    /// `D(r_j^s, r_j^d)` for request `j`.
    #[must_use]
    pub fn trip(&self, request: usize) -> f64 {
        self.trips[request]
    }

    /// `(requests, taxis)` dimensions of the (virtual) matrix.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.n_requests, self.n_taxis)
    }

    /// Total number of stored candidate pairs — the sparse analogue of
    /// `|R|·|T|`; benchmark reports use the ratio as the pruning factor.
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// [`compute`](Self::compute), patching the previous frame's candidate
    /// rows instead of re-querying the grid and the metric for pairs that
    /// cannot have changed.
    ///
    /// A candidate row is a pure function of `(pickup, radius, taxi
    /// positions)`: membership is the grid's inclusive Euclidean test
    /// `‖t_i − r_j^s‖ ≤ radius`, costs are exact metric distances, and the
    /// order is the `(distance, index)` sort. So for a request carried
    /// unchanged from the previous frame (same id, bit-identical pickup
    /// and drop-off — hence the same trip and radius), the new row is the
    /// old row with
    ///
    /// 1. entries of departed or moved taxis dropped (their stored
    ///    distance belongs to a position no longer in the frame), and
    /// 2. every moved-or-new taxi re-tested against the same inclusive
    ///    Euclidean predicate, its metric distance computed fresh on
    ///    admission,
    ///
    /// then re-sorted with the same comparator — bit-identical to a fresh
    /// [`compute`](Self::compute), at the cost of the *changed* taxis
    /// rather than the whole candidate set. Requests that are new, moved,
    /// or carried under different [`PreferenceParams`] fall back to the
    /// fresh grid path, as does the entire frame when either frame's taxi
    /// ids are ambiguous (duplicates). `carry` is updated with this
    /// frame's rows for the next call; exactness requires only that the
    /// carry is always fed through the **same metric** (it revalidates
    /// params itself).
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`]. Debug
    /// builds assert that `grid` holds one entry per taxi.
    #[must_use]
    pub fn compute_incremental<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
        grid: &GridIndex<usize>,
        par: Parallelism,
        carry: &mut CandidateCarry,
    ) -> Self {
        params.validate().expect("invalid preference parameters");
        debug_assert_eq!(
            grid.len(),
            taxis.len(),
            "taxi grid does not match the taxi slice"
        );
        let n_r = requests.len();
        let n_t = taxis.len();

        // Map the carried frame onto this one. `stable_new[old]` is the
        // current index of an old taxi still at the bit-identical
        // position; `changed` lists current taxis that are new or moved.
        // Ambiguous (duplicate) taxi ids on either side disable reuse for
        // the whole frame — a duplicate id could map one old row entry to
        // the wrong taxi.
        let mut old_taxi_at: HashMap<TaxiId, usize> = HashMap::with_capacity(carry.taxis.len());
        let mut unambiguous = carry.params == Some(*params);
        for (i, &(id, _)) in carry.taxis.iter().enumerate() {
            if old_taxi_at.insert(id, i).is_some() {
                unambiguous = false;
            }
        }
        let mut stable_new: Vec<Option<usize>> = vec![None; carry.taxis.len()];
        let mut changed: Vec<(usize, Point)> = Vec::new();
        let mut seen_new: HashMap<TaxiId, ()> = HashMap::with_capacity(n_t);
        for (i, t) in taxis.iter().enumerate() {
            if seen_new.insert(t.id, ()).is_some() {
                unambiguous = false;
            }
            match old_taxi_at.get(&t.id) {
                Some(&j) if same_bits(carry.taxis[j].1, t.location) => stable_new[j] = Some(i),
                _ => changed.push((i, t.location)),
            }
        }
        // Duplicate *request* ids are harmless: the carried row is keyed
        // by bit-identical pickup/drop-off, and any old request passing
        // that check carries the right row for this pickup.
        let old_req_at: HashMap<RequestId, usize> = carry
            .requests
            .iter()
            .enumerate()
            .map(|(j, &(id, _, _))| (id, j))
            .collect();

        let carry_ref = &*carry;
        let stable_new = &stable_new;
        let changed = &changed;
        let old_req_at = &old_req_at;
        let rows_trips: Vec<(Vec<(usize, f64)>, f64)> = par_map(par, (0..n_r).collect(), |j| {
            let r = &requests[j];
            if unambiguous {
                if let Some(&oj) = old_req_at.get(&r.id) {
                    let (_, op, od) = carry_ref.requests[oj];
                    if same_bits(op, r.pickup) && same_bits(od, r.dropoff) {
                        let trip = carry_ref.trips[oj];
                        let radius = candidate_radius(params, trip);
                        let mut row: Vec<(usize, f64)> = if radius.is_nan() || radius < 0.0 {
                            Vec::new()
                        } else {
                            let mut row: Vec<(usize, f64)> = carry_ref.rows[oj]
                                .iter()
                                .filter_map(|&(oi, d)| stable_new[oi].map(|ni| (ni, d)))
                                .collect();
                            // The grid's inclusive membership test, then
                            // the batched one-to-many kernel with the same
                            // pickup-as-origin orientation as the fresh
                            // row, so patched and fresh entries stay
                            // bit-identical.
                            let survivors: Vec<(usize, Point)> = changed
                                .iter()
                                .filter(|&&(_, pos)| pos.euclidean(r.pickup) <= radius)
                                .copied()
                                .collect();
                            let locations: Vec<Point> =
                                survivors.iter().map(|&(_, pos)| pos).collect();
                            let mut dists = vec![0.0f64; locations.len()];
                            metric.distances_into(r.pickup, &locations, &mut dists);
                            row.extend(survivors.iter().zip(&dists).map(|(&(ni, _), &d)| (ni, d)));
                            row
                        };
                        row.sort_by(|a, b| {
                            a.1.partial_cmp(&b.1)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.0.cmp(&b.0))
                        });
                        return (row, trip);
                    }
                }
            }
            Self::fresh_row(metric, params, taxis, r, grid)
        });

        let mut rows = Vec::with_capacity(n_r);
        let mut trips = Vec::with_capacity(n_r);
        for (row, trip) in rows_trips {
            rows.push(row);
            trips.push(trip);
        }
        carry.params = Some(*params);
        carry.taxis = taxis.iter().map(|t| (t.id, t.location)).collect();
        carry.requests = requests
            .iter()
            .map(|r| (r.id, r.pickup, r.dropoff))
            .collect();
        carry.rows = rows.clone();
        carry.trips = trips.clone();
        SparsePickupDistances {
            n_requests: n_r,
            n_taxis: n_t,
            rows,
            trips,
        }
    }

    /// One request's fresh candidate row: grid prefilter, exact metric
    /// distances, `(distance, index)` sort. Shared by [`Self::compute`]
    /// and the fallback path of [`Self::compute_incremental`].
    fn fresh_row<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        r: &Request,
        grid: &GridIndex<usize>,
    ) -> (Vec<(usize, f64)>, f64) {
        let trip = r.trip_distance(metric);
        // Inflate to absorb the rounding of `d − α·trip` vs
        // `θ_t + α·trip`; exact filters run on metric distances later.
        let radius = candidate_radius(params, trip);
        let mut row: Vec<(usize, f64)> = if radius.is_nan() || radius < 0.0 {
            Vec::new()
        } else {
            // Grid radius query, then the batched one-to-many kernel over
            // the surviving candidates (pickup as the shared origin; see
            // PickupDistances::compute).
            let neighbors = grid.within(r.pickup, radius);
            let locations: Vec<Point> = neighbors.iter().map(|n| taxis[n.item].location).collect();
            let mut dists = vec![0.0f64; locations.len()];
            metric.distances_into(r.pickup, &locations, &mut dists);
            neighbors
                .iter()
                .zip(&dists)
                .map(|(n, &d)| (n.item, d))
                .collect()
        };
        // Same total order as the dense row sort: metric distance,
        // then taxi index.
        row.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        (row, trip)
    }
}

/// `true` when two points are bit-identical on both coordinates — the
/// carry's notion of "did not move" (any representational change, `-0.0`
/// vs `0.0` included, conservatively counts as moved).
fn same_bits(a: Point, b: Point) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

/// Cross-frame carry of sparse candidate rows for
/// [`SparsePickupDistances::compute_incremental`]: the previous frame's
/// taxis, requests, rows and trip distances, keyed by stable identities so
/// index churn between frames never mis-maps an entry.
///
/// Owned by [`crate::IncrementalState`]; an empty carry (or one recorded
/// under different [`PreferenceParams`]) simply makes every request take
/// the fresh grid path.
#[derive(Debug, Clone, Default)]
pub struct CandidateCarry {
    params: Option<PreferenceParams>,
    /// Previous frame's `(id, location)` per taxi index.
    taxis: Vec<(TaxiId, Point)>,
    /// Previous frame's `(id, pickup, dropoff)` per request index.
    requests: Vec<(RequestId, Point, Point)>,
    /// Previous frame's candidate rows (old taxi indices).
    rows: Vec<Vec<(usize, f64)>>,
    /// Previous frame's trip distances.
    trips: Vec<f64>,
}

impl CandidateCarry {
    /// An empty carry (the first frame takes the fresh grid path).
    #[must_use]
    pub fn new() -> Self {
        CandidateCarry::default()
    }

    /// Forgets the carried rows (the next frame takes the fresh path).
    pub fn clear(&mut self) {
        *self = CandidateCarry::default();
    }
}

/// Sparse preference orders of one dispatch frame.
///
/// Semantically the same frame as [`PreferenceModel`] restricted to
/// *mutually acceptable* pairs: every algorithm on
/// [`SparsePreferenceModel::instance`] yields the same matchings, and every
/// reported cost is the same float, as the dense model (property-tested in
/// `tests/sparse_equivalence.rs`). Costs are stored per list entry rather
/// than as `|R|×|T|` matrices.
#[derive(Debug, Clone)]
pub struct SparsePreferenceModel {
    /// The stable-marriage instance (requests propose), with hashmap ranks.
    pub instance: StableInstance,
    /// `pickup_costs[j][k]` = `D(t_i, r_j^s)` for `i` = `k`-th entry of
    /// request `j`'s list.
    pub pickup_costs: Vec<Vec<f64>>,
    /// `score_costs[i][k]` = driver score for `j` = `k`-th entry of taxi
    /// `i`'s list.
    pub score_costs: Vec<Vec<f64>>,
}

impl SparsePreferenceModel {
    /// Builds the sparse preference orders single-threaded, constructing a
    /// fresh taxi grid.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`].
    #[must_use]
    pub fn build<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
    ) -> Self {
        Self::build_with(
            metric,
            params,
            taxis,
            requests,
            Parallelism::sequential(),
            None,
        )
    }

    /// [`build`](Self::build) with a thread budget and an optional shared
    /// per-frame taxi grid (built once by the caller, e.g. the simulator,
    /// and reused across policies).
    ///
    /// Bit-identical for every `par` and for shared vs freshly-built grids
    /// (the grid only prefilters; all accepted/rejected decisions and all
    /// costs come from exact metric evaluations).
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`].
    #[must_use]
    pub fn build_with<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
        par: Parallelism,
        taxi_grid: Option<&GridIndex<usize>>,
    ) -> Self {
        let _span = obs::span("preference_build");
        params.validate().expect("invalid preference parameters");
        let owned;
        let grid = match taxi_grid {
            Some(g) => g,
            None => {
                owned = build_taxi_grid(taxis);
                &owned
            }
        };
        let spd = SparsePickupDistances::compute(metric, params, taxis, requests, grid, par);
        Self::from_sparse_distances(params, taxis, requests, par, &spd)
    }

    /// [`build_with`](Self::build_with), patching the previous frame's
    /// candidate rows via `carry` (see
    /// [`SparsePickupDistances::compute_incremental`]). Bit-identical to a
    /// carry-less build for every frame delta.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`].
    #[must_use]
    pub fn build_incremental<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
        par: Parallelism,
        taxi_grid: Option<&GridIndex<usize>>,
        carry: &mut CandidateCarry,
    ) -> Self {
        let _span = obs::span("preference_build");
        params.validate().expect("invalid preference parameters");
        let owned;
        let grid = match taxi_grid {
            Some(g) => g,
            None => {
                owned = build_taxi_grid(taxis);
                &owned
            }
        };
        let spd = SparsePickupDistances::compute_incremental(
            metric, params, taxis, requests, grid, par, carry,
        );
        Self::from_sparse_distances(params, taxis, requests, par, &spd)
    }

    /// Builds the model from precomputed sparse distances.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`] or `spd` has
    /// the wrong shape.
    #[must_use]
    pub fn from_sparse_distances(
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
        par: Parallelism,
        spd: &SparsePickupDistances,
    ) -> Self {
        params.validate().expect("invalid preference parameters");
        let n_r = requests.len();
        let n_t = taxis.len();
        assert_eq!(
            spd.shape(),
            (n_r, n_t),
            "sparse pickup-distance shape mismatch"
        );

        // Passenger side: apply the exact (dense-identical) filters to the
        // prefiltered candidates. Rows are already in (distance, index)
        // order, the dense list order restricted to a subset.
        type Row = (Vec<usize>, Vec<f64>, Vec<f64>);
        let rows: Vec<Row> = par_map(par, (0..n_r).collect(), |j| {
            let r = &requests[j];
            let trip = spd.trip(j);
            let mut list = Vec::new();
            let mut costs = Vec::new();
            let mut scores = Vec::new();
            for &(i, d) in spd.row(j) {
                let score = d - params.alpha * trip;
                if taxis[i].seats >= r.passengers
                    && d <= params.passenger_threshold
                    && score <= params.taxi_threshold
                {
                    list.push(i);
                    costs.push(d);
                    scores.push(score);
                }
            }
            (list, costs, scores)
        });

        // Driver side: scatter each accepted (request, score) pair into
        // its taxi's bucket in request order, then sort per taxi by
        // (score, request index) — a stable sort with the dense
        // comparator, so each taxi list is the dense list restricted to
        // mutual pairs, in the same order.
        let mut request_lists = Vec::with_capacity(n_r);
        let mut pickup_costs = Vec::with_capacity(n_r);
        let mut buckets: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_t];
        for (j, (list, costs, scores)) in rows.into_iter().enumerate() {
            for (&i, &score) in list.iter().zip(&scores) {
                buckets[i].push((j, score));
            }
            request_lists.push(list);
            pickup_costs.push(costs);
        }
        let cols: Vec<(Vec<usize>, Vec<f64>)> = par_map(par, buckets, |mut bucket| {
            bucket.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            bucket.into_iter().unzip()
        });
        let mut taxi_lists = Vec::with_capacity(n_t);
        let mut score_costs = Vec::with_capacity(n_t);
        for (list, scores) in cols {
            taxi_lists.push(list);
            score_costs.push(scores);
        }

        let instance = StableInstance::new_sparse(request_lists, taxi_lists)
            .expect("generated lists are in range and duplicate-free");
        SparsePreferenceModel {
            instance,
            pickup_costs,
            score_costs,
        }
    }

    /// `D(t_i, r_j^s)` for a pair on request `j`'s list, or `None` when
    /// the pair is not mutually acceptable.
    #[must_use]
    pub fn pickup(&self, request: usize, taxi: usize) -> Option<f64> {
        let k = self.instance.proposer_rank_of(request, taxi)?;
        Some(self.pickup_costs[request][k as usize])
    }

    /// Driver score for a pair on taxi `i`'s list, or `None` when the pair
    /// is not mutually acceptable.
    #[must_use]
    pub fn score(&self, taxi: usize, request: usize) -> Option<f64> {
        let k = self.instance.reviewer_rank_of(taxi, request)?;
        Some(self.score_costs[taxi][k as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::{Euclidean, Point};
    use o2o_trace::{RequestId, TaxiId};

    fn taxi(id: u64, x: f64, y: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, y))
    }

    fn request(id: u64, sx: f64, sy: f64, dx: f64, dy: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(sx, sy), Point::new(dx, dy))
    }

    #[test]
    fn passenger_prefers_nearest_taxi() {
        let taxis = vec![taxi(0, 5.0, 0.0), taxi(1, 1.0, 0.0), taxi(2, 3.0, 0.0)];
        let requests = vec![request(0, 0.0, 0.0, 0.0, 10.0)];
        let m = PreferenceModel::build(
            &Euclidean,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
        );
        assert_eq!(m.instance.proposer_list(0), &[1, 2, 0]);
    }

    #[test]
    fn driver_prefers_high_payoff() {
        // Two requests at the same pickup distance; the longer trip wins
        // (lower score = D − α·trip).
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 1.0, 0.0, 2.0, 0.0), // trip 1 km
            request(1, 0.0, 1.0, 0.0, 9.0), // trip 8 km
        ];
        let m = PreferenceModel::build(
            &Euclidean,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
        );
        assert_eq!(m.instance.reviewer_list(0), &[1, 0]);
        assert_eq!(m.score[0][1], 1.0 - 8.0);
    }

    #[test]
    fn alpha_zero_makes_driver_rank_by_distance() {
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 2.0, 0.0, 2.0, 50.0), // nearer pickup, huge trip
            request(1, 1.0, 0.0, 1.0, 2.0),
        ];
        let params = PreferenceParams::unbounded().with_alpha(0.0);
        let m = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
        assert_eq!(m.instance.reviewer_list(0), &[1, 0]);
    }

    #[test]
    fn wait_threshold_truncates_passenger_list() {
        let taxis = vec![taxi(0, 1.0, 0.0), taxi(1, 20.0, 0.0)];
        let requests = vec![request(0, 0.0, 0.0, 5.0, 0.0)];
        let params = PreferenceParams::unbounded().with_passenger_threshold(10.0);
        let m = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
        assert_eq!(m.instance.proposer_list(0), &[0]);
    }

    #[test]
    fn taxi_threshold_truncates_driver_list() {
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 1.0, 0.0, 11.0, 0.0), // score 1 − 10 = −9
            request(1, 9.0, 0.0, 10.0, 0.0), // score 9 − 1 = 8
        ];
        let params = PreferenceParams::unbounded().with_taxi_threshold(0.0);
        let m = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
        assert_eq!(m.instance.reviewer_list(0), &[0]);
    }

    #[test]
    fn seat_constraint_excludes_both_sides() {
        let taxis = vec![Taxi::with_seats(TaxiId(0), Point::ORIGIN, 2)];
        let requests = vec![Request::with_party(
            RequestId(0),
            0,
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            4,
        )];
        let m = PreferenceModel::build(
            &Euclidean,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
        );
        assert!(m.instance.proposer_list(0).is_empty());
        assert!(m.instance.reviewer_list(0).is_empty());
    }

    #[test]
    fn empty_inputs_build() {
        let m = PreferenceModel::build(&Euclidean, &PreferenceParams::default(), &[], &[]);
        assert_eq!(m.instance.proposers(), 0);
        assert_eq!(m.instance.reviewers(), 0);
    }

    #[test]
    fn try_compute_matches_compute_on_clean_metrics() {
        let taxis: Vec<Taxi> = (0..8).map(|i| taxi(i, i as f64, 0.0)).collect();
        let requests: Vec<Request> = (0..30)
            .map(|j| request(j, j as f64 * 0.3, 1.0, 2.0, 5.0))
            .collect();
        for threads in [1, 4] {
            let par = Parallelism::fixed(threads);
            let plain = PickupDistances::compute(&Euclidean, &taxis, &requests, par);
            let tried = PickupDistances::try_compute(&Euclidean, &taxis, &requests, par).unwrap();
            assert_eq!(plain, tried, "threads = {threads}");
        }
    }

    #[test]
    fn try_compute_surfaces_metric_panics_as_errors() {
        #[derive(Debug)]
        struct Poisoned;
        impl Metric for Poisoned {
            fn distance(&self, a: Point, b: Point) -> f64 {
                // Poison on either argument: the batched kernel passes the
                // request pickup as the origin.
                assert!(
                    a.x < 100.0 && b.x < 100.0,
                    "metric poisoned at x = {}",
                    a.x.max(b.x)
                );
                Euclidean.distance(a, b)
            }
        }
        std::panic::set_hook(Box::new(|_| {}));
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests: Vec<Request> = (0..40)
            .map(|j| request(j, if j == 25 { 200.0 } else { 1.0 }, 0.0, 2.0, 0.0))
            .collect();
        let err = PickupDistances::try_compute(&Poisoned, &taxis, &requests, Parallelism::fixed(4))
            .unwrap_err();
        let _ = std::panic::take_hook();
        assert_eq!(err.first_item, 25);
        assert!(err.message.contains("metric poisoned"));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "different metric")]
    fn mismatched_pickup_metric_is_caught_in_debug() {
        #[derive(Debug)]
        struct Doubled;
        impl Metric for Doubled {
            fn distance(&self, a: Point, b: Point) -> f64 {
                2.0 * Euclidean.distance(a, b)
            }
        }
        let taxis = vec![taxi(0, 3.0, 0.0)];
        let requests = vec![request(0, 0.0, 0.0, 0.0, 5.0)];
        let pd = PickupDistances::compute(&Euclidean, &taxis, &requests, Parallelism::sequential());
        let _ = PreferenceModel::build_with(
            &Doubled,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
            Parallelism::sequential(),
            Some(&pd),
        );
    }

    #[test]
    fn sparse_lists_are_dense_lists_restricted_to_mutual_pairs() {
        let taxis: Vec<Taxi> = (0..12)
            .map(|i| {
                taxi(
                    i,
                    (i as f64 * 2.3) % 9.0 - 4.0,
                    (i as f64 * 1.7) % 8.0 - 4.0,
                )
            })
            .collect();
        let requests: Vec<Request> = (0..10)
            .map(|j| {
                request(
                    j,
                    (j as f64 * 3.1) % 8.0 - 4.0,
                    (j as f64 * 1.3) % 7.0 - 3.0,
                    (j as f64 * 2.9) % 9.0 - 4.5,
                    (j as f64 * 0.7) % 6.0 - 3.0,
                )
            })
            .collect();
        for params in [
            PreferenceParams::paper(),
            PreferenceParams::unbounded(),
            PreferenceParams::paper()
                .with_passenger_threshold(3.0)
                .with_taxi_threshold(0.5),
        ] {
            let dense = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
            let sparse = SparsePreferenceModel::build(&Euclidean, &params, &taxis, &requests);
            for j in 0..requests.len() {
                // Sparse passenger list = dense list minus entries the
                // taxi side rejects, order preserved; costs identical.
                let expect: Vec<usize> = dense
                    .instance
                    .proposer_list(j)
                    .iter()
                    .copied()
                    .filter(|&i| dense.instance.reviewer_rank_of(i, j).is_some())
                    .collect();
                assert_eq!(sparse.instance.proposer_list(j), expect.as_slice());
                for &i in sparse.instance.proposer_list(j) {
                    assert_eq!(sparse.pickup(j, i), Some(dense.pickup[j][i]));
                }
            }
            for i in 0..taxis.len() {
                let expect: Vec<usize> = dense
                    .instance
                    .reviewer_list(i)
                    .iter()
                    .copied()
                    .filter(|&j| dense.instance.proposer_rank_of(j, i).is_some())
                    .collect();
                assert_eq!(sparse.instance.reviewer_list(i), expect.as_slice());
                for &j in sparse.instance.reviewer_list(i) {
                    assert_eq!(sparse.score(i, j), Some(dense.score[i][j]));
                }
            }
            // And the headline algorithms agree exactly.
            assert_eq!(dense.instance.propose(), sparse.instance.propose());
            assert_eq!(
                dense.instance.reviewer_optimal(),
                sparse.instance.reviewer_optimal()
            );
        }
    }

    #[test]
    fn sparse_build_handles_empty_frames() {
        let params = PreferenceParams::paper();
        let m = SparsePreferenceModel::build(&Euclidean, &params, &[], &[]);
        assert_eq!(m.instance.proposers(), 0);
        assert_eq!(m.instance.reviewers(), 0);
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let m = SparsePreferenceModel::build(&Euclidean, &params, &taxis, &[]);
        assert_eq!(m.instance.reviewers(), 1);
        assert!(m.instance.reviewer_list(0).is_empty());
        let requests = vec![request(0, 1.0, 0.0, 2.0, 0.0)];
        let m = SparsePreferenceModel::build(&Euclidean, &params, &[], &requests);
        assert_eq!(m.instance.proposers(), 1);
        assert!(m.instance.proposer_list(0).is_empty());
    }

    #[test]
    fn incremental_rows_match_fresh_compute_under_churn() {
        // Roll frames with every kind of delta — taxis moving, departing,
        // arriving; requests replaced — and pin the patched rows to a
        // fresh compute each frame.
        let params = PreferenceParams::paper();
        let mut taxis: Vec<Taxi> = (0..14)
            .map(|i| {
                taxi(
                    i,
                    (i as f64 * 2.3) % 9.0 - 4.0,
                    (i as f64 * 1.7) % 8.0 - 4.0,
                )
            })
            .collect();
        let mut requests: Vec<Request> = (0..10)
            .map(|j| {
                request(
                    j,
                    (j as f64 * 3.1) % 8.0 - 4.0,
                    (j as f64 * 1.3) % 7.0 - 3.0,
                    (j as f64 * 2.9) % 9.0 - 4.5,
                    (j as f64 * 0.7) % 6.0 - 3.0,
                )
            })
            .collect();
        let mut carry = CandidateCarry::new();
        for frame in 0..8 {
            let grid = build_taxi_grid(&taxis);
            let fresh = SparsePickupDistances::compute(
                &Euclidean,
                &params,
                &taxis,
                &requests,
                &grid,
                Parallelism::sequential(),
            );
            let patched = SparsePickupDistances::compute_incremental(
                &Euclidean,
                &params,
                &taxis,
                &requests,
                &grid,
                Parallelism::sequential(),
                &mut carry,
            );
            assert_eq!(patched, fresh, "frame {frame} diverged");

            // Mutate for the next frame: move one taxi, drop one, add one,
            // replace one request.
            let k = frame % taxis.len();
            taxis[k].location = Point::new(frame as f64 - 2.0, 1.5 - frame as f64 * 0.5);
            taxis.remove((frame + 3) % taxis.len());
            taxis.push(taxi(
                14 + frame as u64,
                frame as f64 * 0.9 - 3.0,
                2.0 - frame as f64,
            ));
            let jr = frame % requests.len();
            requests[jr] = request(
                10 + frame as u64,
                frame as f64 * 1.1 - 3.0,
                2.5 - frame as f64 * 0.7,
                frame as f64 * 0.3,
                frame as f64 * 0.2 - 1.0,
            );
        }
    }

    #[test]
    fn incremental_rows_fall_back_on_param_change() {
        let taxis: Vec<Taxi> = (0..6).map(|i| taxi(i, i as f64 - 2.0, 0.5)).collect();
        let requests: Vec<Request> = (0..4)
            .map(|j| request(j, j as f64 - 1.0, -0.5, j as f64, 2.0))
            .collect();
        let grid = build_taxi_grid(&taxis);
        let mut carry = CandidateCarry::new();
        let a = PreferenceParams::paper();
        let b = PreferenceParams::paper().with_passenger_threshold(1.5);
        let _ = SparsePickupDistances::compute_incremental(
            &Euclidean,
            &a,
            &taxis,
            &requests,
            &grid,
            Parallelism::sequential(),
            &mut carry,
        );
        // Same frame, different params: the carried rows (computed under
        // `a`'s radius) must not leak into `b`'s rows.
        let patched = SparsePickupDistances::compute_incremental(
            &Euclidean,
            &b,
            &taxis,
            &requests,
            &grid,
            Parallelism::sequential(),
            &mut carry,
        );
        let fresh = SparsePickupDistances::compute(
            &Euclidean,
            &b,
            &taxis,
            &requests,
            &grid,
            Parallelism::sequential(),
        );
        assert_eq!(patched, fresh);
    }

    #[test]
    fn matrices_have_expected_shapes() {
        let taxis = vec![taxi(0, 0.0, 0.0), taxi(1, 1.0, 1.0)];
        let requests = vec![request(0, 0.0, 1.0, 1.0, 1.0)];
        let m = PreferenceModel::build(&Euclidean, &PreferenceParams::default(), &taxis, &requests);
        assert_eq!(m.pickup.len(), 1);
        assert_eq!(m.pickup[0].len(), 2);
        assert_eq!(m.score.len(), 2);
        assert_eq!(m.score[0].len(), 1);
    }
}
