//! Preference-order construction — the paper's §IV.A interest models.
//!
//! * A **passenger** `r_j` "mainly cares about the taxi wait time", so it
//!   ranks taxis by `D(t_i, r_j^s)` ascending; taxis beyond the wait
//!   threshold, and taxis without enough seats, fall below the dummy entry
//!   (the passenger would rather stay unserved).
//! * A **driver** `t_i` weighs "(i) the idle taxi driving distance … and
//!   (ii) the taxi traveling distance" and ranks requests by
//!   `D(t_i, r_j^s) − α·D(r_j^s, r_j^d)` ascending; requests whose score
//!   exceeds the driver threshold, and parties that do not fit, fall below
//!   the dummy.
//!
//! The result is a [`StableInstance`] (requests propose, taxis review) plus
//! the raw cost matrices needed to report dissatisfaction afterwards.

use crate::PreferenceParams;
use o2o_geo::Metric;
use o2o_matching::StableInstance;
use o2o_trace::{Request, Taxi};

/// Preference orders of one dispatch frame, ready for matching.
///
/// Requests are proposers (index = position in the input slice), taxis are
/// reviewers.
#[derive(Debug, Clone)]
pub struct PreferenceModel {
    /// The stable-marriage instance (requests propose).
    pub instance: StableInstance,
    /// `pickup[j][i]` = `D(t_i, r_j^s)` — passenger `j`'s cost of taxi `i`.
    pub pickup: Vec<Vec<f64>>,
    /// `score[i][j]` = `D(t_i, r_j^s) − α·D(r_j^s, r_j^d)` — driver `i`'s
    /// cost of request `j`.
    pub score: Vec<Vec<f64>>,
}

impl PreferenceModel {
    /// Builds the paper's non-sharing preference orders.
    ///
    /// Complexity `O(|R|·|T|·(cost of the metric) + |R|·|T|·log|T|)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`].
    #[must_use]
    pub fn build<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
    ) -> Self {
        params.validate().expect("invalid preference parameters");
        let n_r = requests.len();
        let n_t = taxis.len();
        let mut pickup = vec![vec![0.0; n_t]; n_r];
        let mut score = vec![vec![0.0; n_t]; n_r]; // transposed below
        let trip: Vec<f64> = requests.iter().map(|r| r.trip_distance(metric)).collect();
        for (j, r) in requests.iter().enumerate() {
            for (i, t) in taxis.iter().enumerate() {
                let d = metric.distance(t.location, r.pickup);
                pickup[j][i] = d;
                score[j][i] = d - params.alpha * trip[j];
            }
        }

        // Passenger lists: taxis with enough seats within the wait
        // threshold, nearest first (ties by taxi index for determinism).
        let request_lists: Vec<Vec<usize>> = requests
            .iter()
            .enumerate()
            .map(|(j, r)| {
                let mut list: Vec<usize> = (0..n_t)
                    .filter(|&i| {
                        taxis[i].seats >= r.passengers && pickup[j][i] <= params.passenger_threshold
                    })
                    .collect();
                list.sort_by(|&a, &b| {
                    pickup[j][a]
                        .partial_cmp(&pickup[j][b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                list
            })
            .collect();

        // Driver lists: fitting parties whose score clears the threshold,
        // lowest score first.
        let taxi_lists: Vec<Vec<usize>> = taxis
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut list: Vec<usize> = (0..n_r)
                    .filter(|&j| {
                        t.seats >= requests[j].passengers && score[j][i] <= params.taxi_threshold
                    })
                    .collect();
                list.sort_by(|&a, &b| {
                    score[a][i]
                        .partial_cmp(&score[b][i])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                list
            })
            .collect();

        let instance = StableInstance::new(request_lists, taxi_lists)
            .expect("generated lists are in range and duplicate-free");
        // Keep `score` in taxi-major orientation for reporting.
        let score_t: Vec<Vec<f64>> = (0..n_t)
            .map(|i| (0..n_r).map(|j| score[j][i]).collect())
            .collect();
        PreferenceModel {
            instance,
            pickup,
            score: score_t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::{Euclidean, Point};
    use o2o_trace::{RequestId, TaxiId};

    fn taxi(id: u64, x: f64, y: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, y))
    }

    fn request(id: u64, sx: f64, sy: f64, dx: f64, dy: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(sx, sy), Point::new(dx, dy))
    }

    #[test]
    fn passenger_prefers_nearest_taxi() {
        let taxis = vec![taxi(0, 5.0, 0.0), taxi(1, 1.0, 0.0), taxi(2, 3.0, 0.0)];
        let requests = vec![request(0, 0.0, 0.0, 0.0, 10.0)];
        let m = PreferenceModel::build(
            &Euclidean,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
        );
        assert_eq!(m.instance.proposer_list(0), &[1, 2, 0]);
    }

    #[test]
    fn driver_prefers_high_payoff() {
        // Two requests at the same pickup distance; the longer trip wins
        // (lower score = D − α·trip).
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 1.0, 0.0, 2.0, 0.0), // trip 1 km
            request(1, 0.0, 1.0, 0.0, 9.0), // trip 8 km
        ];
        let m = PreferenceModel::build(
            &Euclidean,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
        );
        assert_eq!(m.instance.reviewer_list(0), &[1, 0]);
        assert_eq!(m.score[0][1], 1.0 - 8.0);
    }

    #[test]
    fn alpha_zero_makes_driver_rank_by_distance() {
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 2.0, 0.0, 2.0, 50.0), // nearer pickup, huge trip
            request(1, 1.0, 0.0, 1.0, 2.0),
        ];
        let params = PreferenceParams::unbounded().with_alpha(0.0);
        let m = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
        assert_eq!(m.instance.reviewer_list(0), &[1, 0]);
    }

    #[test]
    fn wait_threshold_truncates_passenger_list() {
        let taxis = vec![taxi(0, 1.0, 0.0), taxi(1, 20.0, 0.0)];
        let requests = vec![request(0, 0.0, 0.0, 5.0, 0.0)];
        let params = PreferenceParams::unbounded().with_passenger_threshold(10.0);
        let m = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
        assert_eq!(m.instance.proposer_list(0), &[0]);
    }

    #[test]
    fn taxi_threshold_truncates_driver_list() {
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 1.0, 0.0, 11.0, 0.0), // score 1 − 10 = −9
            request(1, 9.0, 0.0, 10.0, 0.0), // score 9 − 1 = 8
        ];
        let params = PreferenceParams::unbounded().with_taxi_threshold(0.0);
        let m = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
        assert_eq!(m.instance.reviewer_list(0), &[0]);
    }

    #[test]
    fn seat_constraint_excludes_both_sides() {
        let taxis = vec![Taxi::with_seats(TaxiId(0), Point::ORIGIN, 2)];
        let requests = vec![Request::with_party(
            RequestId(0),
            0,
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            4,
        )];
        let m = PreferenceModel::build(
            &Euclidean,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
        );
        assert!(m.instance.proposer_list(0).is_empty());
        assert!(m.instance.reviewer_list(0).is_empty());
    }

    #[test]
    fn empty_inputs_build() {
        let m = PreferenceModel::build(&Euclidean, &PreferenceParams::default(), &[], &[]);
        assert_eq!(m.instance.proposers(), 0);
        assert_eq!(m.instance.reviewers(), 0);
    }

    #[test]
    fn matrices_have_expected_shapes() {
        let taxis = vec![taxi(0, 0.0, 0.0), taxi(1, 1.0, 1.0)];
        let requests = vec![request(0, 0.0, 1.0, 1.0, 1.0)];
        let m = PreferenceModel::build(&Euclidean, &PreferenceParams::default(), &taxis, &requests);
        assert_eq!(m.pickup.len(), 1);
        assert_eq!(m.pickup[0].len(), 2);
        assert_eq!(m.score.len(), 2);
        assert_eq!(m.score[0].len(), 1);
    }
}
