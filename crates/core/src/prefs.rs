//! Preference-order construction — the paper's §IV.A interest models.
//!
//! * A **passenger** `r_j` "mainly cares about the taxi wait time", so it
//!   ranks taxis by `D(t_i, r_j^s)` ascending; taxis beyond the wait
//!   threshold, and taxis without enough seats, fall below the dummy entry
//!   (the passenger would rather stay unserved).
//! * A **driver** `t_i` weighs "(i) the idle taxi driving distance … and
//!   (ii) the taxi traveling distance" and ranks requests by
//!   `D(t_i, r_j^s) − α·D(r_j^s, r_j^d)` ascending; requests whose score
//!   exceeds the driver threshold, and parties that do not fit, fall below
//!   the dummy.
//!
//! The result is a [`StableInstance`] (requests propose, taxis review) plus
//! the raw cost matrices needed to report dissatisfaction afterwards.

use crate::PreferenceParams;
use o2o_geo::Metric;
use o2o_matching::StableInstance;
use o2o_par::{par_map, Parallelism};
use o2o_trace::{Request, Taxi};

/// The idle-taxi × pending-request pick-up distance matrix of one frame.
///
/// `D(t_i, r_j^s)` is policy-independent: every dispatcher starts from
/// the same matrix, so the simulator can precompute it once per frame (in
/// parallel) and hand it to whichever policy runs. Sharing it changes
/// nothing numerically — the entries are exactly the metric's answers —
/// it only avoids recomputing them per policy stage.
#[derive(Debug, Clone, PartialEq)]
pub struct PickupDistances {
    n_requests: usize,
    n_taxis: usize,
    /// Row-major: `d[j * n_taxis + i]` = `D(t_i, r_j^s)`.
    d: Vec<f64>,
}

impl PickupDistances {
    /// Computes the full matrix, splitting request rows across threads.
    #[must_use]
    pub fn compute<M: Metric>(
        metric: &M,
        taxis: &[Taxi],
        requests: &[Request],
        par: Parallelism,
    ) -> Self {
        let rows = par_map(par, requests.to_vec(), |r| {
            taxis
                .iter()
                .map(|t| metric.distance(t.location, r.pickup))
                .collect::<Vec<f64>>()
        });
        PickupDistances {
            n_requests: requests.len(),
            n_taxis: taxis.len(),
            d: rows.concat(),
        }
    }

    /// `D(t_i, r_j^s)` for request row `j` and taxi column `i`.
    #[must_use]
    pub fn get(&self, request: usize, taxi: usize) -> f64 {
        self.d[request * self.n_taxis + taxi]
    }

    /// `(requests, taxis)` dimensions of the matrix.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.n_requests, self.n_taxis)
    }
}

/// Preference orders of one dispatch frame, ready for matching.
///
/// Requests are proposers (index = position in the input slice), taxis are
/// reviewers.
#[derive(Debug, Clone)]
pub struct PreferenceModel {
    /// The stable-marriage instance (requests propose).
    pub instance: StableInstance,
    /// `pickup[j][i]` = `D(t_i, r_j^s)` — passenger `j`'s cost of taxi `i`.
    pub pickup: Vec<Vec<f64>>,
    /// `score[i][j]` = `D(t_i, r_j^s) − α·D(r_j^s, r_j^d)` — driver `i`'s
    /// cost of request `j`.
    pub score: Vec<Vec<f64>>,
}

impl PreferenceModel {
    /// Builds the paper's non-sharing preference orders.
    ///
    /// Complexity `O(|R|·|T|·(cost of the metric) + |R|·|T|·log|T|)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`].
    #[must_use]
    pub fn build<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
    ) -> Self {
        Self::build_with(
            metric,
            params,
            taxis,
            requests,
            Parallelism::sequential(),
            None,
        )
    }

    /// [`build`](Self::build) with an explicit thread budget and an
    /// optional precomputed pick-up distance matrix.
    ///
    /// The result is bit-identical for every `par`: rows are independent
    /// and the parallel map preserves input order, so every float is the
    /// same operation on the same inputs as the sequential pass. When
    /// `pickup_distances` is given (shape-checked against the inputs) the
    /// matrix pass reuses it instead of querying the metric — it must
    /// therefore have been computed with this same `metric` (a memoizing
    /// wrapper such as a distance cache over it is fine); debug builds
    /// assert a sampled entry agrees.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`] or
    /// `pickup_distances` has the wrong shape.
    #[must_use]
    pub fn build_with<M: Metric>(
        metric: &M,
        params: &PreferenceParams,
        taxis: &[Taxi],
        requests: &[Request],
        par: Parallelism,
        pickup_distances: Option<&PickupDistances>,
    ) -> Self {
        params.validate().expect("invalid preference parameters");
        let n_r = requests.len();
        let n_t = taxis.len();
        if let Some(pd) = pickup_distances {
            assert_eq!(
                pd.shape(),
                (n_r, n_t),
                "pickup-distance matrix shape mismatch"
            );
            // The caller promises the matrix was computed with this same
            // `metric`; a mismatch (e.g. Euclidean precomputation fed to
            // a road-network policy) silently skews every preference, so
            // spot-check one entry in debug builds.
            if n_r > 0 && n_t > 0 {
                let expect = metric.distance(taxis[0].location, requests[0].pickup);
                debug_assert!(
                    (pd.get(0, 0) - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                    "pickup-distance matrix disagrees with the policy metric \
                     (cached {} vs metric {expect}): was it computed with a \
                     different metric?",
                    pd.get(0, 0),
                );
            }
        }

        // One row per request: costs against every taxi, plus the
        // passenger list — taxis with enough seats within the wait
        // threshold, nearest first (ties by taxi index for determinism).
        type Row = (Vec<f64>, Vec<f64>, Vec<usize>);
        let rows: Vec<Row> = par_map(par, (0..n_r).collect(), |j| {
            let r = &requests[j];
            let trip = r.trip_distance(metric);
            let mut pickup_row = Vec::with_capacity(n_t);
            let mut score_row = Vec::with_capacity(n_t);
            for (i, t) in taxis.iter().enumerate() {
                let d = match pickup_distances {
                    Some(pd) => pd.get(j, i),
                    None => metric.distance(t.location, r.pickup),
                };
                pickup_row.push(d);
                score_row.push(d - params.alpha * trip);
            }
            let mut list: Vec<usize> = (0..n_t)
                .filter(|&i| {
                    taxis[i].seats >= r.passengers && pickup_row[i] <= params.passenger_threshold
                })
                .collect();
            list.sort_by(|&a, &b| {
                pickup_row[a]
                    .partial_cmp(&pickup_row[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            (pickup_row, score_row, list)
        });
        let mut pickup = Vec::with_capacity(n_r);
        let mut score = Vec::with_capacity(n_r); // request-major; transposed below
        let mut request_lists = Vec::with_capacity(n_r);
        for (pickup_row, score_row, list) in rows {
            pickup.push(pickup_row);
            score.push(score_row);
            request_lists.push(list);
        }

        // One column per taxi: the driver list — fitting parties whose
        // score clears the threshold, lowest score first — and the
        // taxi-major score row for reporting.
        let score_ref = &score;
        let cols: Vec<(Vec<usize>, Vec<f64>)> = par_map(par, (0..n_t).collect(), |i| {
            let t = &taxis[i];
            let mut list: Vec<usize> = (0..n_r)
                .filter(|&j| {
                    t.seats >= requests[j].passengers && score_ref[j][i] <= params.taxi_threshold
                })
                .collect();
            list.sort_by(|&a, &b| {
                score_ref[a][i]
                    .partial_cmp(&score_ref[b][i])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let score_t_row: Vec<f64> = (0..n_r).map(|j| score_ref[j][i]).collect();
            (list, score_t_row)
        });
        let mut taxi_lists = Vec::with_capacity(n_t);
        let mut score_t = Vec::with_capacity(n_t);
        for (list, score_t_row) in cols {
            taxi_lists.push(list);
            score_t.push(score_t_row);
        }

        let instance = StableInstance::new(request_lists, taxi_lists)
            .expect("generated lists are in range and duplicate-free");
        PreferenceModel {
            instance,
            pickup,
            score: score_t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::{Euclidean, Point};
    use o2o_trace::{RequestId, TaxiId};

    fn taxi(id: u64, x: f64, y: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, y))
    }

    fn request(id: u64, sx: f64, sy: f64, dx: f64, dy: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(sx, sy), Point::new(dx, dy))
    }

    #[test]
    fn passenger_prefers_nearest_taxi() {
        let taxis = vec![taxi(0, 5.0, 0.0), taxi(1, 1.0, 0.0), taxi(2, 3.0, 0.0)];
        let requests = vec![request(0, 0.0, 0.0, 0.0, 10.0)];
        let m = PreferenceModel::build(
            &Euclidean,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
        );
        assert_eq!(m.instance.proposer_list(0), &[1, 2, 0]);
    }

    #[test]
    fn driver_prefers_high_payoff() {
        // Two requests at the same pickup distance; the longer trip wins
        // (lower score = D − α·trip).
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 1.0, 0.0, 2.0, 0.0), // trip 1 km
            request(1, 0.0, 1.0, 0.0, 9.0), // trip 8 km
        ];
        let m = PreferenceModel::build(
            &Euclidean,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
        );
        assert_eq!(m.instance.reviewer_list(0), &[1, 0]);
        assert_eq!(m.score[0][1], 1.0 - 8.0);
    }

    #[test]
    fn alpha_zero_makes_driver_rank_by_distance() {
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 2.0, 0.0, 2.0, 50.0), // nearer pickup, huge trip
            request(1, 1.0, 0.0, 1.0, 2.0),
        ];
        let params = PreferenceParams::unbounded().with_alpha(0.0);
        let m = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
        assert_eq!(m.instance.reviewer_list(0), &[1, 0]);
    }

    #[test]
    fn wait_threshold_truncates_passenger_list() {
        let taxis = vec![taxi(0, 1.0, 0.0), taxi(1, 20.0, 0.0)];
        let requests = vec![request(0, 0.0, 0.0, 5.0, 0.0)];
        let params = PreferenceParams::unbounded().with_passenger_threshold(10.0);
        let m = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
        assert_eq!(m.instance.proposer_list(0), &[0]);
    }

    #[test]
    fn taxi_threshold_truncates_driver_list() {
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 1.0, 0.0, 11.0, 0.0), // score 1 − 10 = −9
            request(1, 9.0, 0.0, 10.0, 0.0), // score 9 − 1 = 8
        ];
        let params = PreferenceParams::unbounded().with_taxi_threshold(0.0);
        let m = PreferenceModel::build(&Euclidean, &params, &taxis, &requests);
        assert_eq!(m.instance.reviewer_list(0), &[0]);
    }

    #[test]
    fn seat_constraint_excludes_both_sides() {
        let taxis = vec![Taxi::with_seats(TaxiId(0), Point::ORIGIN, 2)];
        let requests = vec![Request::with_party(
            RequestId(0),
            0,
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            4,
        )];
        let m = PreferenceModel::build(
            &Euclidean,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
        );
        assert!(m.instance.proposer_list(0).is_empty());
        assert!(m.instance.reviewer_list(0).is_empty());
    }

    #[test]
    fn empty_inputs_build() {
        let m = PreferenceModel::build(&Euclidean, &PreferenceParams::default(), &[], &[]);
        assert_eq!(m.instance.proposers(), 0);
        assert_eq!(m.instance.reviewers(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "different metric")]
    fn mismatched_pickup_metric_is_caught_in_debug() {
        #[derive(Debug)]
        struct Doubled;
        impl Metric for Doubled {
            fn distance(&self, a: Point, b: Point) -> f64 {
                2.0 * Euclidean.distance(a, b)
            }
        }
        let taxis = vec![taxi(0, 3.0, 0.0)];
        let requests = vec![request(0, 0.0, 0.0, 0.0, 5.0)];
        let pd = PickupDistances::compute(&Euclidean, &taxis, &requests, Parallelism::sequential());
        let _ = PreferenceModel::build_with(
            &Doubled,
            &PreferenceParams::unbounded(),
            &taxis,
            &requests,
            Parallelism::sequential(),
            Some(&pd),
        );
    }

    #[test]
    fn matrices_have_expected_shapes() {
        let taxis = vec![taxi(0, 0.0, 0.0), taxi(1, 1.0, 1.0)];
        let requests = vec![request(0, 0.0, 1.0, 1.0, 1.0)];
        let m = PreferenceModel::build(&Euclidean, &PreferenceParams::default(), &taxis, &requests);
        assert_eq!(m.pickup.len(), 1);
        assert_eq!(m.pickup[0].len(), 2);
        assert_eq!(m.score.len(), 2);
        assert_eq!(m.score[0].len(), 1);
    }
}
