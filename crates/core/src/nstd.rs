//! Non-sharing taxi dispatch — the paper's Algorithms 1 and 2.

use crate::company::CompanyObjective;
use crate::degrade::{DegradeReason, Degraded, DispatchTier};
use crate::prefs::{PickupDistances, PreferenceModel, SparsePreferenceModel};
use crate::shard::{ShardMode, ShardPlan, ShardSpec, ShardStats};
use crate::{PreferenceParams, Schedule};
use o2o_geo::{GridIndex, Metric};
use o2o_matching::{MatchScratch, Matching, StableInstance, TimeBudget};
use o2o_obs as obs;
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use std::time::Instant;

fn elapsed_ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// How a [`NonSharingDispatcher`] builds its per-frame preference lists.
///
/// Both modes produce **bit-identical schedules** for every algorithm the
/// dispatcher exposes (property-tested in `tests/sparse_equivalence.rs`);
/// they differ only in cost: dense materialises the full `|R|×|T|` matrix,
/// sparse enumerates only candidates within the dummy thresholds via a
/// taxi grid — near-linear per frame at paper-scale thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateMode {
    /// Full `|R|×|T|` preference matrices (the original path).
    Dense,
    /// Grid-pruned candidate generation (the default).
    #[default]
    Sparse,
}

/// Outcome metadata of one anytime NSTD-T dispatch
/// ([`NonSharingDispatcher::taxi_optimal_anytime`]): how close to
/// taxi-optimal the returned (always stable) schedule provably is, and
/// what the search spent getting there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnytimeOutcome {
    /// Taxi-side rank cost of the returned schedule (sum over matched
    /// taxis of the rank each holds in its own preference list;
    /// 0 = every matched taxi has its favourite request).
    pub taxi_cost: u64,
    /// Proven lower bound on the taxi cost of *any* stable schedule for
    /// this frame.
    pub lower_bound: u64,
    /// BreakDispatch nodes explored.
    pub nodes: u64,
    /// Whether the budget stopped the search (`false` = the schedule is
    /// provably taxi-optimal).
    pub truncated: bool,
}

impl AnytimeOutcome {
    /// The measured optimality gap: `0` certifies taxi-optimality; a
    /// positive value bounds how much better the true optimum could be.
    #[must_use]
    pub fn gap(&self) -> u64 {
        self.taxi_cost - self.lower_bound
    }
}

/// A frame's preference model in either candidate mode.
#[derive(Debug, Clone)]
enum FrameModel {
    Dense(PreferenceModel),
    Sparse(SparsePreferenceModel),
}

impl FrameModel {
    fn instance(&self) -> &StableInstance {
        match self {
            FrameModel::Dense(m) => &m.instance,
            FrameModel::Sparse(m) => &m.instance,
        }
    }

    /// `D(t_i, r_j^s)` for a matched (hence mutually acceptable) pair.
    fn pickup(&self, j: usize, i: usize) -> f64 {
        match self {
            FrameModel::Dense(m) => m.pickup[j][i],
            FrameModel::Sparse(m) => m.pickup(j, i).expect("matched pair is mutually acceptable"),
        }
    }

    /// Driver score for a matched (hence mutually acceptable) pair.
    fn score(&self, i: usize, j: usize) -> f64 {
        match self {
            FrameModel::Dense(m) => m.score[i][j],
            FrameModel::Sparse(m) => m.score(i, j).expect("matched pair is mutually acceptable"),
        }
    }
}

/// Non-sharing dispatcher: one request per taxi (§IV).
///
/// Wraps a metric and the interest-model parameters; each dispatch call is
/// a pure function of the current frame's idle taxis and pending requests.
///
/// # Examples
///
/// ```
/// use o2o_core::{NonSharingDispatcher, PreferenceParams};
/// use o2o_geo::{Euclidean, Point};
/// use o2o_trace::{Request, RequestId, Taxi, TaxiId};
///
/// let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::default());
/// let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
/// let requests = vec![
///     Request::new(RequestId(0), 0, Point::new(1.0, 0.0), Point::new(4.0, 0.0)),
///     Request::new(RequestId(1), 0, Point::new(2.0, 0.0), Point::new(3.0, 0.0)),
/// ];
/// let s = d.passenger_optimal(&taxis, &requests);
/// assert_eq!(s.served_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NonSharingDispatcher<M> {
    metric: M,
    params: PreferenceParams,
    par: Parallelism,
    mode: CandidateMode,
    shard: ShardMode,
}

impl<M: Metric> NonSharingDispatcher<M> {
    /// Creates a dispatcher (single-threaded; see
    /// [`with_parallelism`](Self::with_parallelism)).
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`PreferenceParams::validate`].
    #[must_use]
    pub fn new(metric: M, params: PreferenceParams) -> Self {
        params.validate().expect("invalid preference parameters");
        NonSharingDispatcher {
            metric,
            params,
            par: Parallelism::sequential(),
            mode: CandidateMode::default(),
            shard: ShardMode::default(),
        }
    }

    /// Sets the thread budget for preference construction. Results are
    /// bit-identical for every setting; `Parallelism::sequential()` is
    /// the plain single-threaded pass.
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The metric in use.
    #[must_use]
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &PreferenceParams {
        &self.params
    }

    /// The thread budget in use.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Sets the candidate-generation mode. Schedules are bit-identical in
    /// both modes; see [`CandidateMode`].
    #[must_use]
    pub fn with_candidate_mode(mut self, mode: CandidateMode) -> Self {
        self.mode = mode;
        self
    }

    /// The candidate-generation mode in use.
    #[must_use]
    pub fn candidate_mode(&self) -> CandidateMode {
        self.mode
    }

    /// Sets the shard mode. Schedules are bit-identical in every mode
    /// (property-tested in `tests/shard_equivalence.rs`); sharding only
    /// changes how the matching work is decomposed. The sharded path
    /// engages on the sparse grid paths
    /// ([`passenger_optimal_with_grid`](Self::passenger_optimal_with_grid),
    /// [`taxi_optimal_with_grid`](Self::taxi_optimal_with_grid), the cold
    /// budgeted paths) and on
    /// [`greedy_nearest`](Self::greedy_nearest); dense-matrix and
    /// warm-incremental calls ignore it (the warm path's carried seed
    /// already plays the role the shard seed would).
    #[must_use]
    pub fn with_shard_mode(mut self, shard: ShardMode) -> Self {
        self.shard = shard;
        self
    }

    /// The shard mode in use.
    #[must_use]
    pub fn shard_mode(&self) -> ShardMode {
        self.shard
    }

    /// Builds the frame's preference model (exposed for inspection,
    /// ablations and reuse across the `*_optimal` variants).
    #[must_use]
    pub fn preferences(&self, taxis: &[Taxi], requests: &[Request]) -> PreferenceModel {
        self.preferences_with(taxis, requests, None)
    }

    /// [`preferences`](Self::preferences), reusing a precomputed pick-up
    /// distance matrix (e.g. the simulator's per-frame precomputation).
    #[must_use]
    pub fn preferences_with(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        pickup_distances: Option<&PickupDistances>,
    ) -> PreferenceModel {
        PreferenceModel::build_with(
            &self.metric,
            &self.params,
            taxis,
            requests,
            self.par,
            pickup_distances,
        )
    }

    /// Builds the frame's sparse preference model, optionally reusing a
    /// shared per-frame taxi grid (see [`crate::build_taxi_grid`]).
    #[must_use]
    pub fn sparse_preferences(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_grid: Option<&GridIndex<usize>>,
    ) -> SparsePreferenceModel {
        SparsePreferenceModel::build_with(
            &self.metric,
            &self.params,
            taxis,
            requests,
            self.par,
            taxi_grid,
        )
    }

    /// [`frame_model`](Self::frame_model) for the `*_incremental` paths:
    /// on the sparse path, unchanged requests patch their candidate rows
    /// from the carry in `state` instead of re-querying grid and metric
    /// (bit-identical; see
    /// [`crate::SparsePickupDistances::compute_incremental`]). Dense mode
    /// ignores the carry.
    fn frame_model_incremental(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_grid: Option<&GridIndex<usize>>,
        state: &mut crate::IncrementalState,
    ) -> FrameModel {
        if self.mode == CandidateMode::Dense {
            FrameModel::Dense(self.preferences_with(taxis, requests, None))
        } else {
            FrameModel::Sparse(SparsePreferenceModel::build_incremental(
                &self.metric,
                &self.params,
                taxis,
                requests,
                self.par,
                taxi_grid,
                &mut state.rows,
            ))
        }
    }

    /// Builds the frame model in the configured [`CandidateMode`].
    ///
    /// A provided dense pick-up matrix forces the dense path (that is its
    /// contract — the matrix *is* the dense precomputation); a provided
    /// taxi grid is only consulted on the sparse path.
    fn frame_model(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        pickup_distances: Option<&PickupDistances>,
        taxi_grid: Option<&GridIndex<usize>>,
    ) -> FrameModel {
        if self.mode == CandidateMode::Dense || pickup_distances.is_some() {
            FrameModel::Dense(self.preferences_with(taxis, requests, pickup_distances))
        } else {
            FrameModel::Sparse(self.sparse_preferences(taxis, requests, taxi_grid))
        }
    }

    /// **Algorithm 1 (NSTD-P)**: the passenger-optimal stable schedule.
    ///
    /// Among all stable schedules, every request gets its best achievable
    /// taxi (Property 2); requests unserved here are unserved in every
    /// stable schedule (Theorem 2). `O(|R|·|T|)` after preference
    /// construction.
    #[must_use]
    pub fn passenger_optimal(&self, taxis: &[Taxi], requests: &[Request]) -> Schedule {
        self.passenger_optimal_with(taxis, requests, None)
    }

    /// [`passenger_optimal`](Self::passenger_optimal), reusing a
    /// precomputed pick-up distance matrix.
    #[must_use]
    pub fn passenger_optimal_with(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        pickup_distances: Option<&PickupDistances>,
    ) -> Schedule {
        let model = self.frame_model(taxis, requests, pickup_distances, None);
        let m = model.instance().propose();
        self.to_schedule(taxis, requests, &model, &m)
    }

    /// [`passenger_optimal`](Self::passenger_optimal), reusing a shared
    /// per-frame taxi grid on the sparse path (ignored in dense mode).
    #[must_use]
    pub fn passenger_optimal_with_grid(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_grid: Option<&GridIndex<usize>>,
    ) -> Schedule {
        let model = self.frame_model(taxis, requests, None, taxi_grid);
        let m = match (self.shard, &model) {
            (ShardMode::Sharded(spec), FrameModel::Sparse(_)) => {
                self.sharded_match(taxis, requests, &model, &spec, false).0
            }
            _ => model.instance().propose(),
        };
        self.to_schedule(taxis, requests, &model, &m)
    }

    /// [`passenger_optimal`](Self::passenger_optimal), warm-started from
    /// the previous frame's matching carried in `state` (and recording
    /// this frame's matching back into it for the next call).
    ///
    /// Bit-identical to the cold
    /// [`passenger_optimal_with_grid`](Self::passenger_optimal_with_grid)
    /// for **every** frame delta: the seed is revalidated against the
    /// current frame's preference lists before deferred acceptance
    /// resumes, so stale pairs are pruned rather than trusted (see
    /// [`crate::IncrementalState`]). Property-tested in
    /// `tests/warm_equivalence.rs`.
    #[must_use]
    pub fn passenger_optimal_incremental(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_grid: Option<&GridIndex<usize>>,
        state: &mut crate::IncrementalState,
    ) -> Schedule {
        let model = self.frame_model_incremental(taxis, requests, taxi_grid, state);
        state.refresh_seed(taxis, requests);
        let m = model
            .instance()
            .propose_seeded_with(&state.scratch.seed, &mut state.scratch.matcher);
        state.record(taxis, requests, &m);
        let schedule = self.to_schedule(taxis, requests, &model, &m);
        state.scratch.matcher.recycle(m);
        schedule
    }

    /// **NSTD-T**: the taxi-optimal stable schedule.
    ///
    /// Computed by role-swapped deferred acceptance (taxis propose), which
    /// coincides with picking the taxi-best schedule from Algorithm 2's
    /// enumeration (property-tested in this crate).
    #[must_use]
    pub fn taxi_optimal(&self, taxis: &[Taxi], requests: &[Request]) -> Schedule {
        self.taxi_optimal_with(taxis, requests, None)
    }

    /// [`taxi_optimal`](Self::taxi_optimal), reusing a precomputed
    /// pick-up distance matrix.
    #[must_use]
    pub fn taxi_optimal_with(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        pickup_distances: Option<&PickupDistances>,
    ) -> Schedule {
        let model = self.frame_model(taxis, requests, pickup_distances, None);
        let m = model.instance().reviewer_optimal();
        self.to_schedule(taxis, requests, &model, &m)
    }

    /// [`taxi_optimal`](Self::taxi_optimal), reusing a shared per-frame
    /// taxi grid on the sparse path (ignored in dense mode).
    #[must_use]
    pub fn taxi_optimal_with_grid(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_grid: Option<&GridIndex<usize>>,
    ) -> Schedule {
        let model = self.frame_model(taxis, requests, None, taxi_grid);
        let m = match (self.shard, &model) {
            (ShardMode::Sharded(spec), FrameModel::Sparse(_)) => {
                self.sharded_match(taxis, requests, &model, &spec, true).0
            }
            _ => model.instance().reviewer_optimal(),
        };
        self.to_schedule(taxis, requests, &model, &m)
    }

    /// [`taxi_optimal`](Self::taxi_optimal), warm-started from the
    /// previous frame's matching carried in `state`. Bit-identical to the
    /// cold [`taxi_optimal_with_grid`](Self::taxi_optimal_with_grid) for
    /// every frame delta (see
    /// [`passenger_optimal_incremental`](Self::passenger_optimal_incremental);
    /// the seed validation happens on the role-swapped instance).
    #[must_use]
    pub fn taxi_optimal_incremental(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_grid: Option<&GridIndex<usize>>,
        state: &mut crate::IncrementalState,
    ) -> Schedule {
        let model = self.frame_model_incremental(taxis, requests, taxi_grid, state);
        state.refresh_seed(taxis, requests);
        let m = model
            .instance()
            .reviewer_optimal_seeded_with(&state.scratch.seed, &mut state.scratch.matcher);
        state.record(taxis, requests, &m);
        let schedule = self.to_schedule(taxis, requests, &model, &m);
        state.scratch.matcher.recycle(m);
        schedule
    }

    /// Per-request trip distances under the dispatch metric, computed in
    /// parallel — the input the shard planner derives interaction radii
    /// from (identical to the values the preference builders use).
    fn trip_distances(&self, requests: &[Request]) -> Vec<f64> {
        o2o_par::par_map(self.par, (0..requests.len()).collect(), |j| {
            requests[j].trip_distance(&self.metric)
        })
    }

    /// Records a sharded dispatch's structure counters on the current
    /// [`o2o_obs`] recorder (called from the coordinating thread — the
    /// fork-join workers have no recorder scope installed).
    fn record_shard_counters(stats: &ShardStats) {
        obs::add_many(&[
            ("shard.frames", 1),
            ("shard.regions", stats.regions as u64),
            ("shard.occupied", stats.occupied as u64),
            ("shard.boundary_taxis", stats.boundary_taxis as u64),
            ("shard.boundary_requests", stats.boundary_requests as u64),
            ("shard.seed_pairs", stats.seed_pairs as u64),
        ]);
    }

    /// The sharded matching pipeline on an already-built frame model:
    /// shard plan → per-region deferred acceptance (deterministic
    /// fork-join, one sub-instance per occupied region) → one *seeded*
    /// global deferred-acceptance pass that reconciles the boundary band.
    ///
    /// Exactness does not depend on the partition: the reconciliation is
    /// [`StableInstance::propose_seeded_with`], which produces the same
    /// matching as a cold global pass for **any** seed (McVitie–Wilson
    /// proposal-order independence; the seed is revalidated before the
    /// resume). The spatial plan makes the seed nearly complete — interior
    /// entities are provably already matched exactly — so the global pass
    /// only re-derives the boundary band.
    fn sharded_match(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        model: &FrameModel,
        spec: &ShardSpec,
        taxi_side: bool,
    ) -> (Matching, ShardStats) {
        let t_partition = Instant::now();
        let plan = {
            let _span = obs::span("shard_partition");
            let trips = self.trip_distances(requests);
            ShardPlan::build(spec, &self.params, taxis, requests, &trips)
        };
        let occupied = plan.occupied_regions();
        let partition_ms = elapsed_ms(t_partition);

        // Per-shard extract + deferred acceptance. `par_map` preserves
        // input order, and shards own disjoint request sets, so the
        // concatenated seed is deterministic and duplicate-free for every
        // thread count.
        let per_shard: Vec<(Vec<(usize, usize)>, f64)> =
            o2o_par::par_map(self.par, occupied.clone(), |s| {
                let t_shard = Instant::now();
                let sub = plan.extract_instance(model.instance(), s);
                let local = if taxi_side {
                    sub.instance.reviewer_optimal()
                } else {
                    sub.instance.propose()
                };
                let pairs: Vec<(usize, usize)> = local
                    .pairs()
                    .map(|(p, r)| (sub.requests[p], sub.taxis[r]))
                    .collect();
                (pairs, elapsed_ms(t_shard))
            });
        let mut seed = Vec::new();
        let mut max_shard_ms = 0.0f64;
        let mut sum_shard_ms = 0.0f64;
        for (pairs, ms) in per_shard {
            seed.extend(pairs);
            max_shard_ms = max_shard_ms.max(ms);
            sum_shard_ms += ms;
        }

        let t_reconcile = Instant::now();
        let m = {
            let _span = obs::span("shard_reconcile");
            let mut scratch = MatchScratch::new();
            if taxi_side {
                model
                    .instance()
                    .reviewer_optimal_seeded_with(&seed, &mut scratch)
            } else {
                model.instance().propose_seeded_with(&seed, &mut scratch)
            }
        };
        let stats = ShardStats {
            regions: plan.regions(),
            occupied: occupied.len(),
            boundary_taxis: plan.boundary_taxi_count(),
            boundary_requests: plan.boundary_request_count(),
            seed_pairs: seed.len(),
            partition_ms,
            max_shard_ms,
            sum_shard_ms,
            reconcile_ms: elapsed_ms(t_reconcile),
        };
        Self::record_shard_counters(&stats);
        (m, stats)
    }

    /// **Sharded NSTD-P**: [`passenger_optimal_with_grid`](Self::passenger_optimal_with_grid)
    /// decomposed spatially per `spec`, returning the measured shard
    /// structure alongside the schedule. Bit-identical to the global path
    /// for every spec, thread count and parameter set (property-tested in
    /// `tests/shard_equivalence.rs`); always uses the sparse candidate
    /// path — sharding exists for the scales where the dense matrix is
    /// already unaffordable.
    #[must_use]
    pub fn passenger_optimal_sharded(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_grid: Option<&GridIndex<usize>>,
        spec: &ShardSpec,
    ) -> (Schedule, ShardStats) {
        let model = FrameModel::Sparse(self.sparse_preferences(taxis, requests, taxi_grid));
        let (m, stats) = self.sharded_match(taxis, requests, &model, spec, false);
        (self.to_schedule(taxis, requests, &model, &m), stats)
    }

    /// **Sharded NSTD-T**: [`taxi_optimal_with_grid`](Self::taxi_optimal_with_grid)
    /// decomposed spatially per `spec`. See
    /// [`passenger_optimal_sharded`](Self::passenger_optimal_sharded).
    #[must_use]
    pub fn taxi_optimal_sharded(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_grid: Option<&GridIndex<usize>>,
        spec: &ShardSpec,
    ) -> (Schedule, ShardStats) {
        let model = FrameModel::Sparse(self.sparse_preferences(taxis, requests, taxi_grid));
        let (m, stats) = self.sharded_match(taxis, requests, &model, spec, true);
        (self.to_schedule(taxis, requests, &model, &m), stats)
    }

    /// The bottom rung of the degradation ladder: each request, in
    /// arrival (input) order, takes the nearest still-free taxi that the
    /// interest models make mutually acceptable — seats fit, pick-up
    /// within the passenger threshold, driver score within the taxi
    /// threshold.
    ///
    /// `O(|R|·|T|)` with no preference sorting, no matching, and no
    /// recursion, so it always fits a frame. The result is **not** stable
    /// in general; it exists so an over-budget frame can still dispatch
    /// *something* rather than nothing.
    ///
    /// Under [`ShardMode::Sharded`] the scan is routed through
    /// [`greedy_nearest_sharded`](Self::greedy_nearest_sharded) —
    /// bit-identical output, near-linear cost.
    #[must_use]
    pub fn greedy_nearest(&self, taxis: &[Taxi], requests: &[Request]) -> Schedule {
        if let ShardMode::Sharded(spec) = self.shard {
            return self.greedy_nearest_sharded(taxis, requests, &spec).0;
        }
        self.greedy_nearest_dense(taxis, requests)
    }

    /// The unsharded full scan behind [`greedy_nearest`](Self::greedy_nearest).
    fn greedy_nearest_dense(&self, taxis: &[Taxi], requests: &[Request]) -> Schedule {
        let request_ids: Vec<RequestId> = requests.iter().map(|r| r.id).collect();
        let taxi_ids: Vec<TaxiId> = taxis.iter().map(|t| t.id).collect();
        let mut taken = vec![false; taxis.len()];
        let mut request_to_taxi: Vec<Option<usize>> = vec![None; requests.len()];
        let mut passenger_cost: Vec<Option<f64>> = vec![None; requests.len()];
        let mut taxi_cost: Vec<Option<f64>> = vec![None; taxis.len()];
        for (j, r) in requests.iter().enumerate() {
            let trip = r.trip_distance(&self.metric);
            let mut best: Option<(f64, usize, f64)> = None;
            for (i, t) in taxis.iter().enumerate() {
                if taken[i] || t.seats < r.passengers {
                    continue;
                }
                let d = self.metric.distance(t.location, r.pickup);
                if d > self.params.passenger_threshold {
                    continue;
                }
                let score = d - self.params.alpha * trip;
                if score > self.params.taxi_threshold {
                    continue;
                }
                let better = match best {
                    None => true,
                    // Ties by taxi index (the iteration order) for
                    // determinism.
                    Some((bd, _, _)) => d < bd,
                };
                if better {
                    best = Some((d, i, score));
                }
            }
            if let Some((d, i, score)) = best {
                taken[i] = true;
                request_to_taxi[j] = Some(i);
                passenger_cost[j] = Some(d);
                taxi_cost[i] = Some(score);
            }
        }
        Schedule::from_parts(
            request_ids,
            taxi_ids,
            request_to_taxi,
            passenger_cost,
            taxi_cost,
        )
    }

    /// [`greedy_nearest`](Self::greedy_nearest) with each request's scan
    /// restricted to its region's *padded* taxi set — every taxi within
    /// the frame's interaction radius of the region rectangle — instead
    /// of all `|T|` taxis.
    ///
    /// Bit-identical to the dense scan: requests are still processed
    /// sequentially in arrival order against the shared free-taxi set;
    /// the padded set provably contains every taxi the thresholds could
    /// accept (the same Euclidean-lower-bounds-the-metric assumption the
    /// sparse candidate path makes); the acceptability filters are
    /// re-applied on exact metric distances; and each set is scanned in
    /// ascending taxi index, preserving the dense tie-break (nearest,
    /// then lowest index). The scan cost drops from `O(|R|·|T|)` to
    /// near-linear at paper-scale thresholds.
    ///
    /// In the returned [`ShardStats`] the sequential scan time is
    /// reported as both `max_shard_ms` and `sum_shard_ms` (the scan is
    /// one sequential stage), and `seed_pairs`/`reconcile_ms` are zero —
    /// greedy has no reconciliation pass.
    #[must_use]
    pub fn greedy_nearest_sharded(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        spec: &ShardSpec,
    ) -> (Schedule, ShardStats) {
        let t_partition = Instant::now();
        let (plan, trips) = {
            let _span = obs::span("shard_partition");
            let trips = self.trip_distances(requests);
            let plan = ShardPlan::build(spec, &self.params, taxis, requests, &trips);
            (plan, trips)
        };
        let sets = plan.padded_taxi_sets(taxis);
        let partition_ms = elapsed_ms(t_partition);

        let t_scan = Instant::now();
        let request_ids: Vec<RequestId> = requests.iter().map(|r| r.id).collect();
        let taxi_ids: Vec<TaxiId> = taxis.iter().map(|t| t.id).collect();
        let mut taken = vec![false; taxis.len()];
        let mut request_to_taxi: Vec<Option<usize>> = vec![None; requests.len()];
        let mut passenger_cost: Vec<Option<f64>> = vec![None; requests.len()];
        let mut taxi_cost: Vec<Option<f64>> = vec![None; taxis.len()];
        for (j, r) in requests.iter().enumerate() {
            let trip = trips[j];
            let mut best: Option<(f64, usize, f64)> = None;
            for &i in &sets[plan.request_region(j)] {
                let t = &taxis[i];
                if taken[i] || t.seats < r.passengers {
                    continue;
                }
                let d = self.metric.distance(t.location, r.pickup);
                if d > self.params.passenger_threshold {
                    continue;
                }
                let score = d - self.params.alpha * trip;
                if score > self.params.taxi_threshold {
                    continue;
                }
                let better = match best {
                    None => true,
                    // Ascending taxi index within the set, so strict `<`
                    // reproduces the dense scan's lowest-index tie-break.
                    Some((bd, _, _)) => d < bd,
                };
                if better {
                    best = Some((d, i, score));
                }
            }
            if let Some((d, i, score)) = best {
                taken[i] = true;
                request_to_taxi[j] = Some(i);
                passenger_cost[j] = Some(d);
                taxi_cost[i] = Some(score);
            }
        }
        let scan_ms = elapsed_ms(t_scan);
        let stats = ShardStats {
            regions: plan.regions(),
            occupied: plan.occupied_regions().len(),
            boundary_taxis: plan.boundary_taxi_count(),
            boundary_requests: plan.boundary_request_count(),
            seed_pairs: 0,
            partition_ms,
            max_shard_ms: scan_ms,
            sum_shard_ms: scan_ms,
            reconcile_ms: 0.0,
        };
        Self::record_shard_counters(&stats);
        let schedule = Schedule::from_parts(
            request_ids,
            taxi_ids,
            request_to_taxi,
            passenger_cost,
            taxi_cost,
        );
        (schedule, stats)
    }

    /// [`passenger_optimal`](Self::passenger_optimal) under a per-frame
    /// [`TimeBudget`]: NSTD-P when the budget allows, greedy-nearest
    /// (with an explicit [`Degraded`] marker) when the deadline has
    /// already passed at entry — preference construction is the dominant
    /// cost, so it is the one thing an exhausted frame must not start.
    ///
    /// `state` selects the warm incremental path (as in
    /// [`passenger_optimal_incremental`](Self::passenger_optimal_incremental));
    /// on a greedy fallback the carried state is cleared, because the
    /// greedy schedule is not a stable matching and must not seed the
    /// next frame. With an unlimited budget the result is bit-identical
    /// to the corresponding unbudgeted call.
    #[must_use]
    pub fn passenger_optimal_budgeted(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        pickup_distances: Option<&PickupDistances>,
        taxi_grid: Option<&GridIndex<usize>>,
        state: Option<&mut crate::IncrementalState>,
        budget: &TimeBudget,
    ) -> (Schedule, Option<Degraded>) {
        if budget.exhausted() {
            if let Some(state) = state {
                state.clear();
            }
            let degraded = Degraded {
                from: DispatchTier::NstdP,
                to: DispatchTier::GreedyNearest,
                reason: DegradeReason::DeadlineExceeded {
                    stage: "before preference construction",
                },
            };
            return (self.greedy_nearest(taxis, requests), Some(degraded));
        }
        let schedule = match state {
            Some(state) => {
                let model = self.frame_model_incremental(taxis, requests, taxi_grid, state);
                state.refresh_seed(taxis, requests);
                let m = model
                    .instance()
                    .propose_seeded_with(&state.scratch.seed, &mut state.scratch.matcher);
                state.record(taxis, requests, &m);
                let schedule = self.to_schedule(taxis, requests, &model, &m);
                state.scratch.matcher.recycle(m);
                schedule
            }
            None => {
                let model = self.frame_model(taxis, requests, pickup_distances, taxi_grid);
                let m = match (self.shard, &model) {
                    (ShardMode::Sharded(spec), FrameModel::Sparse(_)) => {
                        self.sharded_match(taxis, requests, &model, &spec, false).0
                    }
                    _ => model.instance().propose(),
                };
                self.to_schedule(taxis, requests, &model, &m)
            }
        };
        (schedule, None)
    }

    /// [`taxi_optimal`](Self::taxi_optimal) under a per-frame
    /// [`TimeBudget`] — the full ladder. Deadline already passed at
    /// entry: greedy-nearest (carried state cleared). Deadline passed
    /// after preference construction: NSTD-P on the just-built model —
    /// the passenger-optimal matching is one deferred-acceptance pass,
    /// the cheapest stable answer the model affords. Otherwise: NSTD-T.
    /// Each step down is reported as a [`Degraded`] marker; with an
    /// unlimited budget the result is bit-identical to the corresponding
    /// unbudgeted call.
    #[must_use]
    pub fn taxi_optimal_budgeted(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        pickup_distances: Option<&PickupDistances>,
        taxi_grid: Option<&GridIndex<usize>>,
        state: Option<&mut crate::IncrementalState>,
        budget: &TimeBudget,
    ) -> (Schedule, Option<Degraded>) {
        if budget.exhausted() {
            if let Some(state) = state {
                state.clear();
            }
            let degraded = Degraded {
                from: DispatchTier::NstdT,
                to: DispatchTier::GreedyNearest,
                reason: DegradeReason::DeadlineExceeded {
                    stage: "before preference construction",
                },
            };
            return (self.greedy_nearest(taxis, requests), Some(degraded));
        }
        match state {
            Some(state) => {
                let model = self.frame_model_incremental(taxis, requests, taxi_grid, state);
                state.refresh_seed(taxis, requests);
                if budget.exhausted() {
                    let m = model
                        .instance()
                        .propose_seeded_with(&state.scratch.seed, &mut state.scratch.matcher);
                    state.record(taxis, requests, &m);
                    let degraded = Degraded {
                        from: DispatchTier::NstdT,
                        to: DispatchTier::NstdP,
                        reason: DegradeReason::DeadlineExceeded {
                            stage: "after preference construction",
                        },
                    };
                    let schedule = self.to_schedule(taxis, requests, &model, &m);
                    state.scratch.matcher.recycle(m);
                    (schedule, Some(degraded))
                } else {
                    let m = model.instance().reviewer_optimal_seeded_with(
                        &state.scratch.seed,
                        &mut state.scratch.matcher,
                    );
                    state.record(taxis, requests, &m);
                    let schedule = self.to_schedule(taxis, requests, &model, &m);
                    state.scratch.matcher.recycle(m);
                    (schedule, None)
                }
            }
            None => {
                let model = self.frame_model(taxis, requests, pickup_distances, taxi_grid);
                if budget.exhausted() {
                    let m = model.instance().propose();
                    let degraded = Degraded {
                        from: DispatchTier::NstdT,
                        to: DispatchTier::NstdP,
                        reason: DegradeReason::DeadlineExceeded {
                            stage: "after preference construction",
                        },
                    };
                    (
                        self.to_schedule(taxis, requests, &model, &m),
                        Some(degraded),
                    )
                } else {
                    let m = match (self.shard, &model) {
                        (ShardMode::Sharded(spec), FrameModel::Sparse(_)) => {
                            self.sharded_match(taxis, requests, &model, &spec, true).0
                        }
                        _ => model.instance().reviewer_optimal(),
                    };
                    (self.to_schedule(taxis, requests, &model, &m), None)
                }
            }
        }
    }

    /// **Anytime NSTD-T**: the taxi-optimal search as a budgeted
    /// best-so-far walk of the BreakDispatch lattice, instead of the
    /// all-or-nothing role-swapped pass.
    ///
    /// Starts from the passenger-optimal schedule and walks Algorithm 2's
    /// BreakDispatch tree keeping the best schedule seen under the
    /// taxi-side rank objective (see
    /// [`StableInstance::reviewer_optimal_anytime`](o2o_matching::StableInstance::reviewer_optimal_anytime)).
    /// Every answer — at any budget, including a zero one — is a *stable*
    /// schedule at least as good for every taxi as NSTD-P; with an
    /// unlimited budget the result is bit-identical to
    /// [`taxi_optimal_with_grid`](Self::taxi_optimal_with_grid). The
    /// returned [`AnytimeOutcome`] carries the measured optimality gap
    /// for the budget actually spent.
    #[must_use]
    pub fn taxi_optimal_anytime(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        taxi_grid: Option<&GridIndex<usize>>,
        budget: &TimeBudget,
    ) -> (Schedule, AnytimeOutcome) {
        let model = self.frame_model(taxis, requests, None, taxi_grid);
        let search = model.instance().reviewer_optimal_anytime(budget);
        let schedule = self.to_schedule(taxis, requests, &model, &search.best);
        let outcome = AnytimeOutcome {
            taxi_cost: search.reviewer_cost,
            lower_bound: search.lower_bound,
            nodes: search.nodes,
            truncated: search.truncated,
        };
        // Export the anytime search's spend and certificate so sim/bench
        // layers can aggregate them per frame without plumbing the
        // outcome through every call site.
        obs::add_many(&[
            ("anytime.frames", 1),
            ("anytime.nodes", outcome.nodes),
            ("anytime.gap", outcome.gap()),
            ("anytime.truncated", u64::from(outcome.truncated)),
        ]);
        (schedule, outcome)
    }

    /// **Algorithm 2**: all stable schedules, passenger-optimal first.
    ///
    /// Enumerates via BreakDispatch with Rules 1–3. `limit` caps the count
    /// (the number of stable matchings can be exponential).
    #[must_use]
    pub fn all_schedules(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        limit: Option<usize>,
    ) -> Vec<Schedule> {
        let model = self.frame_model(taxis, requests, None, None);
        model
            .instance()
            .enumerate_all(limit)
            .iter()
            .map(|m| self.to_schedule(taxis, requests, &model, m))
            .collect()
    }

    /// [`all_schedules`](Self::all_schedules) with the BreakDispatch
    /// recursion metered by `budget` (node cap + deadline): over budget,
    /// the walk stops and a well-formed **prefix** of the enumeration is
    /// returned — passenger-optimal first, every element stable — plus a
    /// [`Degraded`] marker saying why. With an unlimited budget, exactly
    /// `all_schedules(limit)` and no marker.
    #[must_use]
    pub fn all_schedules_budgeted(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        limit: Option<usize>,
        budget: &TimeBudget,
    ) -> (Vec<Schedule>, Option<Degraded>) {
        let model = self.frame_model(taxis, requests, None, None);
        let e = model.instance().enumerate_budgeted(limit, budget);
        let schedules = e
            .matchings
            .iter()
            .map(|m| self.to_schedule(taxis, requests, &model, m))
            .collect();
        let degraded = e.truncated.then(|| Degraded {
            from: DispatchTier::FullEnumeration,
            to: DispatchTier::PartialEnumeration,
            reason: if budget.node_cap().is_some_and(|cap| e.nodes >= cap) {
                DegradeReason::NodeCapReached { nodes: e.nodes }
            } else {
                DegradeReason::DeadlineExceeded {
                    stage: "during enumeration",
                }
            },
        });
        (schedules, degraded)
    }

    /// [`is_stable`](Self::is_stable) over raw `(request, taxi)` id pairs
    /// instead of a [`Schedule`] — the shape chaos tests capture. Pairs
    /// referencing ids not present in the frame make the assignment
    /// trivially not stable (they cannot be expressed against it).
    #[must_use]
    pub fn is_stable_assignment(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        pairs: &[(RequestId, TaxiId)],
    ) -> bool {
        let taxi_pos: std::collections::HashMap<TaxiId, usize> =
            taxis.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        let request_pos: std::collections::HashMap<RequestId, usize> = requests
            .iter()
            .enumerate()
            .map(|(j, r)| (r.id, j))
            .collect();
        let mut m = Matching::empty(requests.len(), taxis.len());
        for &(rid, tid) in pairs {
            match (request_pos.get(&rid), taxi_pos.get(&tid)) {
                (Some(&j), Some(&i)) => m.link(j, i),
                _ => return false,
            }
        }
        let model = self.preferences(taxis, requests);
        model.instance.is_stable(&m)
    }

    /// The company's pick among all stable schedules (§IV.D): enumerate
    /// with Algorithm 2 and keep the schedule optimising `objective`.
    ///
    /// Note that by the rural-hospitals property (Theorem 2) the *set* of
    /// served requests — and hence the fare revenue — is identical across
    /// stable schedules, so revenue objectives tie and the objective's
    /// tie-break (e.g. total idle distance) decides.
    #[must_use]
    pub fn company_optimal(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        objective: CompanyObjective,
        limit: Option<usize>,
    ) -> Schedule {
        let mut all = self.all_schedules(taxis, requests, limit);
        let scores: Vec<f64> = all
            .iter()
            .map(|s| objective.score(&self.metric, requests, s))
            .collect();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("enumeration always yields at least one schedule");
        all.swap_remove(best)
    }

    /// The **egalitarian** stable schedule: among all stable schedules
    /// (Algorithm 2), the one minimising the summed preference ranks of
    /// both sides — the fairest compromise between NSTD-P and NSTD-T.
    ///
    /// An extension beyond the paper (its §II cites the fairness-variant
    /// literature); useful when the company wants neither side to dominate.
    ///
    /// Always evaluated on the **dense** preference lists regardless of
    /// [`CandidateMode`]: the rank sums being minimised count *every*
    /// above-dummy entry, including partners the other side rejects, so
    /// the sparse lists (which drop those no-op entries) would tie-break
    /// differently. Keeping this on the dense path preserves the
    /// historical definition.
    #[must_use]
    pub fn egalitarian(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        limit: Option<usize>,
    ) -> Schedule {
        let model = self.preferences(taxis, requests);
        let all = model.instance.enumerate_all(limit);
        let best = model
            .instance
            .egalitarian(&all)
            .expect("enumeration yields at least one matching");
        let model = FrameModel::Dense(model);
        self.to_schedule(taxis, requests, &model, best)
    }

    /// The **median** stable schedule (Teo–Sethuraman): every request gets
    /// the median of its partners across all stable schedules, which is
    /// itself a stable schedule. An extension beyond the paper (its §II
    /// cites Sethuraman's median stable matchings \[13\]).
    #[must_use]
    pub fn median(&self, taxis: &[Taxi], requests: &[Request], limit: Option<usize>) -> Schedule {
        let model = self.frame_model(taxis, requests, None, None);
        let all = model.instance().enumerate_all(limit);
        let median = model
            .instance()
            .median_stable_matching(&all)
            .expect("enumeration yields at least one matching");
        self.to_schedule(taxis, requests, &model, &median)
    }

    /// Whether `schedule` is stable for the given frame (Definition 1).
    ///
    /// Exposed for tests and for validating externally-produced schedules
    /// (e.g. the baselines, which are generally *not* stable).
    #[must_use]
    pub fn is_stable(&self, taxis: &[Taxi], requests: &[Request], schedule: &Schedule) -> bool {
        let model = self.preferences(taxis, requests);
        let mut m = Matching::empty(requests.len(), taxis.len());
        let taxi_pos: std::collections::HashMap<_, _> =
            taxis.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        for (j, r) in requests.iter().enumerate() {
            if let Some(tid) = schedule.assignment_of(r.id).taxi() {
                m.link(j, taxi_pos[&tid]);
            }
        }
        model.instance.is_stable(&m)
    }

    fn to_schedule(
        &self,
        taxis: &[Taxi],
        requests: &[Request],
        model: &FrameModel,
        m: &Matching,
    ) -> Schedule {
        let request_ids = requests.iter().map(|r| r.id).collect();
        let taxi_ids = taxis.iter().map(|t| t.id).collect();
        let request_to_taxi: Vec<Option<usize>> =
            (0..requests.len()).map(|j| m.proposer_partner(j)).collect();
        let passenger_cost = request_to_taxi
            .iter()
            .enumerate()
            .map(|(j, ti)| ti.map(|i| model.pickup(j, i)))
            .collect();
        let taxi_cost = (0..taxis.len())
            .map(|i| m.reviewer_partner(i).map(|j| model.score(i, j)))
            .collect();
        Schedule::from_parts(
            request_ids,
            taxi_ids,
            request_to_taxi,
            passenger_cost,
            taxi_cost,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DispatchOutcome;
    use o2o_geo::{Euclidean, Point};
    use o2o_matching::StableInstance;
    use o2o_trace::{RequestId, TaxiId};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn taxi(id: u64, x: f64, y: f64) -> Taxi {
        Taxi::new(TaxiId(id), Point::new(x, y))
    }

    fn request(id: u64, sx: f64, sy: f64, dx: f64, dy: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(sx, sy), Point::new(dx, dy))
    }

    /// The paper's Fig. 1: two requests, two taxis, pick-up distances
    /// D(t1,r1)=2, D(t1,r2)=3, D(t2,r1)=5, D(t2,r2)=10. Schedule S1
    /// (r1→t1, r2→t2) has total distance 12; S2 (r1→t2, r2→t1) has 8.
    /// S2 is shorter, but S1 is the stable one: in S2, r1 and t1 prefer
    /// each other over their partners.
    #[test]
    fn fig1_stability_vs_total_distance() {
        // Place everything on a line to realise the figure's distances.
        // t1 at 0; r1 pickup at 2 (D=2); r2 pickup at -3 (D=3);
        // t2 at 7 (D(t2,r1)=5, D(t2,r2)=10).
        let taxis = vec![taxi(1, 0.0, 0.0), taxi(2, 7.0, 0.0)];
        // Equal trip lengths so driver preferences follow pick-up distance.
        let requests = vec![
            request(1, 2.0, 0.0, 2.0, 4.0),
            request(2, -3.0, 0.0, -3.0, 4.0),
        ];
        let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::unbounded());
        let s = d.passenger_optimal(&taxis, &requests);
        // Stable schedule is S1.
        assert_eq!(
            s.assignment_of(RequestId(1)),
            DispatchOutcome::Assigned(TaxiId(1))
        );
        assert_eq!(
            s.assignment_of(RequestId(2)),
            DispatchOutcome::Assigned(TaxiId(2))
        );
        let total: f64 = [RequestId(1), RequestId(2)]
            .iter()
            .map(|&r| s.passenger_dissatisfaction(r).unwrap())
            .sum();
        assert_eq!(total, 12.0);
        // S2 (total 8) is cheaper but unstable.
        let s2 = Schedule::from_parts(
            vec![RequestId(1), RequestId(2)],
            vec![TaxiId(1), TaxiId(2)],
            vec![Some(1), Some(0)],
            vec![Some(5.0), Some(3.0)],
            vec![Some(3.0 - 7.0), Some(5.0 - 7.0)],
        );
        assert!(!d.is_stable(&taxis, &requests, &s2));
        assert!(d.is_stable(&taxis, &requests, &s));
    }

    /// The paper's Fig. 2 walk-through of Algorithm 1, reconstructed as a
    /// raw preference table: r1: [t1, t2]; r2: [t1]; r3: [t1, …];
    /// t1: r3 > r1 > r2; t2: accepts r1. Expected outcome: r3→t1, r1→t2
    /// (after being refused), r2 unserved.
    #[test]
    fn fig2_algorithm1_walkthrough() {
        let inst = StableInstance::new(
            vec![vec![0, 1], vec![0], vec![0]],
            vec![vec![2, 0, 1], vec![0]],
        )
        .unwrap();
        let m = inst.propose();
        assert_eq!(m.proposer_partner(0), Some(1)); // r1 → t2
        assert_eq!(m.proposer_partner(1), None); // r2 unserved
        assert_eq!(m.proposer_partner(2), Some(0)); // r3 → t1
        assert!(inst.is_stable(&m));
    }

    /// The paper's Fig. 3 walk-through of Algorithm 2: passenger-optimal
    /// S* = {r1→t1, r2→t2, r3 unserved}. BreakDispatch(S*, r1) succeeds
    /// (r1→t2, r2→t1); BreakDispatch(S*, r2) violates Rule 2;
    /// BreakDispatch(S*, r3) violates Rule 3. Exactly two stable
    /// matchings exist.
    #[test]
    fn fig3_algorithm2_walkthrough() {
        let inst = StableInstance::new(
            // r1: t1 > t2; r2: t2 > t1; r3: proposes but never accepted.
            vec![vec![0, 1], vec![1, 0], vec![0, 1]],
            // t1: r2 > r1 (r3 unacceptable); t2: r1 > r2.
            vec![vec![1, 0], vec![0, 1]],
        )
        .unwrap();
        let s0 = inst.propose();
        assert_eq!(s0.proposer_partner(0), Some(0));
        assert_eq!(s0.proposer_partner(1), Some(1));
        assert_eq!(s0.proposer_partner(2), None);

        // BreakDispatch on r1 succeeds.
        let s1 = inst.break_dispatch(&s0, 0).expect("fig3 break succeeds");
        assert_eq!(s1.proposer_partner(0), Some(1));
        assert_eq!(s1.proposer_partner(1), Some(0));
        // On r2: Rule 2 (would displace r1 < r2).
        assert!(inst.break_dispatch(&s0, 1).is_none());
        // On r3: Rule 3 (unserved).
        assert!(inst.break_dispatch(&s0, 2).is_none());

        let all = inst.enumerate_all(None);
        assert_eq!(all.len(), 2);
        // The second one is the taxi-optimal matching.
        assert_eq!(inst.reviewer_optimal(), s1);
    }

    #[test]
    fn property1_taxi_preferring_dummy_stays_idle() {
        // The only request has a terrible pay-off: score exceeds θ_t.
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![request(0, 10.0, 0.0, 10.5, 0.0)]; // score 10 − 0.5
        let params = PreferenceParams::unbounded()
            .with_taxi_threshold(5.0)
            .with_passenger_threshold(f64::INFINITY);
        let d = NonSharingDispatcher::new(Euclidean, params);
        let s = d.passenger_optimal(&taxis, &requests);
        assert_eq!(s.request_of(TaxiId(0)), None);
        assert_eq!(s.assignment_of(RequestId(0)), DispatchOutcome::Unserved);
    }

    #[test]
    fn property1_passenger_preferring_dummy_stays_unserved() {
        let taxis = vec![taxi(0, 50.0, 0.0)];
        let requests = vec![request(0, 0.0, 0.0, 5.0, 0.0)];
        let params = PreferenceParams::unbounded().with_passenger_threshold(15.0);
        let d = NonSharingDispatcher::new(Euclidean, params);
        let s = d.passenger_optimal(&taxis, &requests);
        assert_eq!(s.served_count(), 0);
    }

    #[test]
    fn unequal_sides_are_handled() {
        let taxis = vec![taxi(0, 0.0, 0.0)];
        let requests = vec![
            request(0, 1.0, 0.0, 5.0, 0.0),
            request(1, 2.0, 0.0, 6.0, 0.0),
            request(2, 3.0, 0.0, 7.0, 0.0),
        ];
        let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::unbounded());
        let s = d.passenger_optimal(&taxis, &requests);
        assert_eq!(s.served_count(), 1);
        assert_eq!(s.unserved().len(), 2);
    }

    fn random_frame(rng: &mut StdRng, nt: usize, nr: usize) -> (Vec<Taxi>, Vec<Request>) {
        let taxis = (0..nt)
            .map(|i| taxi(i as u64, rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let requests = (0..nr)
            .map(|j| {
                request(
                    j as u64,
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                )
            })
            .collect();
        (taxis, requests)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// NSTD-P and NSTD-T are both stable, and NSTD-T matches the
        /// taxi-best schedule among Algorithm 2's enumeration.
        #[test]
        fn taxi_optimal_agrees_with_enumeration(
            seed in any::<u64>(), nt in 1usize..6, nr in 1usize..6,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (taxis, requests) = random_frame(&mut rng, nt, nr);
            let params = PreferenceParams::paper().with_passenger_threshold(8.0);
            let d = NonSharingDispatcher::new(Euclidean, params);
            let p_opt = d.passenger_optimal(&taxis, &requests);
            let t_opt = d.taxi_optimal(&taxis, &requests);
            prop_assert!(d.is_stable(&taxis, &requests, &p_opt));
            prop_assert!(d.is_stable(&taxis, &requests, &t_opt));
            let all = d.all_schedules(&taxis, &requests, None);
            // Taxi-optimal minimises total taxi dissatisfaction… and is in
            // the enumerated set.
            let best_total = all.iter()
                .map(Schedule::total_taxi_dissatisfaction)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(t_opt.total_taxi_dissatisfaction() <= best_total + 1e-9);
            prop_assert!(all.contains(&t_opt));
            prop_assert_eq!(&all[0], &p_opt);
        }

        /// Rural hospitals at the dispatcher level: the served set (and
        /// count) is invariant across all stable schedules.
        #[test]
        fn served_set_is_invariant(seed in any::<u64>(), nt in 1usize..5, nr in 1usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (taxis, requests) = random_frame(&mut rng, nt, nr);
            let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::paper());
            let all = d.all_schedules(&taxis, &requests, None);
            let served0 = all[0].unserved();
            for s in &all {
                prop_assert_eq!(s.unserved(), served0.clone());
            }
        }

        /// Passenger dissatisfaction under NSTD-P lower-bounds every other
        /// stable schedule per request (passenger-optimality).
        #[test]
        fn passenger_optimality(seed in any::<u64>(), nt in 1usize..5, nr in 1usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (taxis, requests) = random_frame(&mut rng, nt, nr);
            let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::paper());
            let all = d.all_schedules(&taxis, &requests, None);
            let p_opt = &all[0];
            for s in &all {
                for r in &requests {
                    if let (Some(a), Some(b)) = (
                        p_opt.passenger_dissatisfaction(r.id),
                        s.passenger_dissatisfaction(r.id),
                    ) {
                        prop_assert!(a <= b + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn greedy_nearest_respects_thresholds_and_assigns_nearest() {
        // Taxis at 0 and 3; r0 (first arrival) at 1 takes the taxi at 0
        // (nearest), r1 at 2 gets the remaining taxi at 3.
        let taxis = vec![taxi(0, 0.0, 0.0), taxi(1, 3.0, 0.0)];
        let requests = vec![
            request(0, 1.0, 0.0, 1.0, 2.0),
            request(1, 2.0, 0.0, 2.0, 2.0),
        ];
        let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::unbounded());
        let s = d.greedy_nearest(&taxis, &requests);
        assert_eq!(
            s.assignment_of(RequestId(0)),
            DispatchOutcome::Assigned(TaxiId(0))
        );
        assert_eq!(
            s.assignment_of(RequestId(1)),
            DispatchOutcome::Assigned(TaxiId(1))
        );
        assert_eq!(s.passenger_dissatisfaction(RequestId(0)), Some(1.0));
        // A passenger threshold below every pick-up distance leaves all
        // requests unserved.
        let tight = PreferenceParams::unbounded().with_passenger_threshold(0.5);
        let d = NonSharingDispatcher::new(Euclidean, tight);
        assert_eq!(d.greedy_nearest(&taxis, &requests).served_count(), 0);
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_unbudgeted() {
        let mut rng = StdRng::seed_from_u64(0xB1D6);
        let unlimited = o2o_matching::TimeBudget::unlimited();
        for _ in 0..40 {
            let (taxis, requests) = random_frame(&mut rng, 4, 5);
            let params = PreferenceParams::paper().with_passenger_threshold(8.0);
            let d = NonSharingDispatcher::new(Euclidean, params);
            let (p, dp) =
                d.passenger_optimal_budgeted(&taxis, &requests, None, None, None, &unlimited);
            assert_eq!(dp, None);
            assert_eq!(p, d.passenger_optimal(&taxis, &requests));
            let (t, dt) = d.taxi_optimal_budgeted(&taxis, &requests, None, None, None, &unlimited);
            assert_eq!(dt, None);
            assert_eq!(t, d.taxi_optimal(&taxis, &requests));
            let (all, da) = d.all_schedules_budgeted(&taxis, &requests, None, &unlimited);
            assert_eq!(da, None);
            assert_eq!(all, d.all_schedules(&taxis, &requests, None));
        }
    }

    #[test]
    fn expired_deadline_degrades_to_greedy_and_clears_warm_state() {
        use o2o_matching::TimeBudgetSpec;
        let mut rng = StdRng::seed_from_u64(0xDE6);
        let (taxis, requests) = random_frame(&mut rng, 4, 5);
        let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::unbounded());
        let expired = TimeBudgetSpec::unlimited()
            .with_deadline(std::time::Duration::ZERO)
            .start();
        // Warm up a state, then hit it with an expired budget.
        let mut state = crate::IncrementalState::new();
        let _ = d.passenger_optimal_incremental(&taxis, &requests, None, &mut state);
        assert!(!state.carried_pairs().is_empty());
        let (s, degraded) =
            d.passenger_optimal_budgeted(&taxis, &requests, None, None, Some(&mut state), &expired);
        assert_eq!(s, d.greedy_nearest(&taxis, &requests));
        let degraded = degraded.expect("expired budget must degrade");
        assert_eq!(degraded.from, DispatchTier::NstdP);
        assert_eq!(degraded.to, DispatchTier::GreedyNearest);
        assert!(state.carried_pairs().is_empty(), "greedy must clear state");
        let (s, degraded) = d.taxi_optimal_budgeted(&taxis, &requests, None, None, None, &expired);
        assert_eq!(s, d.greedy_nearest(&taxis, &requests));
        assert_eq!(degraded.unwrap().from, DispatchTier::NstdT);
    }

    #[test]
    fn node_cap_degrades_enumeration_to_a_stable_prefix() {
        use o2o_matching::TimeBudgetSpec;
        let mut rng = StdRng::seed_from_u64(0xE9);
        let capped = TimeBudgetSpec::unlimited().with_node_cap(1).start();
        let mut saw_truncation = false;
        for _ in 0..60 {
            let (taxis, requests) = random_frame(&mut rng, 4, 4);
            let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::paper());
            let full = d.all_schedules(&taxis, &requests, None);
            let (prefix, degraded) = d.all_schedules_budgeted(&taxis, &requests, None, &capped);
            assert_eq!(prefix[..], full[..prefix.len()], "must be a prefix");
            for s in &prefix {
                assert!(d.is_stable(&taxis, &requests, s));
            }
            if let Some(deg) = degraded {
                saw_truncation = true;
                assert_eq!(deg.from, DispatchTier::FullEnumeration);
                assert_eq!(deg.to, DispatchTier::PartialEnumeration);
                assert!(matches!(deg.reason, DegradeReason::NodeCapReached { .. }));
            } else {
                assert_eq!(prefix, full);
            }
        }
        assert!(saw_truncation, "node cap of 1 never bit in 60 frames");
    }

    #[test]
    fn is_stable_assignment_mirrors_is_stable() {
        let taxis = vec![taxi(1, 0.0, 0.0), taxi(2, 7.0, 0.0)];
        let requests = vec![
            request(1, 2.0, 0.0, 2.0, 4.0),
            request(2, -3.0, 0.0, -3.0, 4.0),
        ];
        let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::unbounded());
        let stable = [(RequestId(1), TaxiId(1)), (RequestId(2), TaxiId(2))];
        assert!(d.is_stable_assignment(&taxis, &requests, &stable));
        // The fig1 S2 cross-assignment is unstable.
        let crossed = [(RequestId(1), TaxiId(2)), (RequestId(2), TaxiId(1))];
        assert!(!d.is_stable_assignment(&taxis, &requests, &crossed));
        // Unknown ids cannot be stable against this frame.
        let ghost = [(RequestId(9), TaxiId(1))];
        assert!(!d.is_stable_assignment(&taxis, &requests, &ghost));
    }

    #[test]
    fn egalitarian_and_median_are_stable_compromises() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..30 {
            let (taxis, requests) = random_frame(&mut rng, 4, 4);
            let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::unbounded());
            let egal = d.egalitarian(&taxis, &requests, None);
            let median = d.median(&taxis, &requests, None);
            assert!(d.is_stable(&taxis, &requests, &egal));
            assert!(d.is_stable(&taxis, &requests, &median));
            // Compromises sit between the two extremes on each side's
            // aggregate dissatisfaction.
            let p_opt = d.passenger_optimal(&taxis, &requests);
            let t_opt = d.taxi_optimal(&taxis, &requests);
            for s in [&egal, &median] {
                assert!(
                    s.total_passenger_dissatisfaction()
                        >= p_opt.total_passenger_dissatisfaction() - 1e-9
                );
                assert!(
                    s.total_taxi_dissatisfaction() >= t_opt.total_taxi_dissatisfaction() - 1e-9
                );
            }
        }
    }

    #[test]
    fn company_optimal_prefers_objective() {
        // Two stable matchings exist (fig3-style geometry); the company
        // picks by taxi welfare vs passenger welfare accordingly.
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..40 {
            let (taxis, requests) = random_frame(&mut rng, 3, 3);
            let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::paper());
            let all = d.all_schedules(&taxis, &requests, None);
            let pick = d.company_optimal(&taxis, &requests, CompanyObjective::TaxiWelfare, None);
            let best = all
                .iter()
                .map(Schedule::total_taxi_dissatisfaction)
                .fold(f64::INFINITY, f64::min);
            assert!(pick.total_taxi_dissatisfaction() <= best + 1e-9);
        }
    }
}
