//! Tunable parameters of the paper's interest models.

/// Parameters of the passenger and driver interest models (§IV.A, §V.A).
///
/// * A passenger ranks taxis by pick-up distance `D(t, r^s)`; a taxi is
///   ranked *below the passenger's dummy* (i.e. the passenger would rather
///   wait) when `D(t, r^s) > passenger_threshold`.
/// * A driver ranks requests by `D(t, r^s) − α·D(r^s, r^d)` (expense minus
///   weighted pay-off); a request is below the driver's dummy when the
///   score exceeds `taxi_threshold`.
/// * In sharing mode a passenger's key becomes
///   `D_ck(t, r^s) + β·[D_ck(r^s, r^d) − D(r^s, r^d)]` and a group is
///   feasible only when every member's detour is at most
///   `detour_threshold` (the paper's θ, set to 5 in the experiments).
///
/// The defaults reproduce the paper's experiment settings: `α = β = 1`,
/// `θ = 5`. The paper does not publish its dummy thresholds; the defaults
/// below (15 km pick-up tolerance ≈ 45 min at 20 km/h, driver score
/// cut-off 5 km) reproduce the qualitative behaviour its figures show —
/// NSTD refusing dispatches that are too far / unprofitable. Both are
/// ablation knobs (see `o2o-bench`).
///
/// # Examples
///
/// ```
/// use o2o_core::PreferenceParams;
///
/// let p = PreferenceParams::default().with_alpha(2.0);
/// assert_eq!(p.alpha, 2.0);
/// assert_eq!(p.detour_threshold, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreferenceParams {
    /// Driver pay-off weight `α` (paper: 1).
    pub alpha: f64,
    /// Sharing wait/detour trade-off `β` (paper: 1).
    pub beta: f64,
    /// Pick-up distance (km) beyond which a passenger prefers its dummy.
    pub passenger_threshold: f64,
    /// Driver score beyond which a taxi prefers its dummy.
    pub taxi_threshold: f64,
    /// Sharing detour budget `θ` in km (paper: 5).
    pub detour_threshold: f64,
}

impl PreferenceParams {
    /// The paper's experiment settings (`α = β = 1`, `θ = 5`).
    #[must_use]
    pub fn paper() -> Self {
        PreferenceParams {
            alpha: 1.0,
            beta: 1.0,
            passenger_threshold: 15.0,
            taxi_threshold: 2.0,
            detour_threshold: 5.0,
        }
    }

    /// Parameters with no dummy cut-offs: everyone accepts everyone, as in
    /// the classical stable marriage problem. Useful for isolating the
    /// effect of the thresholds (the dummy-threshold ablation).
    #[must_use]
    pub fn unbounded() -> Self {
        PreferenceParams {
            alpha: 1.0,
            beta: 1.0,
            passenger_threshold: f64::INFINITY,
            taxi_threshold: f64::INFINITY,
            detour_threshold: f64::INFINITY,
        }
    }

    /// Sets `α`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets `β`.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the passenger dummy threshold (km).
    #[must_use]
    pub fn with_passenger_threshold(mut self, km: f64) -> Self {
        self.passenger_threshold = km;
        self
    }

    /// Sets the driver dummy threshold (score).
    #[must_use]
    pub fn with_taxi_threshold(mut self, score: f64) -> Self {
        self.taxi_threshold = score;
        self
    }

    /// Sets the sharing detour budget θ (km).
    #[must_use]
    pub fn with_detour_threshold(mut self, km: f64) -> Self {
        self.detour_threshold = km;
        self
    }

    /// Validates the parameters (finite α/β; non-negative thresholds,
    /// `+∞` allowed).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.alpha.is_finite() {
            return Err(format!("alpha must be finite, got {}", self.alpha));
        }
        if !self.beta.is_finite() {
            return Err(format!("beta must be finite, got {}", self.beta));
        }
        for (name, v) in [
            ("passenger_threshold", self.passenger_threshold),
            ("taxi_threshold", self.taxi_threshold),
            ("detour_threshold", self.detour_threshold),
        ] {
            if v.is_nan() || v < 0.0 {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for PreferenceParams {
    /// Same as [`PreferenceParams::paper`].
    fn default() -> Self {
        PreferenceParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper() {
        assert_eq!(PreferenceParams::default(), PreferenceParams::paper());
        let p = PreferenceParams::default();
        assert_eq!(p.alpha, 1.0);
        assert_eq!(p.beta, 1.0);
        assert_eq!(p.detour_threshold, 5.0);
    }

    #[test]
    fn builders_chain() {
        let p = PreferenceParams::default()
            .with_alpha(0.5)
            .with_beta(2.0)
            .with_passenger_threshold(3.0)
            .with_taxi_threshold(1.0)
            .with_detour_threshold(2.0);
        assert_eq!(p.alpha, 0.5);
        assert_eq!(p.beta, 2.0);
        assert_eq!(p.passenger_threshold, 3.0);
        assert_eq!(p.taxi_threshold, 1.0);
        assert_eq!(p.detour_threshold, 2.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn unbounded_accepts_everything() {
        let p = PreferenceParams::unbounded();
        assert!(p.passenger_threshold.is_infinite());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_nan_threshold() {
        let p = PreferenceParams {
            taxi_threshold: f64::NAN,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_infinite_alpha() {
        let p = PreferenceParams::default().with_alpha(f64::INFINITY);
        assert!(p.validate().unwrap_err().contains("alpha"));
    }

    #[test]
    fn validate_rejects_negative_threshold() {
        let p = PreferenceParams::default().with_passenger_threshold(-1.0);
        assert!(p.validate().is_err());
    }
}
