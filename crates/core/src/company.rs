//! The company's interest: fares and schedule selection (§III.B, §IV.D).
//!
//! "The company makes money through taking a fixed [fraction] of the fare
//! of each taxi ride" and "can pick a stable matching from all possible
//! ones, such that the most money is made". By the rural-hospitals
//! property the served set — hence revenue — is the same in every stable
//! matching, so [`CompanyObjective`] also offers welfare tie-breakers.

use crate::Schedule;
use o2o_geo::Metric;
use o2o_trace::Request;

/// A distance-based taxi fare: `flag_fall + per_km × trip_km`.
///
/// # Examples
///
/// ```
/// use o2o_core::FareModel;
///
/// let fare = FareModel::default(); // $2.50 + $1.56/km, 20% commission
/// assert!((fare.fare(10.0) - 18.1).abs() < 1e-9);
/// assert!((fare.commission(10.0) - 3.62).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FareModel {
    /// Fixed component of every ride.
    pub flag_fall: f64,
    /// Per-kilometre rate.
    pub per_km: f64,
    /// Fraction of each fare the company keeps (e.g. `0.2`).
    pub commission_rate: f64,
}

impl FareModel {
    /// Creates a fare model.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative/non-finite or the commission
    /// rate exceeds 1.
    #[must_use]
    pub fn new(flag_fall: f64, per_km: f64, commission_rate: f64) -> Self {
        assert!(
            flag_fall.is_finite() && flag_fall >= 0.0,
            "invalid flag fall {flag_fall}"
        );
        assert!(
            per_km.is_finite() && per_km >= 0.0,
            "invalid per-km rate {per_km}"
        );
        assert!(
            (0.0..=1.0).contains(&commission_rate),
            "commission rate must be in [0, 1], got {commission_rate}"
        );
        FareModel {
            flag_fall,
            per_km,
            commission_rate,
        }
    }

    /// Fare of a trip of `trip_km` kilometres.
    #[must_use]
    pub fn fare(&self, trip_km: f64) -> f64 {
        self.flag_fall + self.per_km * trip_km
    }

    /// The company's cut of a trip of `trip_km` kilometres.
    #[must_use]
    pub fn commission(&self, trip_km: f64) -> f64 {
        self.fare(trip_km) * self.commission_rate
    }
}

impl Default for FareModel {
    /// NYC-yellow-cab-like rates: $2.50 flag fall, $1.56/km, 20%
    /// commission.
    fn default() -> Self {
        FareModel::new(2.5, 1.56, 0.2)
    }
}

/// Company revenue of a schedule: commission summed over served requests.
#[must_use]
pub fn fare_revenue<M: Metric>(
    metric: &M,
    fare: &FareModel,
    requests: &[Request],
    schedule: &Schedule,
) -> f64 {
    requests
        .iter()
        .filter(|r| schedule.assignment_of(r.id).taxi().is_some())
        .map(|r| fare.commission(r.trip_distance(metric)))
        .sum()
}

/// What the company maximises when picking among stable schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompanyObjective {
    /// Commission revenue under a fare model. Identical across stable
    /// schedules (rural hospitals), so ties are broken towards lower total
    /// pick-up distance (shorter idle driving = faster service).
    Revenue(FareModel),
    /// Minimise total pick-up (idle) distance of matched pairs.
    MinIdleDistance,
    /// Maximise passenger welfare (minimise total passenger
    /// dissatisfaction) — recovers NSTD-P.
    PassengerWelfare,
    /// Maximise taxi welfare (minimise total taxi dissatisfaction) —
    /// recovers NSTD-T.
    TaxiWelfare,
}

impl CompanyObjective {
    /// Score of a schedule; **higher is better**.
    #[must_use]
    pub fn score<M: Metric>(&self, metric: &M, requests: &[Request], s: &Schedule) -> f64 {
        match self {
            CompanyObjective::Revenue(fare) => {
                let revenue = fare_revenue(metric, fare, requests, s);
                // Tie-break: prefer lower idle distance with a weight small
                // enough never to trade away revenue.
                revenue - 1e-6 * s.total_passenger_dissatisfaction()
            }
            CompanyObjective::MinIdleDistance => -s.total_passenger_dissatisfaction(),
            CompanyObjective::PassengerWelfare => -s.total_passenger_dissatisfaction(),
            CompanyObjective::TaxiWelfare => -s.total_taxi_dissatisfaction(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::{Euclidean, Point};
    use o2o_trace::{RequestId, TaxiId};

    #[test]
    fn fare_components() {
        let f = FareModel::new(2.0, 1.5, 0.25);
        assert_eq!(f.fare(4.0), 8.0);
        assert_eq!(f.commission(4.0), 2.0);
        assert_eq!(f.fare(0.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "commission rate")]
    fn commission_rate_validated() {
        let _ = FareModel::new(1.0, 1.0, 1.5);
    }

    #[test]
    fn revenue_counts_only_served() {
        let requests = vec![
            Request::new(RequestId(0), 0, Point::new(0.0, 0.0), Point::new(10.0, 0.0)),
            Request::new(RequestId(1), 0, Point::new(0.0, 0.0), Point::new(20.0, 0.0)),
        ];
        let s = Schedule::from_parts(
            vec![RequestId(0), RequestId(1)],
            vec![TaxiId(0)],
            vec![Some(0), None],
            vec![Some(1.0), None],
            vec![Some(-9.0)],
        );
        let fare = FareModel::new(0.0, 1.0, 0.5);
        let rev = fare_revenue(&Euclidean, &fare, &requests, &s);
        assert_eq!(rev, 5.0); // only the 10 km trip, at 50% of $10
    }

    #[test]
    fn objectives_rank_schedules() {
        let requests = vec![Request::new(
            RequestId(0),
            0,
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
        )];
        let near = Schedule::from_parts(
            vec![RequestId(0)],
            vec![TaxiId(0)],
            vec![Some(0)],
            vec![Some(1.0)],
            vec![Some(-9.0)],
        );
        let far = Schedule::from_parts(
            vec![RequestId(0)],
            vec![TaxiId(0)],
            vec![Some(0)],
            vec![Some(5.0)],
            vec![Some(-5.0)],
        );
        let m = Euclidean;
        assert!(
            CompanyObjective::MinIdleDistance.score(&m, &requests, &near)
                > CompanyObjective::MinIdleDistance.score(&m, &requests, &far)
        );
        assert!(
            CompanyObjective::TaxiWelfare.score(&m, &requests, &near)
                > CompanyObjective::TaxiWelfare.score(&m, &requests, &far)
        );
        // Same revenue, tie broken towards the near schedule.
        assert!(
            CompanyObjective::Revenue(FareModel::default()).score(&m, &requests, &near)
                > CompanyObjective::Revenue(FareModel::default()).score(&m, &requests, &far)
        );
    }
}
