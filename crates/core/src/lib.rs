//! The paper's contribution: stable-marriage taxi dispatch for the O2O
//! business.
//!
//! *"Online to Offline Business: Urban Taxi Dispatching with
//! Passenger-Driver Matching Stability"* (Zheng & Wu, ICDCS 2017) dispatches
//! taxis so that no matched passenger and matched driver would prefer each
//! other over their assigned partners — with *dummy* partners allowing a
//! passenger to stay unserved (taxi too far) and a taxi to stay
//! undispatched (pay-off too low).
//!
//! | Paper artefact | Here |
//! |---|---|
//! | §IV.A interest models (`D(t,r^s)`, `D(t,r^s) − α·D(r^s,r^d)`) | [`prefs`] |
//! | Algorithm 1 (**NSTD-P**, passenger-optimal) | [`NonSharingDispatcher::passenger_optimal`] |
//! | Algorithm 2 (all stable matchings, Rules 1–3; **NSTD-T**) | [`NonSharingDispatcher::all_schedules`] / [`NonSharingDispatcher::taxi_optimal`] |
//! | Company's pick among stable matchings | [`NonSharingDispatcher::company_optimal`] |
//! | §V shared-route search (Theorem 5; exhaustive ≤ 90 orders) | [`shared_route`] |
//! | Algorithm 3 (**STD-P / STD-T**, set packing + Algorithm 1) | [`SharingDispatcher`] |
//!
//! # Examples
//!
//! ```
//! use o2o_core::{NonSharingDispatcher, PreferenceParams};
//! use o2o_geo::{Euclidean, Point};
//! use o2o_trace::{Request, RequestId, Taxi, TaxiId};
//!
//! let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
//! let requests = vec![Request::new(
//!     RequestId(0), 0, Point::new(1.0, 0.0), Point::new(5.0, 0.0),
//! )];
//! let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::default());
//! let schedule = d.passenger_optimal(&taxis, &requests);
//! assert_eq!(schedule.request_of(TaxiId(0)), Some(RequestId(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod company;
pub mod degrade;
mod incremental;
mod nstd;
mod params;
pub mod prefs;
mod schedule;
pub mod shard;
pub mod shared_route;
mod std_sharing;

pub use company::{fare_revenue, CompanyObjective, FareModel};
pub use degrade::{DegradeReason, Degraded, DispatchTier};
pub use incremental::{DispatchScratch, IncrementalMode, IncrementalState};
pub use nstd::{AnytimeOutcome, CandidateMode, NonSharingDispatcher};
pub use o2o_matching::{TimeBudget, TimeBudgetSpec};
pub use params::PreferenceParams;
pub use prefs::{
    build_taxi_grid, candidate_radius, CandidateCarry, PickupDistances, PreferenceModel,
    SparsePickupDistances, SparsePreferenceModel,
};
pub use schedule::{DispatchOutcome, Schedule};
pub use shard::{ShardInstance, ShardMembers, ShardMode, ShardPlan, ShardSpec, ShardStats};
pub use shared_route::{RoutePlan, Stop, StopKind};
pub use std_sharing::{
    GroupAssignment, PackingObjective, SharingConfig, SharingDispatcher, SharingSchedule,
    TripleCandidates,
};
