//! Shared-trip route search (§V.A, Theorem 5).
//!
//! Routing a taxi through the pick-up and drop-off locations of a group of
//! requests — pick-up before drop-off for every member — is NP-hard in
//! general (the paper reduces from the Shortest Hamiltonian Path Problem).
//! But "the number of passenger requests for a taxi sharing is usually no
//! greater than three", so the route is found by exhaustive search over the
//! precedence-feasible stop orders: `(2k)! / 2^k` of them — 6 for a pair,
//! 90 for a triple.
//!
//! **Genuine-sharing constraint.** For groups of two or more, the search
//! only considers orders in which the vehicle is never empty strictly
//! between the first pick-up and the last drop-off. Orders that fully
//! complete one trip before starting the next (`p₀ d₀ p₁ d₁`) are
//! back-to-back *re-dispatches*, not shared rides — admitting them makes
//! every pair of requests trivially "shareable" with zero detour, which
//! degenerates the paper's Maximum Set Packing stage (every request packs
//! with every other). This is the standard shareability definition (cf.
//! Santi et al.'s shareability networks) and the only reading under which
//! the paper's detour threshold θ has any bite.

use o2o_geo::{Metric, Point};
use o2o_trace::Request;

/// Whether a [`Stop`] picks a passenger up or drops them off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopKind {
    /// The taxi collects the member here (`r^s`).
    Pickup,
    /// The taxi delivers the member here (`r^d`).
    Dropoff,
}

/// One stop of a shared route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stop {
    /// Index of the member within the group (0-based).
    pub member: usize,
    /// Pick-up or drop-off.
    pub kind: StopKind,
    /// Location of the stop.
    pub location: Point,
}

/// An ordered shared route with per-member distance accounting.
///
/// Distances are *along the route*: `pickup_offset[m]` is the driving
/// distance from the route's first stop to member `m`'s pick-up, and
/// `onboard_distance[m]` is the paper's `D_ck(r_m^s, r_m^d)` — the distance
/// the member actually rides.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutePlan {
    /// Stops in visiting order (`2 × members` of them).
    pub stops: Vec<Stop>,
    /// Driving distance from the first stop through the last.
    pub internal_length: f64,
    /// Along-route distance from the first stop to each member's pick-up.
    pub pickup_offset: Vec<f64>,
    /// Along-route distance each member spends on board
    /// (`D_ck(r^s, r^d)`).
    pub onboard_distance: Vec<f64>,
}

impl RoutePlan {
    /// Number of members served by the route.
    #[must_use]
    pub fn members(&self) -> usize {
        self.pickup_offset.len()
    }

    /// Location of the first stop.
    ///
    /// # Panics
    ///
    /// Panics on an empty route.
    #[must_use]
    pub fn first_stop(&self) -> Point {
        self.stops.first().expect("route has stops").location
    }

    /// Member `m`'s detour against its direct distance `direct`:
    /// `D_ck(r^s, r^d) − D(r^s, r^d)` (≥ 0 whenever the metric satisfies
    /// the triangle inequality).
    #[must_use]
    pub fn detour(&self, m: usize, direct: f64) -> f64 {
        self.onboard_distance[m] - direct
    }

    /// Total taxi driving distance `D_ck(t)` when starting from `start`.
    #[must_use]
    pub fn total_drive<M: Metric>(&self, metric: &M, start: Point) -> f64 {
        metric.distance(start, self.first_stop()) + self.internal_length
    }

    /// Member `m`'s wait distance `D_ck(t, r_m^s)` when the taxi starts
    /// from `start`: approach leg plus the along-route offset of the
    /// member's pick-up.
    #[must_use]
    pub fn wait_distance<M: Metric>(&self, metric: &M, start: Point, m: usize) -> f64 {
        metric.distance(start, self.first_stop()) + self.pickup_offset[m]
    }
}

/// Upper bound on the group size the exhaustive search accepts.
///
/// The paper argues `|c_k| ≤ 3` in practice; 4 is still tractable
/// (2520 orders) and supported for experimentation.
pub const MAX_GROUP_SIZE: usize = 4;

/// Number of precedence-feasible stop orders for a `k`-member group:
/// `(2k)! / 2^k`.
#[must_use]
pub fn feasible_order_count(k: usize) -> usize {
    let fact = |n: usize| (1..=n).product::<usize>();
    fact(2 * k) / 2usize.pow(k as u32)
}

/// The shortest precedence-feasible route over the group, starting at the
/// best first pick-up (no taxi approach leg — the canonical route the
/// paper uses for feasibility checks).
///
/// # Panics
///
/// Panics if the group is empty or larger than [`MAX_GROUP_SIZE`].
#[must_use]
pub fn best_route<M: Metric>(metric: &M, group: &[Request]) -> RoutePlan {
    routes_by_first_pickup(metric, group)
        .into_iter()
        .min_by(|a, b| {
            a.internal_length
                .partial_cmp(&b.internal_length)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty group")
}

/// The shortest route over the group for a taxi starting at `start`
/// (approach leg included in the minimised objective).
///
/// # Panics
///
/// Panics if the group is empty or larger than [`MAX_GROUP_SIZE`].
#[must_use]
pub fn best_route_from<M: Metric>(metric: &M, start: Point, group: &[Request]) -> RoutePlan {
    routes_by_first_pickup(metric, group)
        .into_iter()
        .min_by(|a, b| {
            let la = metric.distance(start, a.first_stop()) + a.internal_length;
            let lb = metric.distance(start, b.first_stop()) + b.internal_length;
            la.partial_cmp(&lb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("non-empty group")
}

/// Whether every member's detour on the *length-minimal genuinely-shared*
/// route of `group` is within `theta` — the paper's stage-1 feasibility
/// test (`D_ck(r^s, r^d) − D(r^s, r^d) ≤ θ` on the canonical route),
/// computed without allocating a [`RoutePlan`].
///
/// Equivalent to checking [`best_route`]'s detours, but allocation-free:
/// Algorithm 3 runs this over every candidate pair/triple of a frame, so
/// it is the hottest loop of the sharing pipeline.
///
/// # Panics
///
/// Panics if the group is empty or larger than [`MAX_GROUP_SIZE`].
#[must_use]
pub fn min_route_within_detour<M: Metric>(metric: &M, group: &[Request], theta: f64) -> bool {
    min_route_length_if_within_detour(metric, group, theta).is_some()
}

/// Like [`min_route_within_detour`], but returning the *internal length*
/// of the canonical (length-minimal genuinely-shared) route when it is
/// detour-compliant, `None` otherwise.
///
/// The length doubles as a compatibility score: Algorithm 3's bounded
/// candidate generation keeps each request's lowest-scoring partners.
///
/// # Panics
///
/// Panics if the group is empty or larger than [`MAX_GROUP_SIZE`].
#[must_use]
pub fn min_route_length_if_within_detour<M: Metric>(
    metric: &M,
    group: &[Request],
    theta: f64,
) -> Option<f64> {
    let k = group.len();
    assert!(
        (1..=MAX_GROUP_SIZE).contains(&k),
        "group size {k} outside 1..={MAX_GROUP_SIZE}"
    );
    if k == 1 {
        // A lone rider never detours.
        return Some(metric.distance(group[0].pickup, group[0].dropoff));
    }
    let n = 2 * k;
    let loc = |s: usize| {
        if s < k {
            group[s].pickup
        } else {
            group[s - k].dropoff
        }
    };
    // Fixed-size buffers (MAX_GROUP_SIZE = 4 → at most 8 stops).
    let mut leg = [[0.0f64; 8]; 8];
    for (a, row) in leg.iter_mut().enumerate().take(n) {
        for (b, cell) in row.iter_mut().enumerate().take(n) {
            if a != b {
                *cell = metric.distance(loc(a), loc(b));
            }
        }
    }
    let mut max_onboard = [0.0f64; 4];
    for (slot, r) in max_onboard.iter_mut().zip(group) {
        *slot = metric.distance(r.pickup, r.dropoff) + theta;
    }

    struct Lean {
        k: usize,
        leg: [[f64; 8]; 8],
        max_onboard: [f64; 4],
        best_len: f64,
        best_ok: bool,
        pickup_at: [f64; 4],
        onboard: [f64; 4],
        last: usize,
    }

    impl Lean {
        fn run(&mut self, picked: u32, dropped: u32, depth: usize, length: f64) {
            if length >= self.best_len {
                return;
            }
            if depth == 2 * self.k {
                self.best_len = length;
                self.best_ok = (0..self.k).all(|m| self.onboard[m] <= self.max_onboard[m] + 1e-9);
                return;
            }
            let last = self.last;
            let is_final = depth + 1 == 2 * self.k;
            for m in 0..self.k {
                let bit = 1u32 << m;
                if picked & bit == 0 {
                    let new_len = length + self.leg[last][m];
                    let saved = self.pickup_at[m];
                    self.pickup_at[m] = new_len;
                    self.last = m;
                    self.run(picked | bit, dropped, depth + 1, new_len);
                    self.last = last;
                    self.pickup_at[m] = saved;
                } else if dropped & bit == 0 {
                    let onboard_after = picked.count_ones() - dropped.count_ones() - 1;
                    if !is_final && onboard_after == 0 {
                        continue; // genuine sharing: never empty mid-route
                    }
                    let stop = self.k + m;
                    let new_len = length + self.leg[last][stop];
                    let saved = self.onboard[m];
                    self.onboard[m] = new_len - self.pickup_at[m];
                    self.last = stop;
                    self.run(picked, dropped | bit, depth + 1, new_len);
                    self.last = last;
                    self.onboard[m] = saved;
                }
            }
        }
    }

    let mut state = Lean {
        k,
        leg,
        max_onboard,
        best_len: f64::INFINITY,
        best_ok: false,
        pickup_at: [0.0; 4],
        onboard: [0.0; 4],
        last: 0,
    };
    for first in 0..k {
        state.pickup_at = [0.0; 4];
        state.onboard = [0.0; 4];
        state.last = first;
        state.run(1 << first, 0, 1, 0.0);
    }
    state.best_ok.then_some(state.best_len)
}

/// The shortest route whose every member's detour stays within `theta`,
/// for a taxi starting at `start` (pass `None` to omit the approach leg),
/// or `None` when no precedence-feasible order is detour-compliant.
///
/// Unlike [`best_route_from`] — which optimises length alone — this search
/// treats the detour budget as a hard constraint, which is what the
/// insertion-style baselines need ("insert the request iff *some*
/// compliant order exists").
///
/// # Panics
///
/// Panics if the group is empty or larger than [`MAX_GROUP_SIZE`].
#[must_use]
pub fn best_route_within_detour<M: Metric>(
    metric: &M,
    start: Option<Point>,
    group: &[Request],
    theta: f64,
) -> Option<RoutePlan> {
    let k = group.len();
    assert!(
        (1..=MAX_GROUP_SIZE).contains(&k),
        "group size {k} outside 1..={MAX_GROUP_SIZE}"
    );
    let loc = |s: usize| {
        if s < k {
            group[s].pickup
        } else {
            group[s - k].dropoff
        }
    };
    let directs: Vec<f64> = group.iter().map(|r| r.trip_distance(metric)).collect();
    let n = 2 * k;
    let mut leg = vec![vec![0.0; n]; n];
    for (a, row) in leg.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            if a != b {
                *cell = metric.distance(loc(a), loc(b));
            }
        }
    }

    struct Search<'a> {
        k: usize,
        leg: &'a [Vec<f64>],
        directs: &'a [f64],
        theta: f64,
        best_len: f64,
        best_seq: Vec<usize>,
        seq: Vec<usize>,
        /// Along-route position of each member's pickup (valid once picked).
        pickup_at: Vec<f64>,
    }

    impl Search<'_> {
        fn run(&mut self, picked: u32, dropped: u32, length: f64) {
            if length >= self.best_len {
                return;
            }
            if self.seq.len() == 2 * self.k {
                self.best_len = length;
                self.best_seq = self.seq.clone();
                return;
            }
            let last = *self.seq.last().expect("seeded");
            for m in 0..self.k {
                let bit = 1u32 << m;
                if picked & bit == 0 {
                    self.seq.push(m);
                    let saved = self.pickup_at[m];
                    self.pickup_at[m] = length + self.leg[last][m];
                    self.run(picked | bit, dropped, length + self.leg[last][m]);
                    self.pickup_at[m] = saved;
                    self.seq.pop();
                } else if dropped & bit == 0 {
                    // Genuine sharing: a non-final drop-off may not empty
                    // the vehicle.
                    let is_final = self.seq.len() + 1 == 2 * self.k;
                    let onboard_after = picked.count_ones() - dropped.count_ones() - 1;
                    if self.k > 1 && !is_final && onboard_after == 0 {
                        continue;
                    }
                    let stop = self.k + m;
                    let new_len = length + self.leg[last][stop];
                    // Hard constraint: member m's onboard distance.
                    if new_len - self.pickup_at[m] - self.directs[m] <= self.theta + 1e-9 {
                        self.seq.push(stop);
                        self.run(picked, dropped | bit, new_len);
                        self.seq.pop();
                    }
                }
            }
        }
    }

    let mut best: Option<(f64, Vec<usize>, f64)> = None; // (score, seq, approach)
    for first in 0..k {
        let approach = start.map_or(0.0, |s| metric.distance(s, loc(first)));
        let budget = best.as_ref().map_or(f64::INFINITY, |(b, _, _)| *b) - approach;
        if budget <= 0.0 {
            continue;
        }
        let mut search = Search {
            k,
            leg: &leg,
            directs: &directs,
            theta,
            best_len: budget,
            best_seq: Vec::new(),
            seq: vec![first],
            pickup_at: vec![0.0; k],
        };
        search.run(1 << first, 0, 0.0);
        if !search.best_seq.is_empty() {
            best = Some((approach + search.best_len, search.best_seq, approach));
        }
    }
    let (_, seq, _) = best?;
    // Rebuild the accounting for the winning order.
    let mut prefix = vec![0.0; n];
    for i in 1..n {
        prefix[i] = prefix[i - 1] + leg[seq[i - 1]][seq[i]];
    }
    let mut pickup_offset = vec![0.0; k];
    let mut onboard = vec![0.0; k];
    for (i, &s) in seq.iter().enumerate() {
        if s < k {
            pickup_offset[s] = prefix[i];
        } else {
            onboard[s - k] = prefix[i] - pickup_offset[s - k];
        }
    }
    let stops = seq
        .iter()
        .map(|&s| Stop {
            member: if s < k { s } else { s - k },
            kind: if s < k {
                StopKind::Pickup
            } else {
                StopKind::Dropoff
            },
            location: loc(s),
        })
        .collect();
    Some(RoutePlan {
        stops,
        internal_length: prefix[n - 1],
        pickup_offset,
        onboard_distance: onboard,
    })
}

/// For each member, the best route that starts at *that member's pick-up*.
///
/// This is the key to cheap per-taxi evaluation in Algorithm 3: the
/// approach leg `D(t, first)` is the only taxi-dependent term, and the
/// first stop must be one of the `k` pick-ups, so a taxi's best route is
/// `min_p D(t, p) + internal(p)` over these `k` precomputed plans.
///
/// # Panics
///
/// Panics if the group is empty or larger than [`MAX_GROUP_SIZE`].
#[must_use]
pub fn routes_by_first_pickup<M: Metric>(metric: &M, group: &[Request]) -> Vec<RoutePlan> {
    let k = group.len();
    assert!(
        (1..=MAX_GROUP_SIZE).contains(&k),
        "group size {k} outside 1..={MAX_GROUP_SIZE}"
    );
    // Stop i < k is member i's pickup; stop i >= k is member (i−k)'s
    // dropoff. Precompute the 2k×2k leg matrix.
    let loc = |s: usize| {
        if s < k {
            group[s].pickup
        } else {
            group[s - k].dropoff
        }
    };
    let n = 2 * k;
    let mut leg = vec![vec![0.0; n]; n];
    for (a, row) in leg.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            if a != b {
                *cell = metric.distance(loc(a), loc(b));
            }
        }
    }

    struct Search<'a> {
        k: usize,
        leg: &'a [Vec<f64>],
        best_len: f64,
        best_seq: Vec<usize>,
        seq: Vec<usize>,
    }

    impl Search<'_> {
        fn run(&mut self, picked: u32, dropped: u32, length: f64) {
            if length >= self.best_len {
                return; // branch-and-bound prune
            }
            if self.seq.len() == 2 * self.k {
                self.best_len = length;
                self.best_seq = self.seq.clone();
                return;
            }
            let last = *self.seq.last().expect("seeded with the first stop");
            let is_final = self.seq.len() + 1 == 2 * self.k;
            for m in 0..self.k {
                let pickup_bit = 1u32 << m;
                if picked & pickup_bit == 0 {
                    self.seq.push(m);
                    self.run(picked | pickup_bit, dropped, length + self.leg[last][m]);
                    self.seq.pop();
                } else if dropped & pickup_bit == 0 {
                    // Genuine sharing: a non-final drop-off may not empty
                    // the vehicle.
                    let onboard_after = picked.count_ones() - dropped.count_ones() - 1;
                    if self.k > 1 && !is_final && onboard_after == 0 {
                        continue;
                    }
                    let stop = self.k + m;
                    self.seq.push(stop);
                    self.run(picked, dropped | pickup_bit, length + self.leg[last][stop]);
                    self.seq.pop();
                }
            }
        }
    }

    (0..k)
        .map(|first| {
            let mut search = Search {
                k,
                leg: &leg,
                best_len: f64::INFINITY,
                best_seq: Vec::new(),
                seq: vec![first],
            };
            search.run(1 << first, 0, 0.0);
            let seq = search.best_seq;
            debug_assert_eq!(seq.len(), n);
            // Prefix distances along the chosen order.
            let mut prefix = vec![0.0; n];
            for i in 1..n {
                prefix[i] = prefix[i - 1] + leg[seq[i - 1]][seq[i]];
            }
            let mut pickup_offset = vec![0.0; k];
            let mut onboard = vec![0.0; k];
            for (i, &s) in seq.iter().enumerate() {
                if s < k {
                    pickup_offset[s] = prefix[i];
                } else {
                    onboard[s - k] = prefix[i] - pickup_offset[s - k];
                }
            }
            let stops = seq
                .iter()
                .map(|&s| Stop {
                    member: if s < k { s } else { s - k },
                    kind: if s < k {
                        StopKind::Pickup
                    } else {
                        StopKind::Dropoff
                    },
                    location: loc(s),
                })
                .collect();
            RoutePlan {
                stops,
                internal_length: search.best_len,
                pickup_offset,
                onboard_distance: onboard,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::Euclidean;
    use o2o_trace::RequestId;
    use proptest::prelude::*;

    fn req(id: u64, sx: f64, sy: f64, dx: f64, dy: f64) -> Request {
        Request::new(RequestId(id), 0, Point::new(sx, sy), Point::new(dx, dy))
    }

    #[test]
    fn order_counts_match_paper() {
        assert_eq!(feasible_order_count(1), 1);
        assert_eq!(feasible_order_count(2), 6);
        assert_eq!(feasible_order_count(3), 90); // the paper's 6!/2!2!2!
    }

    #[test]
    fn singleton_route_is_direct() {
        let r = req(0, 0.0, 0.0, 3.0, 4.0);
        let plan = best_route(&Euclidean, &[r]);
        assert_eq!(plan.internal_length, 5.0);
        assert_eq!(plan.pickup_offset, vec![0.0]);
        assert_eq!(plan.onboard_distance, vec![5.0]);
        assert_eq!(plan.stops.len(), 2);
        assert_eq!(plan.stops[0].kind, StopKind::Pickup);
        assert_eq!(plan.stops[1].kind, StopKind::Dropoff);
    }

    #[test]
    fn collinear_pair_chains_perfectly() {
        // a: 0 → 10; b: 2 → 8. Optimal: a+ b+ b- a-, length 10, no detour
        // for a, none for b.
        let a = req(0, 0.0, 0.0, 10.0, 0.0);
        let b = req(1, 2.0, 0.0, 8.0, 0.0);
        let plan = best_route(&Euclidean, &[a, b]);
        assert!((plan.internal_length - 10.0).abs() < 1e-12);
        assert_eq!(plan.detour(0, 10.0), 0.0);
        assert_eq!(plan.detour(1, 6.0), 0.0);
        assert_eq!(plan.pickup_offset, vec![0.0, 2.0]);
    }

    #[test]
    fn precedence_is_respected() {
        let a = req(0, 0.0, 0.0, 1.0, 0.0);
        let b = req(1, 5.0, 0.0, 6.0, 0.0);
        let c = req(2, 2.0, 2.0, 3.0, 2.0);
        for plan in routes_by_first_pickup(&Euclidean, &[a, b, c]) {
            let mut on_board = [false; 3];
            for (i, stop) in plan.stops.iter().enumerate() {
                match stop.kind {
                    StopKind::Pickup => on_board[stop.member] = true,
                    StopKind::Dropoff => {
                        assert!(on_board[stop.member], "dropoff before pickup");
                        on_board[stop.member] = false;
                        let occupancy = on_board.iter().filter(|&&b| b).count();
                        assert!(
                            occupancy > 0 || i + 1 == plan.stops.len(),
                            "vehicle empty mid-route"
                        );
                    }
                }
            }
            assert_eq!(plan.stops.len(), 6);
        }
    }

    #[test]
    fn best_route_from_accounts_for_approach() {
        // Two pickups far apart; the taxi sits next to the "worse" one.
        let a = req(0, 0.0, 0.0, 1.0, 0.0);
        let b = req(1, 100.0, 0.0, 101.0, 0.0);
        let near_b = Point::new(99.0, 0.0);
        let plan = best_route_from(&Euclidean, near_b, &[a, b]);
        assert_eq!(plan.stops[0].member, 1, "starts at the nearby pickup");
    }

    #[test]
    fn wait_and_drive_accessors() {
        let a = req(0, 1.0, 0.0, 2.0, 0.0);
        let plan = best_route(&Euclidean, &[a]);
        let start = Point::new(0.0, 0.0);
        assert_eq!(plan.total_drive(&Euclidean, start), 2.0);
        assert_eq!(plan.wait_distance(&Euclidean, start, 0), 1.0);
        assert_eq!(plan.first_stop(), Point::new(1.0, 0.0));
    }

    #[test]
    fn constrained_search_respects_both_constraints() {
        // Crossing trips: every genuinely-shared (never-empty) order
        // forces a large detour on one member, so a tight budget admits
        // nothing; a budget above that detour admits the interleaving.
        let a = req(0, 0.0, 0.0, 20.0, 0.0);
        let b = Request::new(
            RequestId(1),
            0,
            Point::new(10.0, 5.0),
            Point::new(10.0, -5.0),
        );
        let unconstrained = best_route(&Euclidean, &[a, b]);
        assert!(
            unconstrained.detour(0, 20.0) > 5.0,
            "premise: min route detours"
        );
        assert!(best_route_within_detour(&Euclidean, None, &[a, b], 1.0).is_none());
        let plan = best_route_within_detour(&Euclidean, None, &[a, b], 13.0)
            .expect("interleaved order fits a 13 km budget");
        assert!(plan.detour(0, 20.0) <= 13.0 + 1e-9);
        assert!(plan.detour(1, 10.0) <= 13.0 + 1e-9);
    }

    #[test]
    fn opposite_trips_are_not_shareable_within_tight_budget() {
        // Identical pickup, opposite dropoffs. Every genuinely-shared
        // order gives one member a 20 km detour (sequential back-to-back
        // service is *not* sharing and is excluded), so a 5 km budget
        // admits nothing and a 20 km budget admits the interleaving.
        let a = req(0, 0.0, 0.0, 10.0, 0.0);
        let b = req(1, 0.0, 0.0, -10.0, 0.0);
        assert!(best_route_within_detour(&Euclidean, None, &[a, b], 5.0).is_none());
        let loose = best_route_within_detour(&Euclidean, None, &[a, b], 20.0)
            .expect("20 km budget admits the interleaved route");
        assert!((loose.internal_length - 30.0).abs() < 1e-9);
        assert!(loose.detour(0, 10.0).max(loose.detour(1, 10.0)) <= 20.0 + 1e-9);
    }

    #[test]
    fn constrained_search_with_start_prefers_near_first_stop() {
        let a = req(0, 0.0, 0.0, 1.0, 0.0);
        let b = req(1, 100.0, 0.0, 101.0, 0.0);
        let plan = best_route_within_detour(
            &Euclidean,
            Some(Point::new(99.0, 0.0)),
            &[a, b],
            f64::INFINITY,
        )
        .unwrap();
        assert_eq!(plan.stops[0].member, 1);
    }

    #[test]
    fn constrained_matches_unconstrained_with_infinite_budget() {
        let group = [
            req(0, 0.0, 0.0, 5.0, 1.0),
            req(1, 1.0, 2.0, 4.0, -1.0),
            req(2, -2.0, 1.0, 3.0, 3.0),
        ];
        let unconstrained = best_route(&Euclidean, &group);
        let constrained =
            best_route_within_detour(&Euclidean, None, &group, f64::INFINITY).unwrap();
        assert!((constrained.internal_length - unconstrained.internal_length).abs() < 1e-9);
    }

    #[test]
    fn lean_feasibility_matches_plan_based_check() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xFEA51B1E);
        for _ in 0..500 {
            let k = rng.gen_range(1..=3);
            let group: Vec<Request> = (0..k)
                .map(|i| {
                    req(
                        i as u64,
                        rng.gen_range(-6.0..6.0),
                        rng.gen_range(-6.0..6.0),
                        rng.gen_range(-6.0..6.0),
                        rng.gen_range(-6.0..6.0),
                    )
                })
                .collect();
            let theta = rng.gen_range(0.0..8.0);
            let lean = min_route_within_detour(&Euclidean, &group, theta);
            let plan = best_route(&Euclidean, &group);
            let full = group
                .iter()
                .enumerate()
                .all(|(m, r)| plan.detour(m, r.trip_distance(&Euclidean)) <= theta + 1e-9);
            assert_eq!(lean, full, "k={k} theta={theta}");
        }
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn oversize_group_panics() {
        let rs: Vec<Request> = (0..5).map(|i| req(i, 0.0, 0.0, 1.0, 0.0)).collect();
        let _ = best_route(&Euclidean, &rs);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn empty_group_panics() {
        let _ = best_route(&Euclidean, &[]);
    }

    /// Exhaustive reference: enumerate all orders without pruning.
    fn brute_best_length(group: &[Request], first: usize) -> f64 {
        fn rec(
            group: &[Request],
            seq: &mut Vec<usize>,
            picked: u32,
            dropped: u32,
            len: f64,
            cur: Point,
            best: &mut f64,
        ) {
            let k = group.len();
            if seq.len() == 2 * k {
                *best = best.min(len);
                return;
            }
            for m in 0..k {
                let bit = 1u32 << m;
                if picked & bit == 0 {
                    let p = group[m].pickup;
                    seq.push(m);
                    rec(
                        group,
                        seq,
                        picked | bit,
                        dropped,
                        len + cur.euclidean(p),
                        p,
                        best,
                    );
                    seq.pop();
                } else if dropped & bit == 0 {
                    let onboard_after = picked.count_ones() - dropped.count_ones() - 1;
                    if k > 1 && seq.len() + 1 < 2 * k && onboard_after == 0 {
                        continue;
                    }
                    let d = group[m].dropoff;
                    seq.push(k + m);
                    rec(
                        group,
                        seq,
                        picked,
                        dropped | bit,
                        len + cur.euclidean(d),
                        d,
                        best,
                    );
                    seq.pop();
                }
            }
        }
        let mut best = f64::INFINITY;
        let mut seq = vec![first];
        rec(
            group,
            &mut seq,
            1 << first,
            0,
            0.0,
            group[first].pickup,
            &mut best,
        );
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Pruned search equals the unpruned exhaustive optimum, and the
        /// accounting is internally consistent.
        #[test]
        fn search_is_exact_and_consistent(
            coords in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 4..=6),
        ) {
            prop_assume!(coords.len() % 2 == 0);
            let k = coords.len() / 2;
            let group: Vec<Request> = (0..k)
                .map(|i| req(
                    i as u64,
                    coords[2 * i].0, coords[2 * i].1,
                    coords[2 * i + 1].0, coords[2 * i + 1].1,
                ))
                .collect();
            for (first, plan) in routes_by_first_pickup(&Euclidean, &group)
                .into_iter().enumerate()
            {
                let brute = brute_best_length(&group, first);
                prop_assert!((plan.internal_length - brute).abs() < 1e-9);
                // Stops realise the reported length.
                let polyline: Vec<Point> = plan.stops.iter().map(|s| s.location).collect();
                let realized = Euclidean.path_length(&polyline);
                prop_assert!((realized - plan.internal_length).abs() < 1e-9);
                // Detour is non-negative under the triangle inequality.
                for (m, member) in group.iter().enumerate().take(k) {
                    let direct = member.trip_distance(&Euclidean);
                    prop_assert!(plan.detour(m, direct) >= -1e-9);
                    prop_assert!(plan.pickup_offset[m] <= plan.internal_length + 1e-9);
                }
            }
        }
    }
}
