//! Sharded ≡ global: spatial decomposition must not change a single bit.
//!
//! The sharded dispatch path partitions a frame into regions sized by the
//! interaction radius, runs deferred acceptance per region, and reconciles
//! with one *seeded* global pass. Exactness is by construction — the
//! seeded pass produces the cold-start matching for **any** seed — so the
//! schedules must be bit-identical to the global path for every shard grid
//! size, padding, threshold setting, thread count, and churn pattern.
//!
//! Debug builds add a safety net that would mask a seeded-path bug: on
//! divergence, `propose_seeded_with` silently returns the cold matching
//! and bumps the `match.seed_divergence` counter. Every test here installs
//! an [`o2o_obs`] recorder and asserts that counter stays zero, so the
//! equivalence claims are about the seeded path itself, not the fallback.

use o2o_core::{
    build_taxi_grid, CandidateMode, IncrementalState, NonSharingDispatcher, PreferenceParams,
    ShardMode, ShardPlan, ShardSpec, TimeBudget,
};
use o2o_geo::{Euclidean, Point};
use o2o_obs as obs;
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_frame(seed: u64, nt: usize, nr: usize, span: f64) -> (Vec<Taxi>, Vec<Request>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let taxis = (0..nt)
        .map(|i| {
            let mut t = Taxi::new(
                TaxiId(i as u64),
                Point::new(rng.gen_range(-span..span), rng.gen_range(-span..span)),
            );
            t.seats = rng.gen_range(1..=4);
            t
        })
        .collect();
    let requests = (0..nr)
        .map(|j| {
            let mut r = Request::new(
                RequestId(j as u64),
                0,
                Point::new(rng.gen_range(-span..span), rng.gen_range(-span..span)),
                Point::new(rng.gen_range(-span..span), rng.gen_range(-span..span)),
            );
            r.passengers = rng.gen_range(1..=3);
            r
        })
        .collect();
    (taxis, requests)
}

/// Same rolling-delta generator as `warm_equivalence.rs`: a frame
/// sequence where taxis move/leave/join and requests are served/arrive,
/// so the sharded cold path is exercised against real churn.
fn rolling_frames(
    seed: u64,
    frames: usize,
    span: f64,
    churn: f64,
) -> Vec<(Vec<Taxi>, Vec<Request>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let point =
        |rng: &mut StdRng| Point::new(rng.gen_range(-span..span), rng.gen_range(-span..span));
    let nt = rng.gen_range(1..14);
    let nr = rng.gen_range(1..16);
    let mut taxis: Vec<Taxi> = (0..nt)
        .map(|i| {
            let mut t = Taxi::new(TaxiId(i as u64), point(&mut rng));
            t.seats = rng.gen_range(1..=4);
            t
        })
        .collect();
    let mut next_taxi_id = nt as u64;
    let mut next_request_id = 0u64;
    let new_request = |rng: &mut StdRng, id: &mut u64| {
        let mut r = Request::new(RequestId(*id), 0, point(rng), point(rng));
        *id += 1;
        r.passengers = rng.gen_range(1..=3);
        r
    };
    let mut requests: Vec<Request> = (0..nr)
        .map(|_| new_request(&mut rng, &mut next_request_id))
        .collect();
    let mut out = Vec::with_capacity(frames);
    for _ in 0..frames {
        out.push((taxis.clone(), requests.clone()));
        let mut kept = Vec::with_capacity(taxis.len());
        for mut t in taxis.drain(..) {
            if rng.gen_bool(churn) {
                if rng.gen_bool(0.5) {
                    t.location = point(&mut rng);
                    kept.push(t);
                }
            } else {
                kept.push(t);
            }
        }
        if rng.gen_bool(churn.max(0.1)) {
            let mut t = Taxi::new(TaxiId(next_taxi_id), point(&mut rng));
            next_taxi_id += 1;
            t.seats = rng.gen_range(1..=4);
            kept.push(t);
        }
        taxis = kept;
        requests.retain(|_| !rng.gen_bool(churn));
        let arrivals = rng.gen_range(0..3);
        for _ in 0..arrivals {
            requests.push(new_request(&mut rng, &mut next_request_id));
        }
    }
    out
}

fn param_grid() -> Vec<PreferenceParams> {
    vec![
        PreferenceParams::paper(),
        PreferenceParams::paper()
            .with_passenger_threshold(3.0)
            .with_taxi_threshold(0.5),
        PreferenceParams::unbounded().with_taxi_threshold(1.0),
        // Degenerate for sharding: infinite radius ⇒ a single region.
        PreferenceParams::unbounded(),
    ]
}

/// Shard grid sizes and paddings swept by every test, from the degenerate
/// single shard up to grids far finer than the tiny frames can fill.
fn spec_grid() -> Vec<ShardSpec> {
    vec![
        ShardSpec::new(1),
        ShardSpec::new(4),
        ShardSpec::new(9).with_padding(1.5),
        ShardSpec::new(25),
        ShardSpec::new(64).with_padding(2.0),
    ]
}

const THREAD_COUNTS: [usize; 2] = [3, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// NSTD-P and NSTD-T under `ShardMode::Sharded` are bit-identical to
    /// the global path, across shard grid sizes, thresholds and thread
    /// counts — via both the mode toggle and the explicit `*_sharded`
    /// entry points — and the debug seeded-path fallback never fires.
    #[test]
    fn sharded_dispatch_matches_global(
        seed in any::<u64>(), nt in 1usize..14, nr in 1usize..16,
    ) {
        let rec = obs::Recorder::new();
        let _g = obs::scope(&rec);
        let (taxis, requests) = random_frame(seed, nt, nr, 8.0);
        let grid = build_taxi_grid(&taxis);
        for params in param_grid() {
            let global = NonSharingDispatcher::new(Euclidean, params);
            let p0 = global.passenger_optimal_with_grid(&taxis, &requests, Some(&grid));
            let t0 = global.taxi_optimal_with_grid(&taxis, &requests, Some(&grid));
            for spec in spec_grid() {
                let parallelisms = std::iter::once(Parallelism::sequential())
                    .chain(THREAD_COUNTS.iter().map(|&t| Parallelism::fixed(t)));
                for par in parallelisms {
                    let sharded = NonSharingDispatcher::new(Euclidean, params)
                        .with_parallelism(par)
                        .with_shard_mode(ShardMode::Sharded(spec));
                    prop_assert_eq!(
                        &sharded.passenger_optimal_with_grid(&taxis, &requests, Some(&grid)),
                        &p0
                    );
                    prop_assert_eq!(
                        &sharded.taxi_optimal_with_grid(&taxis, &requests, Some(&grid)),
                        &t0
                    );
                    let (p, ps) = sharded
                        .passenger_optimal_sharded(&taxis, &requests, Some(&grid), &spec);
                    prop_assert_eq!(&p, &p0);
                    prop_assert!(ps.regions >= 1 && ps.occupied <= ps.regions);
                    let (t, _) =
                        sharded.taxi_optimal_sharded(&taxis, &requests, Some(&grid), &spec);
                    prop_assert_eq!(&t, &t0);
                }
            }
        }
        prop_assert!(rec.counter("shard.frames") > 0, "sharded path never engaged");
        prop_assert_eq!(rec.counter("match.seed_divergence"), 0);
    }

    /// The sharded greedy baseline (padded per-region taxi sets) is
    /// bit-identical to the dense greedy scan, across shard grids and
    /// thresholds — including via the `ShardMode` routing.
    #[test]
    fn sharded_greedy_matches_dense_greedy(
        seed in any::<u64>(), nt in 1usize..16, nr in 1usize..16,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr, 8.0);
        for params in param_grid() {
            let global = NonSharingDispatcher::new(Euclidean, params);
            let g0 = global.greedy_nearest(&taxis, &requests);
            for spec in spec_grid() {
                let sharded = NonSharingDispatcher::new(Euclidean, params)
                    .with_shard_mode(ShardMode::Sharded(spec));
                prop_assert_eq!(&sharded.greedy_nearest(&taxis, &requests), &g0);
                let (s, stats) = sharded.greedy_nearest_sharded(&taxis, &requests, &spec);
                prop_assert_eq!(&s, &g0);
                prop_assert_eq!(stats.seed_pairs, 0);
            }
        }
    }

    /// Churn via the incremental path: over rolling frame deltas, the
    /// sharded cold path agrees frame by frame with the warm-incremental
    /// global path (which carries state across the same sequence).
    #[test]
    fn sharded_matches_warm_incremental_across_churn(
        seed in any::<u64>(), churn_pct in 0u32..=60,
    ) {
        let rec = obs::Recorder::new();
        let _g = obs::scope(&rec);
        let frames = rolling_frames(seed, 6, 8.0, f64::from(churn_pct) / 100.0);
        let params = PreferenceParams::paper();
        let warm = NonSharingDispatcher::new(Euclidean, params);
        for spec in [ShardSpec::new(4), ShardSpec::new(16)] {
            let sharded = NonSharingDispatcher::new(Euclidean, params)
                .with_shard_mode(ShardMode::Sharded(spec));
            let mut p_state = IncrementalState::new();
            let mut t_state = IncrementalState::new();
            for (taxis, requests) in &frames {
                prop_assert_eq!(
                    &sharded.passenger_optimal_with_grid(taxis, requests, None),
                    &warm.passenger_optimal_incremental(taxis, requests, None, &mut p_state)
                );
                prop_assert_eq!(
                    &sharded.taxi_optimal_with_grid(taxis, requests, None),
                    &warm.taxi_optimal_incremental(taxis, requests, None, &mut t_state)
                );
            }
        }
        prop_assert_eq!(rec.counter("match.seed_divergence"), 0);
    }

    /// The shard plan is a true partition at the dispatch level: every
    /// taxi and request lands in exactly one region's member list, and
    /// the member lists agree with the per-entity ownership accessors.
    #[test]
    fn shard_plan_is_a_true_partition(
        seed in any::<u64>(), nt in 0usize..20, nr in 0usize..20, target in 1usize..40,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr, 10.0);
        let trips: Vec<f64> = requests
            .iter()
            .map(|r| r.trip_distance(&Euclidean))
            .collect();
        let params = PreferenceParams::paper();
        let plan = ShardPlan::build(
            &ShardSpec::new(target), &params, &taxis, &requests, &trips,
        );
        let mut taxi_seen = vec![0usize; taxis.len()];
        let mut request_seen = vec![0usize; requests.len()];
        for s in 0..plan.regions() {
            for &i in &plan.members(s).taxis {
                prop_assert_eq!(plan.taxi_region(i), s);
                taxi_seen[i] += 1;
            }
            for &j in &plan.members(s).requests {
                prop_assert_eq!(plan.request_region(j), s);
                request_seen[j] += 1;
            }
        }
        prop_assert!(taxi_seen.iter().all(|&c| c == 1));
        prop_assert!(request_seen.iter().all(|&c| c == 1));
        prop_assert_eq!(
            plan.boundary_taxi_count(),
            (0..taxis.len()).filter(|&i| plan.taxi_is_boundary(i)).count()
        );
        prop_assert_eq!(
            plan.boundary_request_count(),
            (0..requests.len()).filter(|&j| plan.request_is_boundary(j)).count()
        );
    }

    /// Unlimited budgets with sharding enabled stay bit-identical to the
    /// unbudgeted sharded calls (and hence to the global path).
    #[test]
    fn sharded_budgeted_matches_unbudgeted(
        seed in any::<u64>(), nt in 1usize..10, nr in 1usize..12,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr, 8.0);
        let params = PreferenceParams::paper();
        let unlimited = TimeBudget::unlimited();
        let global = NonSharingDispatcher::new(Euclidean, params);
        let sharded = NonSharingDispatcher::new(Euclidean, params)
            .with_shard_mode(ShardMode::Sharded(ShardSpec::new(9)));
        let (p, dp) =
            sharded.passenger_optimal_budgeted(&taxis, &requests, None, None, None, &unlimited);
        prop_assert_eq!(dp, None);
        prop_assert_eq!(&p, &global.passenger_optimal(&taxis, &requests));
        let (t, dt) =
            sharded.taxi_optimal_budgeted(&taxis, &requests, None, None, None, &unlimited);
        prop_assert_eq!(dt, None);
        prop_assert_eq!(&t, &global.taxi_optimal(&taxis, &requests));
    }
}

/// Paper-scale thresholds over a wide city: the shard sweep is only
/// meaningful if the plan actually splits the frame — several occupied
/// regions, a non-trivial boundary band, and shard-local seeds covering
/// most of the final matching.
#[test]
fn wide_city_shards_meaningfully_and_exactly() {
    let rec = obs::Recorder::new();
    let _g = obs::scope(&rec);
    let (taxis, requests) = random_frame(20_170_605, 300, 260, 60.0);
    let params = PreferenceParams::paper();
    let grid = build_taxi_grid(&taxis);
    let global =
        NonSharingDispatcher::new(Euclidean, params).with_parallelism(Parallelism::fixed(4));
    let p0 = global.passenger_optimal_with_grid(&taxis, &requests, Some(&grid));
    let sharded =
        NonSharingDispatcher::new(Euclidean, params).with_parallelism(Parallelism::fixed(4));
    let spec = ShardSpec::new(16);
    let (p, stats) = sharded.passenger_optimal_sharded(&taxis, &requests, Some(&grid), &spec);
    assert_eq!(p, p0);
    assert!(stats.occupied > 1, "expected a real split, got {stats:?}");
    assert!(
        stats.boundary_taxis > 0 && stats.boundary_requests > 0,
        "a 60 km city at a 15 km radius must have a boundary band: {stats:?}"
    );
    assert!(
        stats.seed_pairs > 0,
        "shard-local matching produced no seed at all: {stats:?}"
    );
    assert_eq!(rec.counter("match.seed_divergence"), 0);
    // The sharded path agrees in dense cross-check too.
    let dense = NonSharingDispatcher::new(Euclidean, params)
        .with_candidate_mode(CandidateMode::Dense)
        .with_parallelism(Parallelism::fixed(4));
    assert_eq!(dense.passenger_optimal(&taxis, &requests), p0);
}
