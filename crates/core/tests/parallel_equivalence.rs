//! Parallel ≡ sequential: the dispatch pipeline must produce
//! bit-identical results for every thread count.
//!
//! The parallel maps in `o2o-par` preserve input order and every cell of
//! the preference/eval matrices is an independent computation, so
//! nothing — not even float rounding — may differ between
//! `Parallelism::sequential()` and `Parallelism::fixed(n)`. These tests
//! pin that contract over random frames, for the non-sharing and the
//! sharing dispatcher, with and without a precomputed pick-up distance
//! matrix.

use o2o_core::{
    NonSharingDispatcher, PickupDistances, PreferenceModel, PreferenceParams, SharingDispatcher,
};
use o2o_geo::{DistanceCache, Euclidean, Metric, Point};
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_frame(seed: u64, nt: usize, nr: usize) -> (Vec<Taxi>, Vec<Request>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let taxis = (0..nt)
        .map(|i| {
            Taxi::new(
                TaxiId(i as u64),
                Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)),
            )
        })
        .collect();
    let requests = (0..nr)
        .map(|j| {
            Request::new(
                RequestId(j as u64),
                0,
                Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)),
                Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)),
            )
        })
        .collect();
    (taxis, requests)
}

/// Field-by-field equality of two preference models (`PreferenceModel`
/// has no `PartialEq`; the instance is compared list by list).
fn assert_models_identical(a: &PreferenceModel, b: &PreferenceModel) {
    assert_eq!(a.pickup, b.pickup, "pickup matrices differ");
    assert_eq!(a.score, b.score, "score matrices differ");
    assert_eq!(a.instance.proposers(), b.instance.proposers());
    assert_eq!(a.instance.reviewers(), b.instance.reviewers());
    for j in 0..a.instance.proposers() {
        assert_eq!(
            a.instance.proposer_list(j),
            b.instance.proposer_list(j),
            "request {j} preference list differs"
        );
    }
    for i in 0..a.instance.reviewers() {
        assert_eq!(
            a.instance.reviewer_list(i),
            b.instance.reviewer_list(i),
            "taxi {i} preference list differs"
        );
    }
}

const THREAD_COUNTS: [usize; 3] = [2, 4, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn preference_model_is_thread_count_invariant(
        seed in any::<u64>(), nt in 1usize..12, nr in 1usize..16,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr);
        let params = PreferenceParams::paper().with_passenger_threshold(9.0);
        let seq = PreferenceModel::build_with(
            &Euclidean, &params, &taxis, &requests, Parallelism::sequential(), None,
        );
        for threads in THREAD_COUNTS {
            let par = PreferenceModel::build_with(
                &Euclidean, &params, &taxis, &requests, Parallelism::fixed(threads), None,
            );
            assert_models_identical(&seq, &par);
        }
        // A precomputed pick-up matrix must not change anything either.
        let pd = PickupDistances::compute(&Euclidean, &taxis, &requests, Parallelism::fixed(4));
        let with_pd = PreferenceModel::build_with(
            &Euclidean, &params, &taxis, &requests, Parallelism::fixed(4), Some(&pd),
        );
        assert_models_identical(&seq, &with_pd);
    }

    #[test]
    fn non_sharing_schedules_are_thread_count_invariant(
        seed in any::<u64>(), nt in 1usize..10, nr in 1usize..12,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr);
        let params = PreferenceParams::paper().with_passenger_threshold(9.0);
        let seq = NonSharingDispatcher::new(Euclidean, params);
        let p0 = seq.passenger_optimal(&taxis, &requests);
        let t0 = seq.taxi_optimal(&taxis, &requests);
        for threads in THREAD_COUNTS {
            let par = NonSharingDispatcher::new(Euclidean, params)
                .with_parallelism(Parallelism::fixed(threads));
            prop_assert_eq!(&par.passenger_optimal(&taxis, &requests), &p0);
            prop_assert_eq!(&par.taxi_optimal(&taxis, &requests), &t0);
        }
        let pd = PickupDistances::compute(&Euclidean, &taxis, &requests, Parallelism::fixed(4));
        prop_assert_eq!(&seq.passenger_optimal_with(&taxis, &requests, Some(&pd)), &p0);
        prop_assert_eq!(&seq.taxi_optimal_with(&taxis, &requests, Some(&pd)), &t0);
    }

    #[test]
    fn sharing_pipeline_is_thread_count_invariant(
        seed in any::<u64>(), nt in 1usize..8, nr in 2usize..12,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr);
        let params = PreferenceParams::unbounded().with_detour_threshold(2.5);
        let seq = SharingDispatcher::new(Euclidean, params);
        let groups0 = seq.feasible_groups(&requests);
        let pack0 = seq.pack(&requests);
        let p0 = seq.dispatch_passenger_optimal(&taxis, &requests);
        let t0 = seq.dispatch_taxi_optimal(&taxis, &requests);
        for threads in THREAD_COUNTS {
            let par = SharingDispatcher::new(Euclidean, params)
                .with_parallelism(Parallelism::fixed(threads));
            prop_assert_eq!(&par.feasible_groups(&requests), &groups0);
            prop_assert_eq!(&par.pack(&requests), &pack0);
            prop_assert_eq!(&par.dispatch_passenger_optimal(&taxis, &requests), &p0);
            prop_assert_eq!(&par.dispatch_taxi_optimal(&taxis, &requests), &t0);
        }
    }

    #[test]
    fn distance_cache_changes_nothing(
        seed in any::<u64>(), nt in 1usize..8, nr in 2usize..10,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr);
        let params = PreferenceParams::unbounded().with_detour_threshold(2.5);
        let plain = SharingDispatcher::new(Euclidean, params);
        let cached = SharingDispatcher::new(DistanceCache::new(Euclidean), params)
            .with_parallelism(Parallelism::fixed(4));
        prop_assert_eq!(
            &cached.dispatch_passenger_optimal(&taxis, &requests),
            &plain.dispatch_passenger_optimal(&taxis, &requests)
        );
        // The cache really deduplicated queries (same pair asked twice).
        let stats = cached.metric().stats();
        prop_assert!(stats.hits > 0 || requests.len() < 2);
    }
}

/// The matrix the simulator precomputes is exactly the metric's answers.
#[test]
fn pickup_distances_match_metric() {
    let (taxis, requests) = random_frame(99, 7, 11);
    for threads in [1, 2, 4] {
        let pd =
            PickupDistances::compute(&Euclidean, &taxis, &requests, Parallelism::fixed(threads));
        assert_eq!(pd.shape(), (11, 7));
        for (j, r) in requests.iter().enumerate() {
            for (i, t) in taxis.iter().enumerate() {
                assert_eq!(pd.get(j, i), Euclidean.distance(t.location, r.pickup));
            }
        }
    }
}
