//! Seed-sweep stress test for the sharing dispatcher's invariants.
//!
//! The in-crate proptest covers a couple dozen random instances per run;
//! this sweep drives the same invariants over a contiguous block of
//! seeds so regressions reproduce by seed value alone, independent of
//! any generator stream. Scale with `O2O_STRESS_SEEDS` (default 2000).

use o2o_core::{PreferenceParams, SharingDispatcher};
use o2o_geo::{Euclidean, Point};
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn taxi(id: u64, x: f64, y: f64) -> Taxi {
    Taxi::new(TaxiId(id), Point::new(x, y))
}

fn req(id: u64, px: f64, py: f64, dx: f64, dy: f64) -> Request {
    Request::new(RequestId(id), 0, Point::new(px, py), Point::new(dx, dy))
}

fn check_seed(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let taxis: Vec<Taxi> = (0..4)
        .map(|i| taxi(i, rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)))
        .collect();
    let requests: Vec<Request> = (0..7)
        .map(|j| {
            req(
                j,
                rng.gen_range(-4.0..4.0),
                rng.gen_range(-4.0..4.0),
                rng.gen_range(-4.0..4.0),
                rng.gen_range(-4.0..4.0),
            )
        })
        .collect();
    let d = SharingDispatcher::new(
        Euclidean,
        PreferenceParams::unbounded().with_detour_threshold(2.0),
    );
    let s = d.dispatch_passenger_optimal(&taxis, &requests);
    let mut seen_requests = std::collections::HashSet::new();
    let mut seen_taxis = std::collections::HashSet::new();
    for a in &s.assignments {
        assert!(seen_taxis.insert(a.taxi), "seed {seed}: taxi reused");
        for (&m, &detour) in a.members.iter().zip(&a.detours) {
            assert!(seen_requests.insert(m), "seed {seed}: request served twice");
            assert!(
                detour <= 2.0 + 1e-9,
                "seed {seed}: detour {detour} over budget"
            );
        }
        assert!(a.taxi_cost.is_finite(), "seed {seed}: non-finite taxi cost");
        assert!(
            a.passenger_costs.iter().all(|c| c.is_finite()),
            "seed {seed}: non-finite passenger cost"
        );
    }
    for u in &s.unserved {
        assert!(
            seen_requests.insert(*u),
            "seed {seed}: unserved request also served"
        );
    }
    assert_eq!(
        seen_requests.len(),
        requests.len(),
        "seed {seed}: lost requests"
    );
}

#[test]
fn invariants_hold_across_seed_sweep() {
    let n: u64 = std::env::var("O2O_STRESS_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2000);
    for seed in 0..n {
        check_seed(seed);
    }
    // The seed value recorded in the pre-fix proptest regression file.
    check_seed(3856736805973068774);
}
