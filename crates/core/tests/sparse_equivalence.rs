//! Sparse ≡ dense: threshold pruning must not change a single bit.
//!
//! The sparse candidate path (`SparsePreferenceModel`) enumerates only
//! taxis within `min(θ_p, θ_t + α·trip)` of each pick-up via the grid
//! index, instead of scoring the full |T|×|R| product. Every pair it
//! drops is *mutually unacceptable* — at least one side ranks the other
//! below its dummy partner — and such pairs are no-ops in deferred
//! acceptance and in BreakDispatch (Theorem 2, rural hospitals: the set
//! of matched agents is invariant across stable matchings, and an
//! unacceptable pair can never block). Costs on surviving pairs are
//! recomputed with the identical float expressions, so the dispatch
//! schedules must be **bit-identical**, at every thread count, for every
//! threshold setting.

use o2o_core::{
    build_taxi_grid, CandidateMode, NonSharingDispatcher, PreferenceParams, SparsePreferenceModel,
};
use o2o_geo::{Euclidean, Point};
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_frame(seed: u64, nt: usize, nr: usize, span: f64) -> (Vec<Taxi>, Vec<Request>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let taxis = (0..nt)
        .map(|i| {
            let mut t = Taxi::new(
                TaxiId(i as u64),
                Point::new(rng.gen_range(-span..span), rng.gen_range(-span..span)),
            );
            // Vary capacity so the seat filter participates too.
            t.seats = rng.gen_range(1..=4);
            t
        })
        .collect();
    let requests = (0..nr)
        .map(|j| {
            let mut r = Request::new(
                RequestId(j as u64),
                0,
                Point::new(rng.gen_range(-span..span), rng.gen_range(-span..span)),
                Point::new(rng.gen_range(-span..span), rng.gen_range(-span..span)),
            );
            r.passengers = rng.gen_range(1..=3);
            r
        })
        .collect();
    (taxis, requests)
}

/// Threshold settings swept by every test: the paper's calibration, a
/// tight pair that prunes aggressively, a taxi-side-only bound, and the
/// unbounded setting where the sparse path must degrade to dense.
fn param_grid() -> Vec<PreferenceParams> {
    vec![
        PreferenceParams::paper(),
        PreferenceParams::paper()
            .with_passenger_threshold(3.0)
            .with_taxi_threshold(0.5),
        PreferenceParams::unbounded().with_taxi_threshold(1.0),
        PreferenceParams::unbounded(),
    ]
}

const THREAD_COUNTS: [usize; 3] = [2, 4, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// NSTD-P and NSTD-T produce bit-identical schedules under
    /// `CandidateMode::Sparse`, across thresholds and thread counts.
    #[test]
    fn sparse_dispatch_matches_dense(
        seed in any::<u64>(), nt in 1usize..14, nr in 1usize..16,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr, 8.0);
        for params in param_grid() {
            let dense = NonSharingDispatcher::new(Euclidean, params)
                .with_candidate_mode(CandidateMode::Dense);
            let p0 = dense.passenger_optimal(&taxis, &requests);
            let t0 = dense.taxi_optimal(&taxis, &requests);
            let sparse_seq = NonSharingDispatcher::new(Euclidean, params)
                .with_candidate_mode(CandidateMode::Sparse);
            prop_assert_eq!(&sparse_seq.passenger_optimal(&taxis, &requests), &p0);
            prop_assert_eq!(&sparse_seq.taxi_optimal(&taxis, &requests), &t0);
            for threads in THREAD_COUNTS {
                let sparse = NonSharingDispatcher::new(Euclidean, params)
                    .with_candidate_mode(CandidateMode::Sparse)
                    .with_parallelism(Parallelism::fixed(threads));
                prop_assert_eq!(&sparse.passenger_optimal(&taxis, &requests), &p0);
                prop_assert_eq!(&sparse.taxi_optimal(&taxis, &requests), &t0);
            }
        }
    }

    /// A pre-built shared taxi grid (the simulator's per-frame reuse
    /// path) gives the same schedules as letting the dispatcher build
    /// its own.
    #[test]
    fn shared_grid_matches_owned_grid(
        seed in any::<u64>(), nt in 1usize..12, nr in 1usize..14,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr, 8.0);
        let grid = build_taxi_grid(&taxis);
        for params in param_grid() {
            let d = NonSharingDispatcher::new(Euclidean, params);
            let p0 = d.passenger_optimal(&taxis, &requests);
            let t0 = d.taxi_optimal(&taxis, &requests);
            prop_assert_eq!(
                &d.passenger_optimal_with_grid(&taxis, &requests, Some(&grid)), &p0
            );
            prop_assert_eq!(&d.taxi_optimal_with_grid(&taxis, &requests, Some(&grid)), &t0);
        }
    }

    /// The full stable set and the median matching — both computed via
    /// BreakDispatch on the sparse instance — agree with dense.
    #[test]
    fn sparse_stable_set_matches_dense(
        seed in any::<u64>(), nt in 1usize..8, nr in 1usize..10,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr, 6.0);
        for params in param_grid() {
            let dense = NonSharingDispatcher::new(Euclidean, params)
                .with_candidate_mode(CandidateMode::Dense);
            let sparse = NonSharingDispatcher::new(Euclidean, params)
                .with_candidate_mode(CandidateMode::Sparse);
            prop_assert_eq!(
                &sparse.all_schedules(&taxis, &requests, None),
                &dense.all_schedules(&taxis, &requests, None)
            );
            prop_assert_eq!(
                &sparse.median(&taxis, &requests, None),
                &dense.median(&taxis, &requests, None)
            );
        }
    }

    /// The sparse preference model's lists are exactly the dense lists
    /// restricted to mutually acceptable pairs, with identical costs
    /// — at every thread count.
    #[test]
    fn sparse_model_is_thread_count_invariant(
        seed in any::<u64>(), nt in 1usize..12, nr in 1usize..14,
    ) {
        let (taxis, requests) = random_frame(seed, nt, nr, 8.0);
        for params in param_grid() {
            let seq = SparsePreferenceModel::build_with(
                &Euclidean, &params, &taxis, &requests, Parallelism::sequential(), None,
            );
            for threads in THREAD_COUNTS {
                let par = SparsePreferenceModel::build_with(
                    &Euclidean, &params, &taxis, &requests,
                    Parallelism::fixed(threads), None,
                );
                prop_assert_eq!(
                    par.instance.proposers(), seq.instance.proposers()
                );
                prop_assert_eq!(
                    par.instance.reviewers(), seq.instance.reviewers()
                );
                for j in 0..seq.instance.proposers() {
                    prop_assert_eq!(
                        par.instance.proposer_list(j), seq.instance.proposer_list(j)
                    );
                }
                for i in 0..seq.instance.reviewers() {
                    prop_assert_eq!(
                        par.instance.reviewer_list(i), seq.instance.reviewer_list(i)
                    );
                }
                prop_assert_eq!(&par.pickup_costs, &seq.pickup_costs);
                prop_assert_eq!(&par.score_costs, &seq.score_costs);
            }
        }
    }
}

/// Paper-scale thresholds over a wide city: sparse prunes hard (the
/// point of the exercise) and still agrees with dense exactly.
#[test]
fn sparse_matches_dense_at_paper_thresholds_wide_city() {
    let (taxis, requests) = random_frame(2017, 60, 80, 40.0);
    let params = PreferenceParams::paper();
    let dense = NonSharingDispatcher::new(Euclidean, params)
        .with_candidate_mode(CandidateMode::Dense)
        .with_parallelism(Parallelism::fixed(4));
    let sparse = NonSharingDispatcher::new(Euclidean, params)
        .with_candidate_mode(CandidateMode::Sparse)
        .with_parallelism(Parallelism::fixed(4));
    assert_eq!(
        sparse.passenger_optimal(&taxis, &requests),
        dense.passenger_optimal(&taxis, &requests)
    );
    assert_eq!(
        sparse.taxi_optimal(&taxis, &requests),
        dense.taxi_optimal(&taxis, &requests)
    );
    // The sweep is only meaningful if pruning actually happened.
    let spd = o2o_core::SparsePickupDistances::compute(
        &Euclidean,
        &params,
        &taxis,
        &requests,
        &build_taxi_grid(&taxis),
        Parallelism::sequential(),
    );
    assert!(
        spd.candidate_count() < taxis.len() * requests.len(),
        "expected pruning at paper thresholds over a 80×80 city"
    );
}
