//! Warm ≡ cold: incremental dispatch must not change a single bit.
//!
//! The incremental NSTD path seeds deferred acceptance from the previous
//! frame's stable matching (carried across frames by `IncrementalState`).
//! Correctness never rests on the carried pairs still being valid: the
//! seeded proposal path revalidates the seed against the **current**
//! frame's preference lists (mutual acceptability, prefix justification,
//! acyclicity) and prunes whatever fails, so any frame delta — taxis
//! moving, leaving or joining the idle set, requests served, expired or
//! newly arrived — yields schedules bit-identical to a cold start, at
//! every threshold setting and thread count.

use o2o_core::{CandidateMode, IncrementalState, NonSharingDispatcher, PreferenceParams};
use o2o_geo::{Euclidean, Point};
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One rolling run: a sequence of frames where each frame is a random
/// delta of the previous one (taxi moves/leaves/joins, request
/// removals/arrivals), precomputed so every (params, threads) combination
/// replays the identical sequence.
fn rolling_frames(
    seed: u64,
    frames: usize,
    span: f64,
    churn: f64,
) -> Vec<(Vec<Taxi>, Vec<Request>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let point =
        |rng: &mut StdRng| Point::new(rng.gen_range(-span..span), rng.gen_range(-span..span));
    let nt = rng.gen_range(1..14);
    let nr = rng.gen_range(1..16);
    let mut taxis: Vec<Taxi> = (0..nt)
        .map(|i| {
            let mut t = Taxi::new(TaxiId(i as u64), point(&mut rng));
            t.seats = rng.gen_range(1..=4);
            t
        })
        .collect();
    let mut next_taxi_id = nt as u64;
    let mut next_request_id = 0u64;
    let new_request = |rng: &mut StdRng, id: &mut u64| {
        let mut r = Request::new(RequestId(*id), 0, point(rng), point(rng));
        *id += 1;
        r.passengers = rng.gen_range(1..=3);
        r
    };
    let mut requests: Vec<Request> = (0..nr)
        .map(|_| new_request(&mut rng, &mut next_request_id))
        .collect();

    let mut out = Vec::with_capacity(frames);
    for _ in 0..frames {
        out.push((taxis.clone(), requests.clone()));
        // Taxi delta: each idle taxi may move (drop-off elsewhere) or be
        // dispatched away; occasionally a taxi re-enters the idle set.
        let mut kept = Vec::with_capacity(taxis.len());
        for mut t in taxis.drain(..) {
            if rng.gen_bool(churn) {
                if rng.gen_bool(0.5) {
                    t.location = point(&mut rng);
                    kept.push(t);
                }
            } else {
                kept.push(t);
            }
        }
        if rng.gen_bool(churn.max(0.1)) {
            let mut t = Taxi::new(TaxiId(next_taxi_id), point(&mut rng));
            next_taxi_id += 1;
            t.seats = rng.gen_range(1..=4);
            kept.push(t);
        }
        taxis = kept;
        // Request delta: some are served/expired, some arrive.
        requests.retain(|_| !rng.gen_bool(churn));
        let arrivals = rng.gen_range(0..3);
        for _ in 0..arrivals {
            requests.push(new_request(&mut rng, &mut next_request_id));
        }
    }
    out
}

fn param_grid() -> Vec<PreferenceParams> {
    vec![
        PreferenceParams::paper(),
        PreferenceParams::paper()
            .with_passenger_threshold(3.0)
            .with_taxi_threshold(0.5),
        PreferenceParams::unbounded().with_taxi_threshold(1.0),
        PreferenceParams::unbounded(),
    ]
}

const THREAD_COUNTS: [usize; 3] = [2, 4, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// NSTD-P and NSTD-T warm-started across randomized frame deltas are
    /// bit-identical to cold starts, for every threshold setting and
    /// thread count.
    #[test]
    fn warm_dispatch_matches_cold_across_frame_deltas(
        seed in any::<u64>(), churn_pct in 0u32..=60,
    ) {
        let frames = rolling_frames(seed, 6, 8.0, f64::from(churn_pct) / 100.0);
        for params in param_grid() {
            let parallelisms = std::iter::once(Parallelism::sequential())
                .chain(THREAD_COUNTS.iter().map(|&t| Parallelism::fixed(t)));
            for par in parallelisms {
                let d = NonSharingDispatcher::new(Euclidean, params).with_parallelism(par);
                let mut p_state = IncrementalState::new();
                let mut t_state = IncrementalState::new();
                for (taxis, requests) in &frames {
                    let warm_p =
                        d.passenger_optimal_incremental(taxis, requests, None, &mut p_state);
                    prop_assert_eq!(
                        &warm_p, &d.passenger_optimal_with_grid(taxis, requests, None)
                    );
                    let warm_t = d.taxi_optimal_incremental(taxis, requests, None, &mut t_state);
                    prop_assert_eq!(&warm_t, &d.taxi_optimal_with_grid(taxis, requests, None));
                }
            }
        }
    }

    /// The carried state matches the schedule it was recorded from, and
    /// clearing it (a cold restart mid-run) changes nothing.
    #[test]
    fn state_tracks_schedule_and_clear_is_harmless(seed in any::<u64>()) {
        let frames = rolling_frames(seed, 5, 8.0, 0.3);
        let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::paper());
        let mut state = IncrementalState::new();
        for (k, (taxis, requests)) in frames.iter().enumerate() {
            if k == 2 {
                state.clear();
                prop_assert!(state.carried_pairs().is_empty());
            }
            let s = d.passenger_optimal_incremental(taxis, requests, None, &mut state);
            prop_assert_eq!(&s, &d.passenger_optimal_with_grid(taxis, requests, None));
            let mut expected: Vec<(RequestId, TaxiId)> = requests
                .iter()
                .filter_map(|r| s.assignment_of(r.id).taxi().map(|t| (r.id, t)))
                .collect();
            expected.sort();
            let mut carried: Vec<(RequestId, TaxiId)> = state.carried_pairs().to_vec();
            carried.sort();
            prop_assert_eq!(carried, expected);
        }
    }

    /// Dense mode as the cross-check: the warm sparse path agrees with a
    /// dense cold dispatcher frame by frame.
    #[test]
    fn warm_sparse_matches_dense_cold(seed in any::<u64>()) {
        let frames = rolling_frames(seed, 5, 8.0, 0.2);
        let params = PreferenceParams::paper();
        let sparse = NonSharingDispatcher::new(Euclidean, params);
        let dense = NonSharingDispatcher::new(Euclidean, params)
            .with_candidate_mode(CandidateMode::Dense);
        let mut state = IncrementalState::new();
        for (taxis, requests) in &frames {
            prop_assert_eq!(
                &sparse.passenger_optimal_incremental(taxis, requests, None, &mut state),
                &dense.passenger_optimal(taxis, requests)
            );
        }
    }
}

/// A stationary fleet re-seeds its full matching: the point of the warm
/// start. With no frame delta at all, every carried pair survives
/// validation, so the second frame's seed is the entire matching.
#[test]
fn stationary_frames_carry_the_full_matching() {
    let (taxis, requests) = {
        let frames = rolling_frames(0xF1F0, 1, 8.0, 0.0);
        frames.into_iter().next().unwrap()
    };
    let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::paper());
    let mut state = IncrementalState::new();
    let first = d.passenger_optimal_incremental(&taxis, &requests, None, &mut state);
    let carried_before = state.carried_pairs().to_vec();
    let second = d.passenger_optimal_incremental(&taxis, &requests, None, &mut state);
    assert_eq!(first, second);
    assert_eq!(state.carried_pairs(), &carried_before[..]);
}
