//! Trace substrate for the O2O taxi-dispatch reproduction.
//!
//! The paper evaluates on two real traces: New York (January 2016,
//! 1,445,285 requests, 700 simulated taxis) and Boston (September 2012,
//! 406,247 requests, 200 simulated taxis). Those files are not
//! redistributable, so this crate provides:
//!
//! * the data model ([`Request`], [`Taxi`], [`Trace`]),
//! * [`synthetic`] generators that reproduce each trace's documented
//!   aggregates — service area, fleet size, per-day arrival volume, morning
//!   (9am) and evening (6pm) rush-hour peaks, hotspot-concentrated pick-ups
//!   and log-normally distributed trip lengths,
//! * [`csv_io`] so the real trace files can be dropped in unchanged.
//!
//! # Examples
//!
//! ```
//! use o2o_trace::synthetic::boston_september_2012;
//!
//! // A 1%-scale Boston day: ~135 requests, 200 taxis.
//! let trace = boston_september_2012(0.01).generate(42);
//! assert_eq!(trace.taxis.len(), 200);
//! assert!(!trace.requests.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv_io;
mod diurnal;
mod request;
mod stats;
pub mod synthetic;
mod taxi;

pub use csv_io::{QuarantineReport, QuarantinedRow};
pub use diurnal::DiurnalProfile;
pub use request::{Request, RequestId};
pub use stats::TraceStats;
pub use synthetic::{boston_september_2012, nyc_january_2016, CityModel, Hotspot, TraceConfig};
pub use taxi::{Taxi, TaxiId};

use o2o_geo::BBox;

/// A complete dispatch workload: a fleet and a time-ordered request stream.
///
/// Produced by [`synthetic::TraceConfig::generate`] or loaded from CSV via
/// [`csv_io::read_requests`].
#[derive(Debug, Clone)]
pub struct Trace {
    /// Human-readable trace name (e.g. `"new-york-2016-01"`).
    pub name: String,
    /// Service area the trace covers.
    pub bbox: BBox,
    /// Requests sorted by non-decreasing [`Request::time`].
    pub requests: Vec<Request>,
    /// Initial fleet (positions at time zero).
    pub taxis: Vec<Taxi>,
}

impl Trace {
    /// Total covered timespan in seconds (0 when there are no requests).
    #[must_use]
    pub fn duration(&self) -> u64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(first), Some(last)) => last.time - first.time,
            _ => 0,
        }
    }

    /// Requests whose [`Request::time`] lies in `[start, end)` seconds.
    #[must_use]
    pub fn requests_between(&self, start: u64, end: u64) -> &[Request] {
        let lo = self.requests.partition_point(|r| r.time < start);
        let hi = self.requests.partition_point(|r| r.time < end);
        &self.requests[lo..hi]
    }

    /// Validates trace invariants: requests sorted by time, all locations
    /// finite, and ids unique.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable description of the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.requests.windows(2) {
            if w[1].time < w[0].time {
                return Err(format!(
                    "requests out of order: {:?} after {:?}",
                    w[1].id, w[0].id
                ));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for r in &self.requests {
            if !r.pickup.is_finite() || !r.dropoff.is_finite() {
                return Err(format!("request {:?} has non-finite location", r.id));
            }
            if !seen.insert(r.id) {
                return Err(format!("duplicate request id {:?}", r.id));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for t in &self.taxis {
            if !t.location.is_finite() {
                return Err(format!("taxi {:?} has non-finite location", t.id));
            }
            if !seen.insert(t.id) {
                return Err(format!("duplicate taxi id {:?}", t.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::Point;

    fn tiny_trace() -> Trace {
        Trace {
            name: "tiny".into(),
            bbox: BBox::square(Point::ORIGIN, 10.0),
            requests: vec![
                Request::new(RequestId(0), 10, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
                Request::new(RequestId(1), 70, Point::new(2.0, 0.0), Point::new(3.0, 0.0)),
                Request::new(RequestId(2), 70, Point::new(4.0, 0.0), Point::new(5.0, 0.0)),
            ],
            taxis: vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        }
    }

    #[test]
    fn duration_spans_requests() {
        assert_eq!(tiny_trace().duration(), 60);
    }

    #[test]
    fn duration_empty_is_zero() {
        let mut t = tiny_trace();
        t.requests.clear();
        assert_eq!(t.duration(), 0);
    }

    #[test]
    fn requests_between_is_half_open() {
        let t = tiny_trace();
        assert_eq!(t.requests_between(0, 60).len(), 1);
        assert_eq!(t.requests_between(60, 120).len(), 2);
        assert_eq!(t.requests_between(70, 70).len(), 0);
    }

    #[test]
    fn validate_accepts_good_trace() {
        assert!(tiny_trace().validate().is_ok());
    }

    #[test]
    fn validate_rejects_unsorted() {
        let mut t = tiny_trace();
        t.requests[0].time = 1000;
        assert!(t.validate().unwrap_err().contains("out of order"));
    }

    #[test]
    fn validate_rejects_duplicate_ids() {
        let mut t = tiny_trace();
        t.requests[1].id = t.requests[2].id;
        assert!(t.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn validate_rejects_nan_location() {
        let mut t = tiny_trace();
        t.taxis[0].location = Point::new(f64::NAN, 0.0);
        assert!(t.validate().unwrap_err().contains("non-finite"));
    }
}
