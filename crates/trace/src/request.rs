//! Passenger requests — the paper's `r_j = (r_j^s, r_j^d)`.

use o2o_geo::{Metric, Point};
use std::fmt;

/// Identifier of a passenger request.
///
/// Request ids double as the paper's *request order*: Algorithm 2's Rule 2
/// ("only requests with index ≥ j may move during a BreakDispatch") is
/// defined on this ordering, so ids should be assigned in a stable order —
/// the generators use arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A passenger request: pick-up and drop-off locations plus metadata.
///
/// Matches the paper's `r_j = (r_j^s, r_j^d)` with the additional fields
/// needed by the experiments: the request time (traces are replayed through
/// a discrete-frame simulator) and the party size (the paper's seat
/// constraint: a taxi without enough seats goes to the end of the
/// preference order).
///
/// # Examples
///
/// ```
/// use o2o_geo::{Euclidean, Point};
/// use o2o_trace::{Request, RequestId};
///
/// let r = Request::new(
///     RequestId(7),
///     3_600,                    // requested at 01:00:00
///     Point::new(0.0, 0.0),     // r^s
///     Point::new(3.0, 4.0),     // r^d
/// );
/// assert_eq!(r.trip_distance(&Euclidean), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Unique id; also the Rule-2 ordering (see [`RequestId`]).
    pub id: RequestId,
    /// Request time in seconds since the trace epoch (midnight of day 0).
    pub time: u64,
    /// Pick-up location `r^s`.
    pub pickup: Point,
    /// Drop-off location `r^d`.
    pub dropoff: Point,
    /// Party size; a taxi must have at least this many free seats.
    pub passengers: u8,
}

impl Request {
    /// Creates a single-passenger request.
    #[must_use]
    pub fn new(id: RequestId, time: u64, pickup: Point, dropoff: Point) -> Self {
        Request {
            id,
            time,
            pickup,
            dropoff,
            passengers: 1,
        }
    }

    /// Creates a request with an explicit party size.
    ///
    /// # Panics
    ///
    /// Panics if `passengers` is zero.
    #[must_use]
    pub fn with_party(
        id: RequestId,
        time: u64,
        pickup: Point,
        dropoff: Point,
        passengers: u8,
    ) -> Self {
        assert!(
            passengers > 0,
            "a request must carry at least one passenger"
        );
        Request {
            id,
            time,
            pickup,
            dropoff,
            passengers,
        }
    }

    /// The paper's `D(r^s, r^d)`: trip distance from pick-up to drop-off
    /// under the given metric.
    #[must_use]
    pub fn trip_distance<M: Metric>(&self, metric: &M) -> f64 {
        metric.distance(self.pickup, self.dropoff)
    }

    /// Hour-of-day (0–23) at which the request was issued; used by the
    /// clock-time experiment (Fig. 7).
    #[must_use]
    pub fn hour_of_day(&self) -> u8 {
        ((self.time / 3600) % 24) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::Euclidean;

    #[test]
    fn trip_distance_uses_metric() {
        let r = Request::new(RequestId(0), 0, Point::new(1.0, 1.0), Point::new(4.0, 5.0));
        assert_eq!(r.trip_distance(&Euclidean), 5.0);
    }

    #[test]
    fn hour_of_day_wraps_across_days() {
        let r = Request::new(RequestId(0), 25 * 3600 + 120, Point::ORIGIN, Point::ORIGIN);
        assert_eq!(r.hour_of_day(), 1);
    }

    #[test]
    fn new_is_single_passenger() {
        let r = Request::new(RequestId(1), 0, Point::ORIGIN, Point::ORIGIN);
        assert_eq!(r.passengers, 1);
    }

    #[test]
    fn with_party_sets_size() {
        let r = Request::with_party(RequestId(1), 0, Point::ORIGIN, Point::ORIGIN, 3);
        assert_eq!(r.passengers, 3);
    }

    #[test]
    #[should_panic(expected = "at least one passenger")]
    fn zero_party_panics() {
        let _ = Request::with_party(RequestId(1), 0, Point::ORIGIN, Point::ORIGIN, 0);
    }

    #[test]
    fn display_of_id() {
        assert_eq!(RequestId(12).to_string(), "r12");
    }
}
