//! Descriptive statistics of a trace — useful for validating synthetic
//! generators against a real trace's documented aggregates before running
//! experiments on either.

use crate::Trace;
use o2o_geo::Euclidean;

/// Summary statistics of a [`Trace`].
///
/// # Examples
///
/// ```
/// use o2o_trace::{boston_september_2012, TraceStats};
///
/// let trace = boston_september_2012(0.02).generate(1);
/// let stats = TraceStats::of(&trace);
/// assert_eq!(stats.requests, trace.requests.len());
/// assert!(stats.mean_trip_km > 0.5);
/// // The generator's demand curve peaks at the commuter rushes; which
/// // one wins at a small scale is sampling noise.
/// assert!([8, 9, 18].contains(&stats.peak_hour));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: usize,
    /// Number of taxis.
    pub taxis: usize,
    /// Covered timespan in hours.
    pub span_hours: f64,
    /// Mean straight-line trip length, km.
    pub mean_trip_km: f64,
    /// Median straight-line trip length, km.
    pub median_trip_km: f64,
    /// 95th-percentile trip length, km.
    pub p95_trip_km: f64,
    /// Requests per hour of day (0–23).
    pub hourly_counts: [usize; 24],
    /// Hour of day with the most requests.
    pub peak_hour: usize,
    /// Peak-hour count divided by the mean hourly count (≥ 1).
    pub peak_to_mean: f64,
    /// Mean requests per day per taxi — a crude utilisation indicator.
    pub requests_per_taxi_day: f64,
}

impl TraceStats {
    /// Computes the statistics (trip lengths measured straight-line).
    #[must_use]
    pub fn of(trace: &Trace) -> Self {
        let requests = trace.requests.len();
        let taxis = trace.taxis.len();
        let mut trips: Vec<f64> = trace
            .requests
            .iter()
            .map(|r| r.trip_distance(&Euclidean))
            .collect();
        trips.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean_trip_km = if trips.is_empty() {
            0.0
        } else {
            trips.iter().sum::<f64>() / trips.len() as f64
        };
        let pick = |q: f64| -> f64 {
            if trips.is_empty() {
                0.0
            } else {
                trips[((trips.len() - 1) as f64 * q) as usize]
            }
        };
        let mut hourly_counts = [0usize; 24];
        for r in &trace.requests {
            hourly_counts[r.hour_of_day() as usize] += 1;
        }
        let peak_hour = hourly_counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(h, _)| h)
            .unwrap_or(0);
        let mean_hourly = requests as f64 / 24.0;
        let peak_to_mean = if mean_hourly > 0.0 {
            hourly_counts[peak_hour] as f64 / mean_hourly
        } else {
            0.0
        };
        let span_hours = trace.duration() as f64 / 3600.0;
        let days = (span_hours / 24.0).max(1.0 / 24.0).ceil();
        let requests_per_taxi_day = if taxis == 0 {
            0.0
        } else {
            requests as f64 / taxis as f64 / days
        };
        TraceStats {
            requests,
            taxis,
            span_hours,
            mean_trip_km,
            median_trip_km: pick(0.5),
            p95_trip_km: pick(0.95),
            hourly_counts,
            peak_hour,
            peak_to_mean,
            requests_per_taxi_day,
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} requests / {} taxis over {:.1} h ({:.1} req/taxi/day)",
            self.requests, self.taxis, self.span_hours, self.requests_per_taxi_day
        )?;
        writeln!(
            f,
            "trips: mean {:.2} km, median {:.2} km, p95 {:.2} km",
            self.mean_trip_km, self.median_trip_km, self.p95_trip_km
        )?;
        write!(
            f,
            "peak hour {}h at {:.2}× the hourly mean",
            self.peak_hour, self.peak_to_mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::boston_september_2012;
    use crate::{Request, RequestId, Taxi, TaxiId};
    use o2o_geo::{BBox, Point};

    #[test]
    fn stats_of_synthetic_trace_match_generator() {
        let trace = boston_september_2012(0.2).generate(4);
        let s = TraceStats::of(&trace);
        assert_eq!(s.requests, trace.requests.len());
        assert_eq!(s.taxis, 200);
        // Generator calibration: median trip ≈ 1.4 km (log-normal median).
        assert!((s.median_trip_km - 1.4).abs() < 0.3, "{}", s.median_trip_km);
        // Commuter profile: one of the rush hours peaks (9am and 6pm have
        // near-equal weight, so sampling noise may pick either).
        assert!(s.peak_hour == 18 || s.peak_hour == 9, "{}", s.peak_hour);
        assert!(s.peak_to_mean > 1.5);
        assert!(s.p95_trip_km >= s.median_trip_km);
    }

    #[test]
    fn empty_trace_is_safe() {
        let trace = Trace {
            name: "empty".into(),
            bbox: BBox::square(Point::ORIGIN, 1.0),
            requests: vec![],
            taxis: vec![],
        };
        let s = TraceStats::of(&trace);
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_trip_km, 0.0);
        assert_eq!(s.requests_per_taxi_day, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let trace = Trace {
            name: "one".into(),
            bbox: BBox::square(Point::ORIGIN, 10.0),
            requests: vec![Request::new(
                RequestId(0),
                3 * 3600,
                Point::new(0.0, 0.0),
                Point::new(3.0, 4.0),
            )],
            taxis: vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        };
        let text = TraceStats::of(&trace).to_string();
        assert!(text.contains("1 requests"), "{text}");
        assert!(text.contains("5.00 km"), "{text}");
        assert!(text.contains("peak hour 3h"), "{text}");
    }
}
