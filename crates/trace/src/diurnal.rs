//! Diurnal (time-of-day) demand profiles.
//!
//! The paper's Fig. 7 shows pronounced demand peaks at 9am and 6pm ("when
//! people travel between home and work place"). This module models the
//! hourly arrival-rate shape as a 24-bin histogram from which request times
//! are sampled by inverse-CDF.

use rand::Rng;

/// A 24-hour arrival-rate profile.
///
/// The profile stores a relative weight per hour; sampling draws a uniform
/// variate and inverts the cumulative distribution, then places the request
/// uniformly inside the chosen hour, so any number of requests reproduces
/// the same hourly shape.
///
/// # Examples
///
/// ```
/// use o2o_trace::DiurnalProfile;
/// use rand::SeedableRng;
///
/// let profile = DiurnalProfile::commuter();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let t = profile.sample_second(&mut rng);
/// assert!(t < 86_400);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    weights: [f64; 24],
    cumulative: [f64; 24],
}

impl DiurnalProfile {
    /// Builds a profile from 24 non-negative hourly weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative/non-finite or all weights are zero.
    #[must_use]
    pub fn new(weights: [f64; 24]) -> Self {
        let mut cumulative = [0.0; 24];
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "hour {i} has invalid weight {w}");
            acc += w;
            cumulative[i] = acc;
        }
        assert!(acc > 0.0, "at least one hour must have positive weight");
        for c in &mut cumulative {
            *c /= acc;
        }
        DiurnalProfile {
            weights,
            cumulative,
        }
    }

    /// Flat demand: every hour equally likely.
    #[must_use]
    pub fn uniform() -> Self {
        DiurnalProfile::new([1.0; 24])
    }

    /// Commuter-city demand with 9am and 6pm rush-hour peaks, a lunchtime
    /// shoulder, an evening tail and a deep overnight trough — the shape of
    /// the paper's Fig. 7 workload.
    #[must_use]
    pub fn commuter() -> Self {
        DiurnalProfile::new([
            0.55, 0.35, 0.25, 0.20, 0.25, 0.45, // 00–05: overnight trough
            0.90, 1.60, 2.60, 3.00, 2.10, 1.60, // 06–11: morning ramp, 9am peak
            1.70, 1.60, 1.50, 1.60, 1.90, 2.50, // 12–17: midday shoulder, build-up
            3.10, 2.50, 1.90, 1.60, 1.30, 0.90, // 18–23: 6pm peak, evening tail
        ])
    }

    /// Relative weight of hour `h` (0–23), normalised so the weights sum
    /// to 1.
    ///
    /// # Panics
    ///
    /// Panics if `h >= 24`.
    #[must_use]
    pub fn weight(&self, h: usize) -> f64 {
        assert!(h < 24, "hour out of range: {h}");
        let total: f64 = self.weights.iter().sum();
        self.weights[h] / total
    }

    /// The hour (0–23) with the largest weight; ties break to the earliest.
    #[must_use]
    pub fn peak_hour(&self) -> usize {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Samples a second-of-day in `[0, 86_400)` following the profile.
    pub fn sample_second<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let hour = self.cumulative.partition_point(|&c| c < u).min(23);
        let within: u64 = rng.gen_range(0..3600);
        hour as u64 * 3600 + within
    }
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        DiurnalProfile::commuter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn commuter_peaks_morning_and_evening() {
        let p = DiurnalProfile::commuter();
        assert_eq!(p.peak_hour(), 18); // 6pm is the global peak
                                       // 9am is the morning peak
        assert!(p.weight(9) > p.weight(7));
        assert!(p.weight(9) > p.weight(11));
        // overnight trough
        assert!(p.weight(3) < p.weight(9) / 5.0);
    }

    #[test]
    fn weights_normalise() {
        let p = DiurnalProfile::commuter();
        let total: f64 = (0..24).map(|h| p.weight(h)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_reproduces_shape() {
        let p = DiurnalProfile::commuter();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 24];
        let n = 200_000;
        for _ in 0..n {
            let s = p.sample_second(&mut rng);
            assert!(s < 86_400);
            counts[(s / 3600) as usize] += 1;
        }
        for (h, &count) in counts.iter().enumerate() {
            let expected = p.weight(h);
            let got = count as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "hour {h}: got {got:.4}, expected {expected:.4}"
            );
        }
    }

    #[test]
    fn uniform_is_flat() {
        let p = DiurnalProfile::uniform();
        for h in 0..24 {
            assert!((p.weight(h) - 1.0 / 24.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        let mut w = [1.0; 24];
        w[5] = -1.0;
        let _ = DiurnalProfile::new(w);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_panics() {
        let _ = DiurnalProfile::new([0.0; 24]);
    }
}
