//! Synthetic city traces calibrated to the paper's two real workloads.
//!
//! The real NYC (January 2016) and Boston (September 2012) trace files are
//! not redistributable, so the experiments run on synthetic traces that
//! reproduce each trace's documented aggregates:
//!
//! * **service area** — the NYC trace "includes the passenger requests in
//!   the New York state", i.e. a much larger area than Boston; we use
//!   ~60×60 km vs ~15×15 km,
//! * **volume** — 1,445,285 requests / 31 days ≈ 46,600 per day (NYC) and
//!   406,247 / 30 ≈ 13,500 per day (Boston),
//! * **fleet** — 700 and 200 taxis respectively, initially placed by a
//!   two-dimensional normal distribution around the city centre (as in the
//!   paper's setup),
//! * **time-of-day shape** — commuter peaks at 9am and 6pm
//!   ([`DiurnalProfile::commuter`]),
//! * **spatial shape** — pick-ups drawn from a hotspot Gaussian mixture
//!   plus a uniform background; drop-offs at a log-normally distributed
//!   trip length, direction biased towards the centre in the morning and
//!   away in the evening.
//!
//! The absolute numbers of any experiment therefore differ from the paper,
//! but the comparative *shape* (who wins, where, by how much) is preserved;
//! see `DESIGN.md` §3.

use crate::{DiurnalProfile, Request, RequestId, Taxi, TaxiId, Trace};
use o2o_geo::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Gaussian demand hotspot: an isotropic normal bump of pick-up density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// Centre of the hotspot.
    pub center: Point,
    /// Standard deviation in kilometres.
    pub sigma: f64,
    /// Relative weight against other hotspots and the uniform background.
    pub weight: f64,
}

impl Hotspot {
    /// Creates a hotspot.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` or `weight` is negative or non-finite.
    #[must_use]
    pub fn new(center: Point, sigma: f64, weight: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "invalid sigma {sigma}");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "invalid weight {weight}"
        );
        Hotspot {
            center,
            sigma,
            weight,
        }
    }
}

/// Spatial demand model of a city: a bounding box, demand hotspots and a
/// trip-length distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct CityModel {
    /// Service area.
    pub bbox: BBox,
    /// Demand hotspots (may be empty: purely uniform demand).
    pub hotspots: Vec<Hotspot>,
    /// Weight of the uniform background against the hotspots.
    pub uniform_weight: f64,
    /// Median trip length in kilometres (log-normal median).
    pub median_trip_km: f64,
    /// Log-space standard deviation of the trip length.
    pub trip_sigma: f64,
    /// Standard deviation (km) of the initial taxi placement around the
    /// centre — the paper places taxis by "a two-dimensional normal
    /// distribution from the center of the city".
    pub fleet_sigma: f64,
}

impl CityModel {
    /// A featureless square city: uniform demand, useful for unit tests.
    #[must_use]
    pub fn uniform(side_km: f64) -> Self {
        CityModel {
            bbox: BBox::square(Point::ORIGIN, side_km),
            hotspots: Vec::new(),
            uniform_weight: 1.0,
            median_trip_km: side_km / 6.0,
            trip_sigma: 0.5,
            fleet_sigma: side_km / 4.0,
        }
    }

    /// Samples a pick-up location.
    pub fn sample_pickup<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let total: f64 = self.uniform_weight + self.hotspots.iter().map(|h| h.weight).sum::<f64>();
        let mut u = rng.gen::<f64>() * total;
        for h in &self.hotspots {
            if u < h.weight {
                let p = Point::new(
                    h.center.x + sample_normal(rng) * h.sigma,
                    h.center.y + sample_normal(rng) * h.sigma,
                );
                return self.bbox.clamp(p);
            }
            u -= h.weight;
        }
        Point::new(
            rng.gen_range(self.bbox.min().x..=self.bbox.max().x),
            rng.gen_range(self.bbox.min().y..=self.bbox.max().y),
        )
    }

    /// Samples a trip length in kilometres (log-normal).
    pub fn sample_trip_length<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = sample_normal(rng);
        (self.median_trip_km.ln() + self.trip_sigma * z).exp()
    }

    /// Samples a drop-off for a pick-up at `pickup` issued in hour `hour`.
    ///
    /// Trip direction is uniform, except that morning trips (6–10am) are
    /// biased towards the city centre and evening trips (4–8pm) away from
    /// it, reproducing commuter flows.
    pub fn sample_dropoff<R: Rng + ?Sized>(&self, rng: &mut R, pickup: Point, hour: u8) -> Point {
        let length = self.sample_trip_length(rng);
        let center = self.bbox.center();
        let to_center = center - pickup;
        let biased = match hour {
            6..=10 => rng.gen_bool(0.6),
            16..=20 => rng.gen_bool(0.6),
            _ => false,
        };
        let angle = if biased && to_center.norm() > 1e-9 {
            let base = to_center.y.atan2(to_center.x);
            let base = if (16..=20).contains(&hour) {
                base + std::f64::consts::PI // outward in the evening
            } else {
                base
            };
            base + (rng.gen::<f64>() - 0.5) * std::f64::consts::FRAC_PI_2
        } else {
            rng.gen::<f64>() * std::f64::consts::TAU
        };
        let raw = Point::new(
            pickup.x + length * angle.cos(),
            pickup.y + length * angle.sin(),
        );
        self.bbox.clamp(raw)
    }
}

/// Standard normal variate via Box–Muller.
fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Configuration for generating a synthetic [`Trace`].
///
/// Construct via the presets [`nyc_january_2016`] / [`boston_september_2012`]
/// or [`TraceConfig::new`], adjust with the builder methods, then call
/// [`TraceConfig::generate`].
///
/// # Examples
///
/// ```
/// use o2o_trace::nyc_january_2016;
///
/// let trace = nyc_january_2016(0.002).days(1).generate(1);
/// assert_eq!(trace.taxis.len(), 700);
/// assert!(trace.requests.len() > 50);
/// ```
#[derive(Debug, Clone)]
pub struct TraceConfig {
    name: String,
    city: CityModel,
    taxis: usize,
    requests_per_day: u64,
    days: u32,
    scale: f64,
    profile: DiurnalProfile,
}

impl TraceConfig {
    /// Creates a config over `city` with flat defaults: 100 taxis, 10,000
    /// requests/day, one day, commuter diurnal profile, scale 1.
    #[must_use]
    pub fn new(name: impl Into<String>, city: CityModel) -> Self {
        TraceConfig {
            name: name.into(),
            city,
            taxis: 100,
            requests_per_day: 10_000,
            days: 1,
            scale: 1.0,
            profile: DiurnalProfile::commuter(),
        }
    }

    /// Sets the fleet size.
    #[must_use]
    pub fn taxis(mut self, n: usize) -> Self {
        self.taxis = n;
        self
    }

    /// Sets the unscaled number of requests per simulated day.
    #[must_use]
    pub fn requests_per_day(mut self, n: u64) -> Self {
        self.requests_per_day = n;
        self
    }

    /// Sets the number of simulated days.
    #[must_use]
    pub fn days(mut self, d: u32) -> Self {
        self.days = d.max(1);
        self
    }

    /// Scales the request volume (taxis are *not* scaled — the paper varies
    /// them separately in Fig. 6). Use e.g. `0.01` for quick tests.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or non-finite.
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "scale must be non-negative and finite, got {scale}"
        );
        self.scale = scale;
        self
    }

    /// Replaces the diurnal profile.
    #[must_use]
    pub fn profile(mut self, profile: DiurnalProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The spatial model used by the config.
    #[must_use]
    pub fn city(&self) -> &CityModel {
        &self.city
    }

    /// The number of requests [`TraceConfig::generate`] will produce.
    #[must_use]
    pub fn request_count(&self) -> usize {
        ((self.requests_per_day * self.days as u64) as f64 * self.scale).round() as usize
    }

    /// Generates the trace deterministically from `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.request_count();
        let mut times: Vec<u64> = (0..n)
            .map(|_| {
                let day = rng.gen_range(0..self.days) as u64;
                day * 86_400 + self.profile.sample_second(&mut rng)
            })
            .collect();
        times.sort_unstable();
        let requests: Vec<Request> = times
            .into_iter()
            .enumerate()
            .map(|(i, time)| {
                let pickup = self.city.sample_pickup(&mut rng);
                let hour = ((time / 3600) % 24) as u8;
                let dropoff = self.city.sample_dropoff(&mut rng, pickup, hour);
                let passengers = match rng.gen_range(0..10) {
                    0..=6 => 1,
                    7..=8 => 2,
                    _ => 3,
                };
                Request {
                    id: RequestId(i as u64),
                    time,
                    pickup,
                    dropoff,
                    passengers,
                }
            })
            .collect();
        let center = self.city.bbox.center();
        let taxis = (0..self.taxis)
            .map(|i| {
                let p = Point::new(
                    center.x + sample_normal(&mut rng) * self.city.fleet_sigma,
                    center.y + sample_normal(&mut rng) * self.city.fleet_sigma,
                );
                Taxi::new(TaxiId(i as u64), self.city.bbox.clamp(p))
            })
            .collect();
        Trace {
            name: self.name.clone(),
            bbox: self.city.bbox,
            requests,
            taxis,
        }
    }
}

/// The New York trace model: state-scale ~60×60 km area, Manhattan-like
/// dense core plus satellite hotspots, 700 taxis, ≈46,600 requests per day
/// (1,445,285 over January 2016).
///
/// `scale` multiplies the request volume only; `1.0` reproduces a full
/// trace day.
#[must_use]
pub fn nyc_january_2016(scale: f64) -> TraceConfig {
    let bbox = BBox::square(Point::ORIGIN, 60.0);
    let city = CityModel {
        bbox,
        hotspots: vec![
            // Dense Manhattan-like core.
            Hotspot::new(Point::new(0.0, 0.0), 2.0, 6.0),
            Hotspot::new(Point::new(1.5, 4.0), 1.6, 3.0),
            // Outer-borough centres.
            Hotspot::new(Point::new(8.0, -5.0), 2.5, 1.5),
            Hotspot::new(Point::new(-7.0, 3.0), 2.2, 1.0),
            // Airport-like remote generator.
            Hotspot::new(Point::new(14.0, -12.0), 1.2, 0.6),
        ],
        uniform_weight: 0.2,
        median_trip_km: 1.6,
        trip_sigma: 0.55,
        fleet_sigma: 3.0,
    };
    TraceConfig::new("new-york-2016-01", city)
        .taxis(700)
        .requests_per_day(46_622)
        .scale(scale)
}

/// The Boston trace model: compact ~15×15 km area, two hotspots, 200
/// taxis, ≈13,500 requests per day (406,247 over September 2012).
#[must_use]
pub fn boston_september_2012(scale: f64) -> TraceConfig {
    let bbox = BBox::square(Point::ORIGIN, 15.0);
    let city = CityModel {
        bbox,
        hotspots: vec![
            Hotspot::new(Point::new(0.0, 0.5), 1.5, 4.0),
            Hotspot::new(Point::new(-2.5, -1.5), 1.2, 2.0),
            Hotspot::new(Point::new(3.0, 2.0), 1.5, 1.2),
        ],
        uniform_weight: 0.25,
        median_trip_km: 1.4,
        trip_sigma: 0.5,
        fleet_sigma: 1.5,
    };
    TraceConfig::new("boston-2012-09", city)
        .taxis(200)
        .requests_per_day(13_542)
        .scale(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = boston_september_2012(0.01).generate(9);
        let b = boston_september_2012(0.01).generate(9);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.taxis, b.taxis);
    }

    #[test]
    fn different_seeds_differ() {
        let a = boston_september_2012(0.01).generate(1);
        let b = boston_september_2012(0.01).generate(2);
        assert_ne!(a.requests, b.requests);
    }

    #[test]
    fn generated_trace_validates() {
        let t = nyc_january_2016(0.005).generate(3);
        t.validate().expect("synthetic trace must be valid");
    }

    #[test]
    fn request_ids_follow_arrival_order() {
        let t = boston_september_2012(0.02).generate(5);
        for (i, r) in t.requests.iter().enumerate() {
            assert_eq!(r.id, RequestId(i as u64));
        }
        for w in t.requests.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn presets_match_paper_fleet_sizes() {
        assert_eq!(nyc_january_2016(0.001).generate(1).taxis.len(), 700);
        assert_eq!(boston_september_2012(0.001).generate(1).taxis.len(), 200);
    }

    #[test]
    fn request_volume_scales() {
        let full = nyc_january_2016(1.0);
        assert_eq!(full.request_count(), 46_622);
        let tiny = nyc_january_2016(0.01);
        assert_eq!(tiny.request_count(), 466);
        let week = boston_september_2012(1.0).days(7);
        assert_eq!(week.request_count(), 13_542 * 7);
    }

    #[test]
    fn all_locations_inside_bbox() {
        let t = boston_september_2012(0.02).generate(11);
        for r in &t.requests {
            assert!(t.bbox.contains(r.pickup), "pickup outside: {}", r.pickup);
            assert!(t.bbox.contains(r.dropoff), "dropoff outside: {}", r.dropoff);
        }
        for taxi in &t.taxis {
            assert!(t.bbox.contains(taxi.location));
        }
    }

    #[test]
    fn rush_hours_have_more_requests_than_night() {
        let t = boston_september_2012(0.5).generate(13);
        let mut by_hour = [0usize; 24];
        for r in &t.requests {
            by_hour[r.hour_of_day() as usize] += 1;
        }
        assert!(by_hour[9] > 2 * by_hour[3], "9am should dwarf 3am");
        assert!(by_hour[18] > 2 * by_hour[3], "6pm should dwarf 3am");
    }

    #[test]
    fn nyc_area_is_much_larger_than_boston() {
        let nyc = nyc_january_2016(0.001).generate(1);
        let bos = boston_september_2012(0.001).generate(1);
        assert!(nyc.bbox.area() > 10.0 * bos.bbox.area());
    }

    #[test]
    fn trip_lengths_are_lognormal_ish() {
        let cfg = boston_september_2012(0.2);
        let t = cfg.generate(17);
        let lens: Vec<f64> = t
            .requests
            .iter()
            .map(|r| r.pickup.euclidean(r.dropoff))
            .collect();
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        // Log-normal with median 1.4 and sigma 0.5 has mean ≈ 1.59; clamping
        // to the bbox only shortens trips.
        assert!(mean > 0.8 && mean < 2.8, "mean trip {mean}");
        assert!(lens.iter().all(|&l| l >= 0.0));
    }

    #[test]
    fn uniform_city_has_no_hotspots() {
        let c = CityModel::uniform(10.0);
        assert!(c.hotspots.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(c.bbox.contains(c.sample_pickup(&mut rng)));
        }
    }

    #[test]
    fn sample_normal_is_centred() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| sample_normal(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "invalid sigma")]
    fn hotspot_rejects_bad_sigma() {
        let _ = Hotspot::new(Point::ORIGIN, f64::NAN, 1.0);
    }
}
