//! Taxis — the paper's `t_i` (a taxi and its current location).

use o2o_geo::Point;
use std::fmt;

/// Identifier of a taxi.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TaxiId(pub u64);

impl fmt::Display for TaxiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A taxi: id, current location and seat capacity.
///
/// The paper's `t_i` "denotes the i-th idle taxi and its location in the
/// current frame"; seats back the seat-constraint rule (a taxi without
/// enough free seats is ranked after the dummy entry).
///
/// # Examples
///
/// ```
/// use o2o_geo::Point;
/// use o2o_trace::{Taxi, TaxiId};
///
/// let t = Taxi::new(TaxiId(3), Point::new(1.0, 2.0));
/// assert_eq!(t.seats, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Taxi {
    /// Unique id.
    pub id: TaxiId,
    /// Current location.
    pub location: Point,
    /// Passenger seat capacity (default 4).
    pub seats: u8,
}

impl Taxi {
    /// Seat capacity used when none is specified.
    pub const DEFAULT_SEATS: u8 = 4;

    /// Creates a taxi with the default four seats.
    #[must_use]
    pub fn new(id: TaxiId, location: Point) -> Self {
        Taxi {
            id,
            location,
            seats: Self::DEFAULT_SEATS,
        }
    }

    /// Creates a taxi with an explicit seat capacity.
    ///
    /// # Panics
    ///
    /// Panics if `seats` is zero.
    #[must_use]
    pub fn with_seats(id: TaxiId, location: Point, seats: u8) -> Self {
        assert!(seats > 0, "a taxi must have at least one seat");
        Taxi {
            id,
            location,
            seats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seats_is_four() {
        assert_eq!(Taxi::new(TaxiId(0), Point::ORIGIN).seats, 4);
    }

    #[test]
    fn with_seats_overrides() {
        assert_eq!(Taxi::with_seats(TaxiId(0), Point::ORIGIN, 6).seats, 6);
    }

    #[test]
    #[should_panic(expected = "at least one seat")]
    fn zero_seats_panics() {
        let _ = Taxi::with_seats(TaxiId(0), Point::ORIGIN, 0);
    }

    #[test]
    fn display_of_id() {
        assert_eq!(TaxiId(5).to_string(), "t5");
    }
}
