//! CSV serialization so real trace files can replace the synthetic ones.
//!
//! The format is a minimal common denominator of the NYC TLC and Boston
//! exports after coordinate projection:
//!
//! ```csv
//! id,time,pickup_x,pickup_y,dropoff_x,dropoff_y,passengers
//! 0,34980,0.52,-1.25,3.80,0.75,1
//! ```
//!
//! `time` is in seconds since the trace epoch and coordinates are in
//! kilometres (project lon/lat with any equirectangular approximation
//! before import — dispatching only consumes relative distances).

use crate::{Request, RequestId};
use o2o_geo::Point;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from reading a trace CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

const HEADER: &str = "id,time,pickup_x,pickup_y,dropoff_x,dropoff_y,passengers";

/// Writes `requests` in the trace CSV format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_requests<W: Write>(mut w: W, requests: &[Request]) -> std::io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for r in requests {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.id.0, r.time, r.pickup.x, r.pickup.y, r.dropoff.x, r.dropoff.y, r.passengers
        )?;
    }
    Ok(())
}

/// Reads requests from the trace CSV format. A header line is optional.
///
/// Rows need not be time-sorted in the file; the result is sorted by
/// `(time, id)`.
///
/// # Errors
///
/// Returns [`CsvError::Parse`] on a malformed row and [`CsvError::Io`] on
/// read failure.
pub fn read_requests<R: Read>(r: R) -> Result<Vec<Request>, CsvError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || (idx == 0 && trimmed.starts_with("id,")) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 7 {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected 7 fields, got {}", fields.len()),
            });
        }
        let parse_f = |s: &str, name: &str| -> Result<f64, CsvError> {
            s.trim().parse::<f64>().map_err(|e| CsvError::Parse {
                line: line_no,
                message: format!("bad {name} {s:?}: {e}"),
            })
        };
        let id = fields[0]
            .trim()
            .parse::<u64>()
            .map_err(|e| CsvError::Parse {
                line: line_no,
                message: format!("bad id {:?}: {e}", fields[0]),
            })?;
        let time = fields[1]
            .trim()
            .parse::<u64>()
            .map_err(|e| CsvError::Parse {
                line: line_no,
                message: format!("bad time {:?}: {e}", fields[1]),
            })?;
        let px = parse_f(fields[2], "pickup_x")?;
        let py = parse_f(fields[3], "pickup_y")?;
        let dx = parse_f(fields[4], "dropoff_x")?;
        let dy = parse_f(fields[5], "dropoff_y")?;
        let passengers = fields[6]
            .trim()
            .parse::<u8>()
            .map_err(|e| CsvError::Parse {
                line: line_no,
                message: format!("bad passengers {:?}: {e}", fields[6]),
            })?;
        if passengers == 0 {
            return Err(CsvError::Parse {
                line: line_no,
                message: "passengers must be at least 1".into(),
            });
        }
        if !(px.is_finite() && py.is_finite() && dx.is_finite() && dy.is_finite()) {
            return Err(CsvError::Parse {
                line: line_no,
                message: "non-finite coordinate".into(),
            });
        }
        out.push(Request {
            id: RequestId(id),
            time,
            pickup: Point::new(px, py),
            dropoff: Point::new(dx, dy),
            passengers,
        });
    }
    out.sort_by_key(|r| (r.time, r.id));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::boston_september_2012;

    #[test]
    fn round_trip_preserves_requests() {
        let trace = boston_september_2012(0.005).generate(21);
        let mut buf = Vec::new();
        write_requests(&mut buf, &trace.requests).unwrap();
        let back = read_requests(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.requests.len());
        for (a, b) in back.iter().zip(trace.requests.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.time, b.time);
            assert_eq!(a.passengers, b.passengers);
            assert!((a.pickup.x - b.pickup.x).abs() < 1e-9);
            assert!((a.dropoff.y - b.dropoff.y).abs() < 1e-9);
        }
    }

    #[test]
    fn header_is_optional() {
        let csv = "5,100,0.0,0.0,1.0,1.0,2\n";
        let reqs = read_requests(csv.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].id, RequestId(5));
        assert_eq!(reqs[0].passengers, 2);
    }

    #[test]
    fn unsorted_rows_are_sorted() {
        let csv = "1,200,0,0,1,1,1\n0,100,0,0,1,1,1\n";
        let reqs = read_requests(csv.as_bytes()).unwrap();
        assert_eq!(reqs[0].id, RequestId(0));
        assert_eq!(reqs[1].id, RequestId(1));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = format!("{HEADER}\n\n0,1,0,0,1,1,1\n\n");
        assert_eq!(read_requests(csv.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn wrong_field_count_errors() {
        let err = read_requests("0,1,2,3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 7 fields"));
    }

    #[test]
    fn bad_number_errors_with_line() {
        let err = read_requests("0,1,zzz,0,1,1,1\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("pickup_x"), "{msg}");
    }

    #[test]
    fn zero_passengers_rejected() {
        let err = read_requests("0,1,0,0,1,1,0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn non_finite_rejected() {
        let err = read_requests("0,1,inf,0,1,1,1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }
}
