//! CSV serialization so real trace files can replace the synthetic ones.
//!
//! The format is a minimal common denominator of the NYC TLC and Boston
//! exports after coordinate projection:
//!
//! ```csv
//! id,time,pickup_x,pickup_y,dropoff_x,dropoff_y,passengers
//! 0,34980,0.52,-1.25,3.80,0.75,1
//! ```
//!
//! `time` is in seconds since the trace epoch and coordinates are in
//! kilometres (project lon/lat with any equirectangular approximation
//! before import — dispatching only consumes relative distances).

use crate::{Request, RequestId};
use o2o_geo::Point;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from reading a trace CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// One rejected input row: where it was and why it was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 1-based line number in the input.
    pub line: usize,
    /// Human-readable rejection reason.
    pub reason: String,
}

/// Rows set aside by [`read_requests_quarantined`] instead of aborting
/// the import.
///
/// Real trace exports routinely contain a handful of corrupt rows
/// (truncated lines, sensor NaNs, duplicated records from re-uploads).
/// The quarantine keeps the import total-failure-free while preserving
/// an auditable record of everything that was dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Every rejected row, in input order.
    pub rows: Vec<QuarantinedRow>,
}

impl QuarantineReport {
    /// Number of quarantined rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no row was quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows rejected because their id was already seen.
    #[must_use]
    pub fn duplicates(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.reason.contains("duplicate"))
            .count()
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} row(s) quarantined", self.rows.len())?;
        for r in &self.rows {
            writeln!(f, "  line {}: {}", r.line, r.reason)?;
        }
        Ok(())
    }
}

const HEADER: &str = "id,time,pickup_x,pickup_y,dropoff_x,dropoff_y,passengers";

/// Parses one non-empty, non-header CSV row into a [`Request`].
fn parse_row(line_no: usize, trimmed: &str) -> Result<Request, CsvError> {
    let fields: Vec<&str> = trimmed.split(',').collect();
    if fields.len() != 7 {
        return Err(CsvError::Parse {
            line: line_no,
            message: format!("expected 7 fields, got {}", fields.len()),
        });
    }
    let parse_f = |s: &str, name: &str| -> Result<f64, CsvError> {
        s.trim().parse::<f64>().map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad {name} {s:?}: {e}"),
        })
    };
    let id = fields[0]
        .trim()
        .parse::<u64>()
        .map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad id {:?}: {e}", fields[0]),
        })?;
    let time = fields[1]
        .trim()
        .parse::<u64>()
        .map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad time {:?}: {e}", fields[1]),
        })?;
    let px = parse_f(fields[2], "pickup_x")?;
    let py = parse_f(fields[3], "pickup_y")?;
    let dx = parse_f(fields[4], "dropoff_x")?;
    let dy = parse_f(fields[5], "dropoff_y")?;
    let passengers = fields[6]
        .trim()
        .parse::<u8>()
        .map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad passengers {:?}: {e}", fields[6]),
        })?;
    if passengers == 0 {
        return Err(CsvError::Parse {
            line: line_no,
            message: "passengers must be at least 1".into(),
        });
    }
    if !(px.is_finite() && py.is_finite() && dx.is_finite() && dy.is_finite()) {
        return Err(CsvError::Parse {
            line: line_no,
            message: "non-finite coordinate".into(),
        });
    }
    Ok(Request {
        id: RequestId(id),
        time,
        pickup: Point::new(px, py),
        dropoff: Point::new(dx, dy),
        passengers,
    })
}

/// True for rows the readers skip without parsing.
fn skip_row(line_no: usize, trimmed: &str) -> bool {
    trimmed.is_empty() || (line_no == 1 && trimmed.starts_with("id,"))
}

/// Reads `r` and invokes `f` once per logical line with its exact
/// 1-based line number.
///
/// Line terminators are `\n`, `\r\n`, and a bare `\r` (classic-Mac or
/// mixed-ending exports); a final line with no terminator at all is
/// still delivered with its own number, so quarantine line numbers stay
/// exact for every ending convention. Invalid UTF-8 is replaced
/// per-line (lossy) rather than aborting the read — a byte-corrupt row
/// becomes a parse failure on that line instead of an I/O error that
/// kills the whole import.
fn for_each_logical_line<R: Read>(
    r: R,
    mut f: impl FnMut(usize, &str) -> Result<(), CsvError>,
) -> Result<(), CsvError> {
    let mut reader = BufReader::new(r);
    let mut chunk: Vec<u8> = Vec::new();
    let mut line_no = 0usize;
    loop {
        chunk.clear();
        if reader.read_until(b'\n', &mut chunk)? == 0 {
            return Ok(());
        }
        // Strip the `\n` terminator and, for CRLF endings, the `\r`
        // preceding it. Anything left may still contain bare `\r`
        // separators; each piece between them is its own logical line.
        if chunk.last() == Some(&b'\n') {
            chunk.pop();
            if chunk.last() == Some(&b'\r') {
                chunk.pop();
            }
        }
        let text = String::from_utf8_lossy(&chunk);
        for piece in text.split('\r') {
            line_no += 1;
            f(line_no, piece)?;
        }
    }
}

/// Writes `requests` in the trace CSV format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_requests<W: Write>(mut w: W, requests: &[Request]) -> std::io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for r in requests {
        writeln!(
            w,
            "{},{},{},{},{},{},{}",
            r.id.0, r.time, r.pickup.x, r.pickup.y, r.dropoff.x, r.dropoff.y, r.passengers
        )?;
    }
    Ok(())
}

/// Reads requests from the trace CSV format. A header line is optional.
///
/// Rows need not be time-sorted in the file; the result is sorted by
/// `(time, id)`. For dirty real-world exports that should load anyway,
/// use [`read_requests_quarantined`].
///
/// # Errors
///
/// Returns [`CsvError::Parse`] on a malformed or duplicate-id row and
/// [`CsvError::Io`] on read failure.
pub fn read_requests<R: Read>(r: R) -> Result<Vec<Request>, CsvError> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for_each_logical_line(r, |line_no, line| {
        let trimmed = line.trim();
        if skip_row(line_no, trimmed) {
            return Ok(());
        }
        let req = parse_row(line_no, trimmed)?;
        if !seen.insert(req.id) {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("duplicate request id {}", req.id.0),
            });
        }
        out.push(req);
        Ok(())
    })?;
    out.sort_by_key(|r| (r.time, r.id));
    Ok(out)
}

/// Reads requests like [`read_requests`], but quarantines bad rows
/// instead of failing the whole import.
///
/// Malformed rows (wrong field count, unparsable numbers, zero
/// passengers, non-finite coordinates) and rows whose request id was
/// already seen are collected into the returned [`QuarantineReport`]
/// with their 1-based line number and rejection reason; every clean row
/// is kept. The surviving requests are sorted by `(time, id)`.
///
/// # Errors
///
/// Returns [`CsvError::Io`] on read failure — only I/O aborts the
/// import; parse trouble never does.
pub fn read_requests_quarantined<R: Read>(
    r: R,
) -> Result<(Vec<Request>, QuarantineReport), CsvError> {
    let mut out = Vec::new();
    let mut report = QuarantineReport::default();
    let mut seen = std::collections::HashSet::new();
    for_each_logical_line(r, |line_no, line| {
        let trimmed = line.trim();
        if skip_row(line_no, trimmed) {
            return Ok(());
        }
        match parse_row(line_no, trimmed) {
            Ok(req) if !seen.insert(req.id) => report.rows.push(QuarantinedRow {
                line: line_no,
                reason: format!("duplicate request id {}", req.id.0),
            }),
            Ok(req) => out.push(req),
            Err(CsvError::Parse { line, message }) => {
                report.rows.push(QuarantinedRow {
                    line,
                    reason: message,
                });
            }
            Err(e @ CsvError::Io(_)) => return Err(e),
        }
        Ok(())
    })?;
    out.sort_by_key(|r| (r.time, r.id));
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::boston_september_2012;

    #[test]
    fn round_trip_preserves_requests() {
        let trace = boston_september_2012(0.005).generate(21);
        let mut buf = Vec::new();
        write_requests(&mut buf, &trace.requests).unwrap();
        let back = read_requests(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.requests.len());
        for (a, b) in back.iter().zip(trace.requests.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.time, b.time);
            assert_eq!(a.passengers, b.passengers);
            assert!((a.pickup.x - b.pickup.x).abs() < 1e-9);
            assert!((a.dropoff.y - b.dropoff.y).abs() < 1e-9);
        }
    }

    #[test]
    fn header_is_optional() {
        let csv = "5,100,0.0,0.0,1.0,1.0,2\n";
        let reqs = read_requests(csv.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].id, RequestId(5));
        assert_eq!(reqs[0].passengers, 2);
    }

    #[test]
    fn unsorted_rows_are_sorted() {
        let csv = "1,200,0,0,1,1,1\n0,100,0,0,1,1,1\n";
        let reqs = read_requests(csv.as_bytes()).unwrap();
        assert_eq!(reqs[0].id, RequestId(0));
        assert_eq!(reqs[1].id, RequestId(1));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = format!("{HEADER}\n\n0,1,0,0,1,1,1\n\n");
        assert_eq!(read_requests(csv.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn wrong_field_count_errors() {
        let err = read_requests("0,1,2,3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 7 fields"));
    }

    #[test]
    fn bad_number_errors_with_line() {
        let err = read_requests("0,1,zzz,0,1,1,1\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("pickup_x"), "{msg}");
    }

    #[test]
    fn zero_passengers_rejected() {
        let err = read_requests("0,1,0,0,1,1,0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn non_finite_rejected() {
        let err = read_requests("0,1,inf,0,1,1,1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn duplicate_id_rejected() {
        let csv = "0,1,0,0,1,1,1\n0,2,0,0,1,1,1\n";
        let err = read_requests(csv.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("duplicate request id 0"), "{msg}");
    }

    #[test]
    fn quarantine_keeps_clean_rows_and_records_bad_ones() {
        let csv = format!(
            "{HEADER}\n\
             0,100,0,0,1,1,1\n\
             1,200,zzz,0,1,1,1\n\
             0,300,0,0,1,1,1\n\
             2,50,0,0,1,1,0\n\
             3,400,nan,0,1,1,1\n\
             4,150,0,0,1,1,2\n"
        );
        let (reqs, report) = read_requests_quarantined(csv.as_bytes()).unwrap();
        assert_eq!(
            reqs.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![RequestId(0), RequestId(4)],
            "survivors sorted by (time, id)"
        );
        assert_eq!(report.len(), 4);
        assert_eq!(report.duplicates(), 1);
        assert_eq!(report.rows[0].line, 3);
        assert!(report.rows[0].reason.contains("pickup_x"));
        assert_eq!(report.rows[1].line, 4);
        assert!(report.rows[1].reason.contains("duplicate request id 0"));
        assert!(report.rows[2].reason.contains("at least 1"));
        assert!(report.rows[3].reason.contains("non-finite"));
        let shown = report.to_string();
        assert!(shown.contains("4 row(s) quarantined"), "{shown}");
        assert!(shown.contains("line 3"), "{shown}");
    }

    #[test]
    fn crlf_input_parses_with_exact_line_numbers() {
        let csv =
            format!("{HEADER}\r\n0,100,0,0,1,1,1\r\n1,200,zzz,0,1,1,1\r\n2,300,0,0,1,1,1\r\n");
        let (reqs, report) = read_requests_quarantined(csv.as_bytes()).unwrap();
        assert_eq!(
            reqs.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![RequestId(0), RequestId(2)]
        );
        assert_eq!(report.len(), 1);
        assert_eq!(report.rows[0].line, 3, "CRLF must not shift line numbers");
        assert!(report.rows[0].reason.contains("pickup_x"));

        // The strict reader agrees on both the header skip and the line.
        let err = read_requests(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn final_unterminated_line_is_read() {
        let csv = format!("{HEADER}\n0,100,0,0,1,1,1\n1,200,0,0,1,1,2");
        let reqs = read_requests(csv.as_bytes()).unwrap();
        assert_eq!(
            reqs.len(),
            2,
            "last row without a newline must not be dropped"
        );
        assert_eq!(reqs[1].id, RequestId(1));
        assert_eq!(reqs[1].passengers, 2);
    }

    #[test]
    fn final_unterminated_bad_line_quarantines_with_exact_number() {
        let csv = format!("{HEADER}\r\n0,100,0,0,1,1,1\r\n1,200,zzz");
        let (reqs, report) = read_requests_quarantined(csv.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(report.len(), 1);
        assert_eq!(report.rows[0].line, 3);
        assert!(report.rows[0].reason.contains("expected 7 fields"));
    }

    #[test]
    fn bare_carriage_returns_split_lines() {
        // Classic-Mac style endings, plus a trailing CR before EOF.
        let csv = "0,100,0,0,1,1,1\r1,200,0,0,1,1,1\r";
        let reqs = read_requests(csv.as_bytes()).unwrap();
        assert_eq!(
            reqs.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![RequestId(0), RequestId(1)]
        );

        let bad = "0,100,0,0,1,1,1\rnope\r2,300,0,0,1,1,1";
        let (reqs, report) = read_requests_quarantined(bad.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(report.rows[0].line, 2);
    }

    #[test]
    fn invalid_utf8_row_is_quarantined_not_fatal() {
        let mut bytes = b"0,100,0,0,1,1,1\n".to_vec();
        bytes.extend_from_slice(b"1,200,\xff\xfe,0,1,1,1\n");
        bytes.extend_from_slice(b"2,300,0,0,1,1,1\n");
        let (reqs, report) = read_requests_quarantined(bytes.as_slice()).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(report.len(), 1);
        assert_eq!(report.rows[0].line, 2);
    }

    #[test]
    fn quarantine_is_empty_on_clean_input() {
        let trace = boston_september_2012(0.002).generate(9);
        let mut buf = Vec::new();
        write_requests(&mut buf, &trace.requests).unwrap();
        let (reqs, report) = read_requests_quarantined(buf.as_slice()).unwrap();
        let strict = read_requests(buf.as_slice()).unwrap();
        assert!(report.is_empty());
        assert_eq!(reqs, strict, "quarantined reader matches the strict one");
    }
}
