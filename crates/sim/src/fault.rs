//! Seeded fault injection and the engine's recovery bookkeeping.
//!
//! A [`FaultPlan`] describes a deterministic stream of operational faults
//! — taxis dropping offline, passengers cancelling, GPS jitter, duplicate
//! and malformed records — that the engine injects while it runs. The
//! engine *recovers* from every one of them (cancelled requests leave the
//! pending queue, dropped taxis leave the idle pool, corrupt records are
//! quarantined at admission) and counts each in [`FaultCounters`], so a
//! chaos run both exercises and audits the recovery paths.
//!
//! Faults are drawn from a dedicated seeded generator, so a
//! `(trace, plan)` pair replays the exact same fault sequence on every
//! run regardless of thread count.

use o2o_core::Degraded;
use o2o_trace::{RequestId, TaxiId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A deterministic fault-injection schedule for one simulation run.
///
/// All rates are per-opportunity probabilities in `[0, 1]`: a taxi rolls
/// for dropout once per frame while idle, a pending request rolls for
/// cancellation once per frame, an arriving record rolls for duplication
/// and malformation once, and every returned assignment rolls for a
/// mid-dispatch fate. [`FaultPlan::none`] injects nothing and leaves a
/// run bit-identical to one without a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault stream (independent of the trace seed).
    pub seed: u64,
    /// Per-frame probability that an idle taxi drops offline.
    pub taxi_dropout: f64,
    /// How many frames a dropped-out taxi stays offline.
    pub dropout_frames: u64,
    /// Per-frame probability that a pending request cancels (the
    /// passenger abandons before being matched).
    pub request_cancel: f64,
    /// Probability that an idle taxi reports a jittered GPS position.
    pub gps_jitter: f64,
    /// Maximum per-axis jitter magnitude, km.
    pub jitter_km: f64,
    /// Probability that an arriving record is duplicated (same id
    /// submitted twice).
    pub duplicate_record: f64,
    /// Probability that an arriving record spawns a malformed sibling
    /// (non-finite coordinates).
    pub malformed_record: f64,
    /// Probability that an assignment's passengers cancel between the
    /// policy's decision and its application.
    pub mid_dispatch_cancel: f64,
    /// Probability that an assignment's taxi drops offline between the
    /// policy's decision and its application (its passengers return to
    /// the pending queue).
    pub mid_dispatch_dropout: f64,
}

impl FaultPlan {
    /// A plan that injects nothing: a run with it is bit-identical to a
    /// run without any plan.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            taxi_dropout: 0.0,
            dropout_frames: 5,
            request_cancel: 0.0,
            gps_jitter: 0.0,
            jitter_km: 1.0,
            duplicate_record: 0.0,
            malformed_record: 0.0,
            mid_dispatch_cancel: 0.0,
            mid_dispatch_dropout: 0.0,
        }
    }

    /// A plan with every fault class at the same `rate` (1 km GPS jitter,
    /// five-frame dropouts).
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            taxi_dropout: rate,
            dropout_frames: 5,
            request_cancel: rate,
            gps_jitter: rate,
            jitter_km: 1.0,
            duplicate_record: rate,
            malformed_record: rate,
            mid_dispatch_cancel: rate,
            mid_dispatch_dropout: rate,
        }
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field (a rate outside
    /// `[0, 1]`, a non-finite or negative jitter, or a zero dropout
    /// length).
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("taxi_dropout", self.taxi_dropout),
            ("request_cancel", self.request_cancel),
            ("gps_jitter", self.gps_jitter),
            ("duplicate_record", self.duplicate_record),
            ("malformed_record", self.malformed_record),
            ("mid_dispatch_cancel", self.mid_dispatch_cancel),
            ("mid_dispatch_dropout", self.mid_dispatch_dropout),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be a probability, got {rate}"));
            }
        }
        if !(self.jitter_km.is_finite() && self.jitter_km >= 0.0) {
            return Err(format!(
                "jitter_km must be finite and non-negative, got {}",
                self.jitter_km
            ));
        }
        if self.dropout_frames == 0 {
            return Err("dropout_frames must be at least 1".into());
        }
        Ok(())
    }
}

/// How many faults of each class a run injected, and what the recovery
/// cost.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultCounters {
    /// Idle taxis forced offline between frames.
    pub taxi_dropouts: u64,
    /// Pending requests cancelled between frames.
    pub request_cancellations: u64,
    /// Idle taxis that reported a jittered GPS position.
    pub gps_faults: u64,
    /// Duplicate records injected into the arrival stream.
    pub duplicate_records: u64,
    /// Malformed records injected into the arrival stream.
    pub malformed_records: u64,
    /// Requests whose assignment was cancelled mid-dispatch (counted per
    /// request, so the run's request ledger balances).
    pub mid_dispatch_cancellations: u64,
    /// Assignments voided because their taxi dropped out mid-dispatch
    /// (the member requests return to the pending queue).
    pub mid_dispatch_dropouts: u64,
    /// Arrival records the engine rejected at admission (injected
    /// duplicates and malformed siblings that the screen caught).
    pub quarantined_arrivals: u64,
    /// Dispatch-level failures the engine recovered from instead of
    /// panicking (see [`DispatchError`]).
    pub recovered_dispatch_errors: u64,
    /// Wall-clock milliseconds spent in fault handling and recovery
    /// (admission screening plus mid-dispatch voiding).
    pub recovery_ms: f64,
}

impl FaultCounters {
    /// Total faults injected across every class (excluding the recovery
    /// bookkeeping counters).
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.taxi_dropouts
            + self.request_cancellations
            + self.gps_faults
            + self.duplicate_records
            + self.malformed_records
            + self.mid_dispatch_cancellations
            + self.mid_dispatch_dropouts
    }
}

/// A dispatch-level failure the engine recovered from instead of
/// panicking: the offending assignment (or frame) is skipped, everything
/// else proceeds, and the error is recorded on the report.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchError {
    /// The policy assigned a taxi that is not part of the fleet.
    UnknownTaxi {
        /// The unknown id.
        taxi: TaxiId,
        /// Frame the assignment was returned in.
        frame: u64,
    },
    /// The policy assigned a request that is not in the pending queue
    /// (e.g. it was cancelled while the policy was deciding).
    RequestNotPending {
        /// The missing request.
        request: RequestId,
        /// Frame the assignment was returned in.
        frame: u64,
    },
    /// The parallel pick-up distance precomputation panicked even after
    /// the sequential retry; the frame's dispatch was skipped and its
    /// requests stayed pending.
    PrecomputeFailed {
        /// Frame whose dispatch was skipped.
        frame: u64,
        /// The worker's panic message.
        message: String,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::UnknownTaxi { taxi, frame } => {
                write!(f, "frame {frame}: policy assigned unknown taxi {taxi}")
            }
            DispatchError::RequestNotPending { request, frame } => {
                write!(
                    f,
                    "frame {frame}: policy assigned request {request} that is not pending"
                )
            }
            DispatchError::PrecomputeFailed { frame, message } => {
                write!(
                    f,
                    "frame {frame}: pick-up distance precomputation failed: {message}"
                )
            }
        }
    }
}

impl std::error::Error for DispatchError {}

/// One frame's degradation, as recorded on the report: which frame
/// stepped down the ladder and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationEvent {
    /// The frame whose dispatch degraded.
    pub frame: u64,
    /// What the ladder did.
    pub degraded: Degraded,
}

/// What happens to one assignment between the policy's decision and its
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MidDispatchFate {
    /// The assignment goes through unchanged.
    Deliver,
    /// The passengers cancel; the assignment is voided and its members
    /// leave the pending queue.
    CancelPassengers,
    /// The taxi drops offline; the assignment is voided and its members
    /// stay pending for a later frame.
    TaxiDropout,
}

/// The engine-side fault machinery: the plan, its dedicated generator,
/// and per-taxi offline clocks.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    /// `offline_until[fleet_index]` = first frame the taxi may reappear.
    offline_until: Vec<u64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, fleet: usize) -> Self {
        plan.validate().expect("invalid fault plan");
        FaultState {
            plan,
            rng: StdRng::seed_from_u64(plan.seed),
            offline_until: vec![0; fleet],
        }
    }

    /// Rolls a rate, skipping the generator entirely for zero rates so a
    /// partially-zero plan perturbs nothing it does not name.
    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.gen_bool(rate)
    }

    /// Injects duplicate and malformed siblings into a frame's arrival
    /// batch (the admission screen is expected to quarantine them).
    pub(crate) fn corrupt_arrivals(
        &mut self,
        arrivals: &mut Vec<o2o_trace::Request>,
        c: &mut FaultCounters,
    ) {
        let originals = arrivals.len();
        for i in 0..originals {
            if self.roll(self.plan.duplicate_record) {
                let dup = arrivals[i];
                arrivals.push(dup);
                c.duplicate_records += 1;
            }
            if self.roll(self.plan.malformed_record) {
                let mut bad = arrivals[i];
                bad.pickup = o2o_geo::Point::new(f64::NAN, bad.pickup.y);
                arrivals.push(bad);
                c.malformed_records += 1;
            }
        }
    }

    /// Whether a pending request cancels this frame.
    pub(crate) fn cancels_request(&mut self, c: &mut FaultCounters) -> bool {
        if self.roll(self.plan.request_cancel) {
            c.request_cancellations += 1;
            true
        } else {
            false
        }
    }

    /// Whether the taxi at `fleet_index` is offline this frame (either
    /// still serving an earlier dropout, or newly rolled into one).
    pub(crate) fn taxi_offline(
        &mut self,
        fleet_index: usize,
        frame: u64,
        c: &mut FaultCounters,
    ) -> bool {
        if frame < self.offline_until[fleet_index] {
            return true;
        }
        if self.roll(self.plan.taxi_dropout) {
            self.offline_until[fleet_index] = frame + self.plan.dropout_frames;
            c.taxi_dropouts += 1;
            return true;
        }
        false
    }

    /// The position an idle taxi reports this frame (possibly jittered —
    /// the true position is untouched, only the policy's view shifts).
    pub(crate) fn report_position(
        &mut self,
        p: o2o_geo::Point,
        c: &mut FaultCounters,
    ) -> o2o_geo::Point {
        if self.roll(self.plan.gps_jitter) {
            c.gps_faults += 1;
            let j = self.plan.jitter_km;
            o2o_geo::Point::new(
                p.x + self.rng.gen_range(-j..=j),
                p.y + self.rng.gen_range(-j..=j),
            )
        } else {
            p
        }
    }

    /// Rolls one assignment's mid-dispatch fate. The caller applies the
    /// consequences (and counts them — cancellations are per member).
    pub(crate) fn mid_dispatch_fate(&mut self) -> MidDispatchFate {
        if self.roll(self.plan.mid_dispatch_cancel) {
            MidDispatchFate::CancelPassengers
        } else if self.roll(self.plan.mid_dispatch_dropout) {
            MidDispatchFate::TaxiDropout
        } else {
            MidDispatchFate::Deliver
        }
    }

    /// Forces the taxi at `fleet_index` offline starting now (the
    /// mid-dispatch dropout consequence).
    pub(crate) fn force_offline(&mut self, fleet_index: usize, frame: u64) {
        self.offline_until[fleet_index] = frame + self.plan.dropout_frames;
    }

    /// The checkpointable view of the fault machinery: the plan, the
    /// generator's exact internal state, and the per-taxi offline clocks.
    /// [`restore`](Self::restore) round-trips it so a resumed run draws
    /// the identical fault stream from the first replayed frame on.
    pub(crate) fn snapshot(&self) -> (FaultPlan, [u64; 4], &[u64]) {
        (self.plan, self.rng.state(), &self.offline_until)
    }

    /// Rebuilds the state captured by [`snapshot`](Self::snapshot).
    pub(crate) fn restore(plan: FaultPlan, rng_state: [u64; 4], offline_until: Vec<u64>) -> Self {
        FaultState {
            plan,
            rng: StdRng::from_state(rng_state),
            offline_until,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::Point;
    use o2o_trace::Request;

    #[test]
    fn none_plan_validates_and_injects_nothing() {
        let plan = FaultPlan::none(7);
        plan.validate().expect("none plan is valid");
        let mut fs = FaultState::new(plan, 4);
        let mut c = FaultCounters::default();
        let mut arrivals = vec![Request::new(
            o2o_trace::RequestId(0),
            0,
            Point::new(1.0, 2.0),
            Point::new(3.0, 4.0),
        )];
        fs.corrupt_arrivals(&mut arrivals, &mut c);
        assert_eq!(arrivals.len(), 1);
        assert!(!fs.cancels_request(&mut c));
        assert!(!fs.taxi_offline(0, 0, &mut c));
        let p = Point::new(5.0, 6.0);
        assert_eq!(fs.report_position(p, &mut c), p);
        assert_eq!(fs.mid_dispatch_fate(), MidDispatchFate::Deliver);
        assert_eq!(c, FaultCounters::default());
        assert_eq!(c.total_injected(), 0);
    }

    #[test]
    fn uniform_plan_injects_and_counts_every_class() {
        let mut fs = FaultState::new(FaultPlan::uniform(11, 0.5), 8);
        let mut c = FaultCounters::default();
        let mut arrivals: Vec<Request> = (0..64)
            .map(|i| {
                Request::new(
                    o2o_trace::RequestId(i),
                    0,
                    Point::new(i as f64, 0.0),
                    Point::new(0.0, i as f64),
                )
            })
            .collect();
        fs.corrupt_arrivals(&mut arrivals, &mut c);
        assert!(c.duplicate_records > 0 && c.malformed_records > 0);
        assert!(arrivals.len() as u64 == 64 + c.duplicate_records + c.malformed_records);
        for frame in 0..32 {
            let _ = fs.taxi_offline(0, frame, &mut c);
            let _ = fs.cancels_request(&mut c);
            let _ = fs.report_position(Point::ORIGIN, &mut c);
        }
        assert!(c.taxi_dropouts > 0);
        assert!(c.request_cancellations > 0);
        assert!(c.gps_faults > 0);
        assert!(c.total_injected() > 0);
    }

    #[test]
    fn dropout_keeps_taxi_offline_for_the_configured_frames() {
        let plan = FaultPlan {
            taxi_dropout: 1.0,
            dropout_frames: 3,
            ..FaultPlan::none(0)
        };
        let mut fs = FaultState::new(plan, 1);
        let mut c = FaultCounters::default();
        assert!(fs.taxi_offline(0, 10, &mut c));
        assert_eq!(c.taxi_dropouts, 1);
        // Frames 11 and 12 are still covered by the same dropout: no new
        // roll, no new count.
        assert!(fs.taxi_offline(0, 11, &mut c));
        assert!(fs.taxi_offline(0, 12, &mut c));
        assert_eq!(c.taxi_dropouts, 1);
        // Frame 13 re-rolls (and at rate 1.0 drops again).
        assert!(fs.taxi_offline(0, 13, &mut c));
        assert_eq!(c.taxi_dropouts, 2);
    }

    #[test]
    fn fault_stream_is_deterministic_for_a_seed() {
        let plan = FaultPlan::uniform(42, 0.3);
        let mut a = FaultState::new(plan, 2);
        let mut b = FaultState::new(plan, 2);
        let (mut ca, mut cb) = (FaultCounters::default(), FaultCounters::default());
        for frame in 0..100 {
            assert_eq!(
                a.taxi_offline(0, frame, &mut ca),
                b.taxi_offline(0, frame, &mut cb)
            );
            assert_eq!(a.cancels_request(&mut ca), b.cancels_request(&mut cb));
            assert_eq!(
                a.report_position(Point::ORIGIN, &mut ca),
                b.report_position(Point::ORIGIN, &mut cb)
            );
            assert_eq!(a.mid_dispatch_fate(), b.mid_dispatch_fate());
        }
        assert_eq!(ca, cb);
    }

    #[test]
    fn snapshot_restore_replays_the_identical_fault_stream() {
        let plan = FaultPlan::uniform(77, 0.25);
        let mut a = FaultState::new(plan, 3);
        let mut scrap = FaultCounters::default();
        for frame in 0..40 {
            let _ = a.taxi_offline(0, frame, &mut scrap);
            let _ = a.mid_dispatch_fate();
        }
        let (p, rng_state, off) = a.snapshot();
        let mut b = FaultState::restore(p, rng_state, off.to_vec());
        let (mut ca, mut cb) = (FaultCounters::default(), FaultCounters::default());
        for frame in 40..200 {
            assert_eq!(
                a.taxi_offline(1, frame, &mut ca),
                b.taxi_offline(1, frame, &mut cb)
            );
            assert_eq!(a.cancels_request(&mut ca), b.cancels_request(&mut cb));
            assert_eq!(
                a.report_position(Point::ORIGIN, &mut ca),
                b.report_position(Point::ORIGIN, &mut cb)
            );
            assert_eq!(a.mid_dispatch_fate(), b.mid_dispatch_fate());
        }
        assert_eq!(ca, cb, "post-restore streams must stay in lockstep");
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let mut plan = FaultPlan::none(0);
        plan.taxi_dropout = 1.5;
        assert!(plan.validate().unwrap_err().contains("taxi_dropout"));
        let mut plan = FaultPlan::none(0);
        plan.jitter_km = f64::NAN;
        assert!(plan.validate().unwrap_err().contains("jitter_km"));
        let mut plan = FaultPlan::none(0);
        plan.dropout_frames = 0;
        assert!(plan.validate().unwrap_err().contains("dropout_frames"));
    }

    #[test]
    fn dispatch_error_display_is_readable() {
        let e = DispatchError::UnknownTaxi {
            taxi: TaxiId(9),
            frame: 3,
        };
        assert_eq!(e.to_string(), "frame 3: policy assigned unknown taxi t9");
        let e = DispatchError::RequestNotPending {
            request: RequestId(4),
            frame: 8,
        };
        assert_eq!(
            e.to_string(),
            "frame 8: policy assigned request r4 that is not pending"
        );
        let e = DispatchError::PrecomputeFailed {
            frame: 1,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("precomputation failed: boom"));
    }
}
