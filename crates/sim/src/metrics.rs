//! Metric aggregation: empirical CDFs and hourly buckets.

/// An empirical cumulative distribution function over `f64` samples.
///
/// Backs the paper's CDF figures (Figs. 4, 5, 8, 9).
///
/// # Examples
///
/// ```
/// use o2o_sim::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_most(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.75), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF; NaN samples are dropped.
    #[must_use]
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs left"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when there are no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `≤ x` (0 for an empty CDF).
    #[must_use]
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The smallest sample `v` with `fraction_at_most(v) ≥ q`.
    ///
    /// Edge cases are defined, not incidental:
    ///
    /// * an **empty** CDF returns `0.0` for every `q` — there is no
    ///   sample to report, and the paper's figures plot empty series as
    ///   zero;
    /// * `q` is clamped to `[0, 1]`: `q ≤ 0` returns the minimum
    ///   sample, `q ≥ 1` the maximum;
    /// * a **NaN** `q` returns the minimum sample (it clamps like
    ///   `q ≤ 0` rather than poisoning the index arithmetic).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len()) - 1;
        self.sorted[idx]
    }

    /// Arithmetic mean (0 for an empty CDF).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Largest sample (0 for an empty CDF).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Evaluates the CDF at `points`, returning `(x, F(x))` pairs —
    /// directly plottable as the paper's CDF curves.
    #[must_use]
    pub fn curve(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&x| (x, self.fraction_at_most(x)))
            .collect()
    }

    /// `n + 1` evenly spaced evaluation points covering `[0, max]`.
    #[must_use]
    pub fn even_grid(&self, n: usize) -> Vec<f64> {
        let hi = self.max();
        if n == 0 || hi <= 0.0 {
            return vec![0.0];
        }
        (0..=n).map(|i| hi * i as f64 / n as f64).collect()
    }
}

/// Mean accumulator for hour-of-day bucketing (the Fig. 7 series).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct HourBucket {
    pub sum: f64,
    pub count: usize,
}

impl HourBucket {
    pub(crate) fn push(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
    }

    pub(crate) fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_is_safe() {
        let c = Cdf::from_samples(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_most(10.0), 0.0);
        assert_eq!(c.quantile(0.5), 0.0);
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.max(), 0.0);
        assert_eq!(c.even_grid(4), vec![0.0]);
    }

    #[test]
    fn fractions_and_quantiles() {
        let c = Cdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.fraction_at_most(0.5), 0.0);
        assert_eq!(c.fraction_at_most(1.0), 0.25);
        assert_eq!(c.fraction_at_most(2.5), 0.5);
        assert_eq!(c.fraction_at_most(100.0), 1.0);
        assert_eq!(c.quantile(0.25), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.mean(), 2.5);
    }

    #[test]
    fn quantile_edge_cases_are_defined() {
        let c = Cdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
        // Out-of-range q clamps to the extremes.
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(-5.0), 1.0);
        assert_eq!(c.quantile(2.0), 4.0);
        // NaN q behaves like q ≤ 0.
        assert_eq!(c.quantile(f64::NAN), 1.0);
        // Empty CDFs answer 0.0 everywhere, including for weird q.
        let empty = Cdf::from_samples(vec![]);
        assert_eq!(empty.quantile(0.0), 0.0);
        assert_eq!(empty.quantile(f64::NAN), 0.0);
        assert_eq!(empty.quantile(7.0), 0.0);
    }

    #[test]
    fn nan_samples_are_dropped() {
        let c = Cdf::from_samples(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn curve_is_monotone() {
        let c = Cdf::from_samples((0..50).map(|i| (i as f64 * 37.0) % 11.0).collect());
        let curve = c.curve(&c.even_grid(10));
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn hour_bucket_mean() {
        let mut b = HourBucket::default();
        assert_eq!(b.mean(), 0.0);
        b.push(2.0);
        b.push(4.0);
        assert_eq!(b.mean(), 3.0);
    }
}
