//! The policy interface and adapters for every dispatcher in the
//! workspace.
//!
//! A policy sees one frame at a time — the idle fleet and the pending
//! queue — and returns taxi-to-group assignments. Adapters are provided
//! for the paper's algorithms (NSTD-P/T, STD-P/T) and all six baselines,
//! so experiment code can treat them uniformly:
//!
//! ```
//! use o2o_core::PreferenceParams;
//! use o2o_geo::Euclidean;
//! use o2o_sim::{policy, DispatchPolicy};
//!
//! let params = PreferenceParams::default();
//! let policies: Vec<Box<dyn DispatchPolicy>> = vec![
//!     Box::new(policy::nstd_p(Euclidean, params)),
//!     Box::new(policy::near(Euclidean, params)),
//! ];
//! assert_eq!(policies[0].name(), "NSTD-P");
//! ```

use o2o_baselines::{
    LinDispatcher, MiniDispatcher, NearDispatcher, PairDispatcher, RaiiDispatcher, SarpDispatcher,
};
use o2o_core::{
    CandidateMode, Degraded, IncrementalMode, IncrementalState, NonSharingDispatcher,
    PickupDistances, PreferenceParams, Schedule, SharingDispatcher, SharingSchedule, TimeBudget,
};
use o2o_geo::{CacheStats, DistanceCache, GridIndex, Metric, Point};
use o2o_obs::Recorder;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use std::sync::Arc;

/// What changed between the previous dispatched frame and this one, as
/// seen by the policy (idle fleet and batched pending queue). Computed by
/// the engine and exposed via [`FrameContext::delta`]; policies may use
/// it to size incremental work, and diagnostics can log churn rates. The
/// incremental NSTD path does **not** depend on it for correctness — its
/// warm seed is revalidated against the current frame regardless.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameDelta {
    /// Taxis idle now that were not idle at the previous dispatch.
    pub entered_idle: Vec<TaxiId>,
    /// Taxis idle at the previous dispatch that are no longer idle.
    pub left_idle: Vec<TaxiId>,
    /// Requests in this batch that were not in the previous one.
    pub new_requests: Vec<RequestId>,
    /// Requests from the previous batch no longer pending (served,
    /// expired, or pushed out of the batch window).
    pub removed_requests: Vec<RequestId>,
}

impl FrameDelta {
    /// Total number of changes across both sides.
    #[must_use]
    pub fn churn(&self) -> usize {
        self.entered_idle.len()
            + self.left_idle.len()
            + self.new_requests.len()
            + self.removed_requests.len()
    }
}

/// One frame's input to a policy.
#[derive(Debug, Clone, Copy)]
pub struct FrameContext<'a> {
    /// Index of the frame (0-based).
    pub frame: u64,
    /// Dispatch timestamp: the end of the frame, in seconds.
    pub time: u64,
    /// Taxis idle at dispatch time, with current locations.
    pub idle_taxis: &'a [Taxi],
    /// Requests waiting for a taxi (arrival order).
    pub pending: &'a [Request],
    /// The frame's idle × pending pick-up distance matrix, when the
    /// engine precomputed it (it does so only for policies that return
    /// `true` from [`DispatchPolicy::wants_pickup_distances`]). Entries
    /// are exactly the answers of the metric the engine runs with, so
    /// consuming the matrix never changes a result — provided the policy
    /// dispatches over that same metric (see
    /// [`Simulator::run_with_metric`](crate::Simulator::run_with_metric)).
    pub pickup_distances: Option<&'a PickupDistances>,
    /// A grid index over `idle_taxis` (payload = index into that slice),
    /// built once per frame by the engine for policies that return `true`
    /// from [`DispatchPolicy::wants_taxi_grid`]. Sparse candidate
    /// generation and the grid-accelerated baselines query it instead of
    /// each rebuilding their own; consuming it never changes a result
    /// (see [`o2o_core::build_taxi_grid`]).
    pub taxi_grid: Option<&'a GridIndex<usize>>,
    /// What changed since the previous dispatched frame, when the engine
    /// computed it (`None` in hand-built contexts). See [`FrameDelta`].
    pub delta: Option<&'a FrameDelta>,
    /// The frame's compute budget, started when the engine began the
    /// frame's dispatch work. Unlimited by default ([`TimeBudget`]'s
    /// default), in which case budget-aware policies run their normal
    /// algorithm untouched; under a finite budget they may step down the
    /// degradation ladder and report it via
    /// [`DispatchPolicy::take_degradation`].
    pub budget: TimeBudget,
    /// The run's observability recorder. Defaults to the disabled (no-op)
    /// recorder in hand-built contexts; the engine threads its own. Deep
    /// pipeline stages record through the thread-local scope the engine
    /// installs instead — this handle is for policy-level instruments
    /// (e.g. [`CachedPolicy`]'s per-frame cache counters).
    pub recorder: &'a Recorder,
}

impl<'a> FrameContext<'a> {
    /// A context with no precomputed distances (tests, custom drivers).
    #[must_use]
    pub fn new(frame: u64, time: u64, idle_taxis: &'a [Taxi], pending: &'a [Request]) -> Self {
        FrameContext {
            frame,
            time,
            idle_taxis,
            pending,
            pickup_distances: None,
            taxi_grid: None,
            delta: None,
            budget: TimeBudget::unlimited(),
            recorder: Recorder::disabled_ref(),
        }
    }
}

/// One taxi's assignment for the frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameAssignment {
    /// The dispatched taxi (must be idle this frame).
    pub taxi: TaxiId,
    /// The requests it serves (1 for non-sharing policies).
    pub members: Vec<RequestId>,
    /// Stop locations in driving order (pickups and drop-offs).
    pub stops: Vec<Point>,
    /// Per-member passenger dissatisfaction (the paper's metric).
    pub passenger_costs: Vec<f64>,
    /// Taxi dissatisfaction (the paper's metric).
    pub taxi_cost: f64,
}

/// A dispatch policy driven frame-by-frame by the [`Simulator`].
///
/// [`Simulator`]: crate::Simulator
pub trait DispatchPolicy {
    /// Short display name (used in reports, e.g. `"NSTD-P"`).
    fn name(&self) -> &str;

    /// Decides the frame's assignments. Every returned taxi must be one
    /// of `ctx.idle_taxis` (each at most once) and every member one of
    /// `ctx.pending` (each at most once); unassigned requests stay
    /// pending.
    fn dispatch(&mut self, ctx: &FrameContext<'_>) -> Vec<FrameAssignment>;

    /// Whether the engine should precompute the frame's idle × pending
    /// pick-up distance matrix for this policy (see
    /// [`FrameContext::pickup_distances`]). Defaults to `false` so
    /// policies that would not read the matrix don't pay for it.
    fn wants_pickup_distances(&self) -> bool {
        false
    }

    /// Whether the engine should build the frame's idle-taxi grid index
    /// for this policy (see [`FrameContext::taxi_grid`]). Defaults to
    /// `false` so policies that would not query it don't pay for it.
    fn wants_taxi_grid(&self) -> bool {
        false
    }

    /// Takes (and clears) the record of the last dispatch having stepped
    /// down the degradation ladder under a finite
    /// [`FrameContext::budget`]. The engine calls this after every
    /// dispatch and attributes the event to the frame. Defaults to
    /// `None` for policies that never degrade.
    fn take_degradation(&mut self) -> Option<Degraded> {
        None
    }
}

impl<P: DispatchPolicy + ?Sized> DispatchPolicy for &mut P {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn dispatch(&mut self, ctx: &FrameContext<'_>) -> Vec<FrameAssignment> {
        (**self).dispatch(ctx)
    }

    fn wants_pickup_distances(&self) -> bool {
        (**self).wants_pickup_distances()
    }

    fn wants_taxi_grid(&self) -> bool {
        (**self).wants_taxi_grid()
    }

    fn take_degradation(&mut self) -> Option<Degraded> {
        (**self).take_degradation()
    }
}

impl<P: DispatchPolicy + ?Sized> DispatchPolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn dispatch(&mut self, ctx: &FrameContext<'_>) -> Vec<FrameAssignment> {
        (**self).dispatch(ctx)
    }

    fn wants_pickup_distances(&self) -> bool {
        (**self).wants_pickup_distances()
    }

    fn wants_taxi_grid(&self) -> bool {
        (**self).wants_taxi_grid()
    }

    fn take_degradation(&mut self) -> Option<Degraded> {
        (**self).take_degradation()
    }
}

fn from_schedule(requests: &[Request], s: &Schedule) -> Vec<FrameAssignment> {
    requests
        .iter()
        .filter_map(|r| {
            s.assignment_of(r.id).taxi().map(|taxi| FrameAssignment {
                taxi,
                members: vec![r.id],
                stops: vec![r.pickup, r.dropoff],
                passenger_costs: vec![s
                    .passenger_dissatisfaction(r.id)
                    .expect("assigned request has a cost")],
                taxi_cost: s.taxi_dissatisfaction(taxi).expect("dispatched taxi"),
            })
        })
        .collect()
}

fn from_sharing_schedule(s: &SharingSchedule) -> Vec<FrameAssignment> {
    s.assignments
        .iter()
        .map(|a| FrameAssignment {
            taxi: a.taxi,
            members: a.members.clone(),
            stops: a.route.stops.iter().map(|st| st.location).collect(),
            passenger_costs: a.passenger_costs.clone(),
            taxi_cost: a.taxi_cost,
        })
        .collect()
}

/// A policy built from a closure over the frame context.
pub struct FnPolicy<F> {
    name: String,
    f: F,
}

impl<F> DispatchPolicy for FnPolicy<F>
where
    F: FnMut(&FrameContext<'_>) -> Vec<FrameAssignment>,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn dispatch(&mut self, ctx: &FrameContext<'_>) -> Vec<FrameAssignment> {
        (self.f)(ctx)
    }
}

/// Wraps a closure as a [`DispatchPolicy`] (useful in tests and custom
/// experiments).
pub fn from_fn<F>(name: impl Into<String>, f: F) -> FnPolicy<F>
where
    F: FnMut(&FrameContext<'_>) -> Vec<FrameAssignment>,
{
    FnPolicy {
        name: name.into(),
        f,
    }
}

macro_rules! dispatcher_policy {
    ($struct_name:ident, $doc:literal, $inner:ty, $label:literal, $call:expr) => {
        dispatcher_policy!($struct_name, $doc, $inner, $label, $call, wants_grid: false);
    };
    ($struct_name:ident, $doc:literal, $inner:ty, $label:literal, $call:expr,
     wants_grid: $wants_grid:literal) => {
        #[doc = $doc]
        pub struct $struct_name<M> {
            inner: $inner,
        }

        impl<M: Metric> $struct_name<M> {
            /// Wraps a pre-built dispatcher (e.g. one configured with
            /// `with_parallelism`) as a frame policy.
            #[must_use]
            pub fn from_dispatcher(inner: $inner) -> Self {
                $struct_name { inner }
            }

            /// The wrapped dispatcher.
            #[must_use]
            pub fn dispatcher(&self) -> &$inner {
                &self.inner
            }
        }

        impl<M: Metric> DispatchPolicy for $struct_name<M> {
            fn name(&self) -> &str {
                $label
            }

            fn dispatch(&mut self, ctx: &FrameContext<'_>) -> Vec<FrameAssignment> {
                #[allow(clippy::redundant_closure_call)]
                ($call)(&self.inner, ctx)
            }

            fn wants_taxi_grid(&self) -> bool {
                $wants_grid
            }
        }
    };
}

/// Hand-written (not via `dispatcher_policy!`) because the NSTD policies
/// pick their per-frame input by candidate mode: dense wants the
/// precomputed pick-up matrix, sparse wants the shared taxi grid. Both
/// modes produce bit-identical schedules.
macro_rules! nstd_policy {
    ($struct_name:ident, $doc:literal, $label:literal, $with:ident, $with_grid:ident,
     $incremental:ident, $budgeted:ident) => {
        #[doc = $doc]
        ///
        /// With the dispatcher in [`CandidateMode::Sparse`] (the default)
        /// the policy asks the engine for the shared per-frame taxi grid
        /// and generates candidates through it; in
        /// [`CandidateMode::Dense`] it consumes the precomputed pick-up
        /// matrix as before. On the sparse path the policy additionally
        /// warm-starts deferred acceptance from the previous frame's
        /// matching ([`IncrementalMode::Warm`], the default); toggle to
        /// [`IncrementalMode::Cold`] for A/B benchmarking. The schedules
        /// are bit-identical across every mode combination.
        ///
        /// A dispatcher configured with
        /// [`ShardMode::Sharded`](o2o_core::ShardMode::Sharded) routes the
        /// sparse **cold** and budgeted paths through the spatially
        /// sharded pipeline (still bit-identical; see
        /// `o2o_core::shard`). The warm incremental path bypasses
        /// sharding — its carried cross-frame seed already plays the role
        /// the shard-local seed would — so pair sharding with
        /// [`IncrementalMode::Cold`] to engage it every frame.
        pub struct $struct_name<M> {
            inner: NonSharingDispatcher<M>,
            incremental: IncrementalMode,
            state: IncrementalState,
            degraded: Option<Degraded>,
        }

        impl<M: Metric> $struct_name<M> {
            /// Wraps a pre-built dispatcher (e.g. one configured with
            /// `with_parallelism` or `with_candidate_mode`) as a frame
            /// policy.
            #[must_use]
            pub fn from_dispatcher(inner: NonSharingDispatcher<M>) -> Self {
                $struct_name {
                    inner,
                    incremental: IncrementalMode::default(),
                    state: IncrementalState::new(),
                    degraded: None,
                }
            }

            /// The wrapped dispatcher.
            #[must_use]
            pub fn dispatcher(&self) -> &NonSharingDispatcher<M> {
                &self.inner
            }

            /// Sets whether the sparse path warm-starts from the previous
            /// frame (results are bit-identical either way). Resets any
            /// carried state so a mode change never leaks a stale seed.
            #[must_use]
            pub fn with_incremental_mode(mut self, mode: IncrementalMode) -> Self {
                self.incremental = mode;
                self.state.clear();
                self
            }

            /// The warm-start mode in use.
            #[must_use]
            pub fn incremental_mode(&self) -> IncrementalMode {
                self.incremental
            }
        }

        impl<M: Metric> DispatchPolicy for $struct_name<M> {
            fn name(&self) -> &str {
                $label
            }

            fn dispatch(&mut self, ctx: &FrameContext<'_>) -> Vec<FrameAssignment> {
                if ctx.budget.is_unlimited() {
                    self.degraded = None;
                    let schedule = match (self.inner.candidate_mode(), self.incremental) {
                        (CandidateMode::Dense, _) => {
                            self.inner
                                .$with(ctx.idle_taxis, ctx.pending, ctx.pickup_distances)
                        }
                        (CandidateMode::Sparse, IncrementalMode::Warm) => self.inner.$incremental(
                            ctx.idle_taxis,
                            ctx.pending,
                            ctx.taxi_grid,
                            &mut self.state,
                        ),
                        (CandidateMode::Sparse, IncrementalMode::Cold) => {
                            self.inner
                                .$with_grid(ctx.idle_taxis, ctx.pending, ctx.taxi_grid)
                        }
                    };
                    return from_schedule(ctx.pending, &schedule);
                }
                // Finite budget: the budgeted entry point owns the mode
                // dispatch (warm state is only threaded through on the
                // sparse+warm combination, matching the unbudgeted arms).
                let state = matches!(
                    (self.inner.candidate_mode(), self.incremental),
                    (CandidateMode::Sparse, IncrementalMode::Warm)
                )
                .then(|| &mut self.state);
                let (schedule, degraded) = self.inner.$budgeted(
                    ctx.idle_taxis,
                    ctx.pending,
                    ctx.pickup_distances,
                    ctx.taxi_grid,
                    state,
                    &ctx.budget,
                );
                self.degraded = degraded;
                from_schedule(ctx.pending, &schedule)
            }

            fn take_degradation(&mut self) -> Option<Degraded> {
                self.degraded.take()
            }

            fn wants_pickup_distances(&self) -> bool {
                self.inner.candidate_mode() == CandidateMode::Dense
            }

            fn wants_taxi_grid(&self) -> bool {
                self.inner.candidate_mode() == CandidateMode::Sparse
            }
        }
    };
}

nstd_policy!(
    NstdPPolicy,
    "Algorithm 1 (NSTD-P) as a frame policy.",
    "NSTD-P",
    passenger_optimal_with,
    passenger_optimal_with_grid,
    passenger_optimal_incremental,
    passenger_optimal_budgeted
);

nstd_policy!(
    NstdTPolicy,
    "NSTD-T (taxi-optimal stable matching) as a frame policy.",
    "NSTD-T",
    taxi_optimal_with,
    taxi_optimal_with_grid,
    taxi_optimal_incremental,
    taxi_optimal_budgeted
);

dispatcher_policy!(
    NearPolicy,
    "The *Near* greedy baseline as a frame policy (reuses the engine's \
     shared per-frame taxi grid).",
    NearDispatcher<M>,
    "Near",
    |inner: &NearDispatcher<M>, ctx: &FrameContext<'_>| {
        from_schedule(
            ctx.pending,
            &inner.dispatch_with_grid(ctx.idle_taxis, ctx.pending, ctx.taxi_grid),
        )
    },
    wants_grid: true
);

dispatcher_policy!(
    PairPolicy,
    "The *Pair* min-cost-matching baseline as a frame policy (its dense \
     Hungarian objective admits no grid pruning; a supplied grid is \
     validated and passed through).",
    PairDispatcher<M>,
    "Pair",
    |inner: &PairDispatcher<M>, ctx: &FrameContext<'_>| {
        from_schedule(
            ctx.pending,
            &inner.dispatch_with_grid(ctx.idle_taxis, ctx.pending, ctx.taxi_grid),
        )
    }
);

dispatcher_policy!(
    MiniPolicy,
    "The *Mini* bottleneck-matching baseline as a frame policy (its dense \
     bottleneck objective admits no grid pruning; a supplied grid is \
     validated and passed through).",
    MiniDispatcher<M>,
    "Mini",
    |inner: &MiniDispatcher<M>, ctx: &FrameContext<'_>| {
        from_schedule(
            ctx.pending,
            &inner.dispatch_with_grid(ctx.idle_taxis, ctx.pending, ctx.taxi_grid),
        )
    }
);

dispatcher_policy!(
    StdPPolicy,
    "Algorithm 3 with passenger-optimal matching (STD-P) as a frame policy.",
    SharingDispatcher<M>,
    "STD-P",
    |inner: &SharingDispatcher<M>, ctx: &FrameContext<'_>| {
        from_sharing_schedule(&inner.dispatch_passenger_optimal(ctx.idle_taxis, ctx.pending))
    }
);

dispatcher_policy!(
    StdTPolicy,
    "Algorithm 3 with taxi-optimal matching (STD-T) as a frame policy.",
    SharingDispatcher<M>,
    "STD-T",
    |inner: &SharingDispatcher<M>, ctx: &FrameContext<'_>| {
        from_sharing_schedule(&inner.dispatch_taxi_optimal(ctx.idle_taxis, ctx.pending))
    }
);

dispatcher_policy!(
    RaiiPolicy,
    "The *RAII* sharing baseline as a frame policy (reuses the engine's \
     shared per-frame taxi grid).",
    RaiiDispatcher<M>,
    "RAII",
    |inner: &RaiiDispatcher<M>, ctx: &FrameContext<'_>| {
        from_sharing_schedule(&inner.dispatch_with_grid(
            ctx.idle_taxis,
            ctx.pending,
            ctx.taxi_grid,
        ))
    },
    wants_grid: true
);

dispatcher_policy!(
    SarpPolicy,
    "The *SARP* insertion baseline as a frame policy (reuses the engine's \
     shared per-frame taxi grid for its new-route candidates).",
    SarpDispatcher<M>,
    "SARP",
    |inner: &SarpDispatcher<M>, ctx: &FrameContext<'_>| {
        from_sharing_schedule(&inner.dispatch_with_grid(
            ctx.idle_taxis,
            ctx.pending,
            ctx.taxi_grid,
        ))
    },
    wants_grid: true
);

dispatcher_policy!(
    LinPolicy,
    "The *Lin* ILP-heuristic baseline as a frame policy (its global \
     objective admits no grid pruning; a supplied grid is validated and \
     passed through).",
    LinDispatcher<M>,
    "Lin",
    |inner: &LinDispatcher<M>, ctx: &FrameContext<'_>| {
        from_sharing_schedule(&inner.dispatch_with_grid(ctx.idle_taxis, ctx.pending, ctx.taxi_grid))
    }
);

dispatcher_policy!(
    NstdEPolicy,
    "The egalitarian stable schedule (extension: fairest compromise \
     between NSTD-P and NSTD-T) as a frame policy.",
    NonSharingDispatcher<M>,
    "NSTD-E",
    |inner: &NonSharingDispatcher<M>, ctx: &FrameContext<'_>| {
        from_schedule(
            ctx.pending,
            // Cap the enumeration: frames with astronomically many stable
            // schedules are theoretical corner cases, and the egalitarian
            // pick over a large prefix is already representative.
            &inner.egalitarian(ctx.idle_taxis, ctx.pending, Some(64)),
        )
    }
);

/// NSTD-P (Algorithm 1) policy.
pub fn nstd_p<M: Metric>(metric: M, params: PreferenceParams) -> NstdPPolicy<M> {
    NstdPPolicy::from_dispatcher(NonSharingDispatcher::new(metric, params))
}

/// NSTD-T (taxi-optimal) policy.
pub fn nstd_t<M: Metric>(metric: M, params: PreferenceParams) -> NstdTPolicy<M> {
    NstdTPolicy::from_dispatcher(NonSharingDispatcher::new(metric, params))
}

/// Egalitarian stable-schedule policy (extension beyond the paper).
pub fn nstd_e<M: Metric>(metric: M, params: PreferenceParams) -> NstdEPolicy<M> {
    NstdEPolicy {
        inner: NonSharingDispatcher::new(metric, params),
    }
}

/// *Near* baseline policy.
pub fn near<M: Metric>(metric: M, params: PreferenceParams) -> NearPolicy<M> {
    NearPolicy {
        inner: NearDispatcher::new(metric, params),
    }
}

/// *Pair* baseline policy.
pub fn pair<M: Metric>(metric: M, params: PreferenceParams) -> PairPolicy<M> {
    PairPolicy {
        inner: PairDispatcher::new(metric, params),
    }
}

/// *Mini* baseline policy.
pub fn mini<M: Metric>(metric: M, params: PreferenceParams) -> MiniPolicy<M> {
    MiniPolicy {
        inner: MiniDispatcher::new(metric, params),
    }
}

/// STD-P (Algorithm 3, passenger-optimal) policy.
pub fn std_p<M: Metric>(metric: M, params: PreferenceParams) -> StdPPolicy<M> {
    StdPPolicy {
        inner: SharingDispatcher::new(metric, params),
    }
}

/// STD-T (Algorithm 3, taxi-optimal) policy.
pub fn std_t<M: Metric>(metric: M, params: PreferenceParams) -> StdTPolicy<M> {
    StdTPolicy {
        inner: SharingDispatcher::new(metric, params),
    }
}

/// *RAII* sharing baseline policy.
pub fn raii<M: Metric>(metric: M, params: PreferenceParams) -> RaiiPolicy<M> {
    RaiiPolicy {
        inner: RaiiDispatcher::new(metric, params),
    }
}

/// *SARP* sharing baseline policy.
pub fn sarp<M: Metric>(metric: M, params: PreferenceParams) -> SarpPolicy<M> {
    SarpPolicy {
        inner: SarpDispatcher::new(metric, params),
    }
}

/// *Lin* sharing baseline policy.
pub fn lin<M: Metric + Clone>(metric: M, params: PreferenceParams) -> LinPolicy<M> {
    LinPolicy {
        inner: LinDispatcher::new(metric, params),
    }
}

/// How long a [`CachedPolicy`]'s memoized distances stay alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLifetime {
    /// Drop everything at the start of every frame (the historical
    /// behaviour of [`cached`]).
    PerFrame,
    /// Keep entries across frames; once the cache exceeds `max_entries`,
    /// sweep entries whose origin point is no longer live this frame
    /// (stationary idle taxis and carried-over requests keep their
    /// entries — the cross-frame hit the incremental pipeline relies on).
    Persistent {
        /// Sweep trigger: entry count above which stale origins are
        /// reclaimed at the next frame boundary.
        max_entries: usize,
    },
}

/// A policy whose dispatcher queries a shared [`DistanceCache`].
///
/// Within one frame the same origin/destination pairs are asked for
/// repeatedly — stage-1 feasibility routing, packing scores and the
/// preference model all re-derive overlapping distances — so memoizing
/// them is free speedup with bit-identical results (the cache stores the
/// metric's exact answers). Across frames, the [`CacheLifetime`] decides:
/// [`cached`] clears per frame; [`cached_persistent`] keeps entries
/// alive so stationary taxis and waiting requests hit across frames,
/// bounding memory with a stale-origin sweep instead of a clear. Both
/// lifetimes are bit-identical to the uncached policy — a cached value
/// is keyed by the exact position bits of both endpoints, so a hit can
/// never return a pre-move distance.
///
/// Build one with [`cached`]:
///
/// ```
/// use o2o_core::PreferenceParams;
/// use o2o_geo::Euclidean;
/// use o2o_sim::policy;
///
/// let p = policy::cached(Euclidean, |metric| {
///     policy::std_p(metric, PreferenceParams::default())
/// });
/// ```
pub struct CachedPolicy<P, M> {
    inner: P,
    cache: Arc<DistanceCache<M>>,
    lifetime: CacheLifetime,
}

impl<P, M> CachedPolicy<P, M> {
    /// The shared cache (e.g. to inspect hit/miss statistics).
    #[must_use]
    pub fn cache(&self) -> &Arc<DistanceCache<M>> {
        &self.cache
    }

    /// The cache lifetime in use.
    #[must_use]
    pub fn lifetime(&self) -> CacheLifetime {
        self.lifetime
    }

    /// Cumulative hit/miss counters of the shared cache. Per-frame
    /// deltas are recorded on the frame's [`Recorder`] as the
    /// `cache.hits` / `cache.misses` counters during
    /// [`DispatchPolicy::dispatch`], so most callers read those
    /// instead of polling this.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats
    where
        M: Metric,
    {
        self.cache.stats()
    }
}

impl<P: DispatchPolicy, M: Metric> DispatchPolicy for CachedPolicy<P, M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn dispatch(&mut self, ctx: &FrameContext<'_>) -> Vec<FrameAssignment> {
        let before = self.cache.stats();
        match self.lifetime {
            CacheLifetime::PerFrame => self.cache.clear(),
            CacheLifetime::Persistent { max_entries } => {
                if self.cache.len() > max_entries {
                    // Live origins this frame: idle-taxi locations plus
                    // pending pickups and drop-offs (trip and route legs
                    // are keyed with those as origins). Every other origin
                    // belongs to a position nobody occupies any more and
                    // can never be queried again. The sweep leaves the
                    // hit/miss counters untouched, so the engine's
                    // per-frame deltas stay monotone.
                    let live: std::collections::HashSet<(u64, u64)> = ctx
                        .idle_taxis
                        .iter()
                        .map(|t| DistanceCache::<M>::origin_key(t.location))
                        .chain(ctx.pending.iter().flat_map(|r| {
                            [
                                DistanceCache::<M>::origin_key(r.pickup),
                                DistanceCache::<M>::origin_key(r.dropoff),
                            ]
                        }))
                        .collect();
                    self.cache.sweep_stale(&live);
                }
            }
        }
        let out = self.inner.dispatch(ctx);
        let after = self.cache.stats();
        ctx.recorder.add_many(&[
            ("cache.hits", after.hits.saturating_sub(before.hits)),
            ("cache.misses", after.misses.saturating_sub(before.misses)),
        ]);
        out
    }

    fn wants_pickup_distances(&self) -> bool {
        self.inner.wants_pickup_distances()
    }

    fn wants_taxi_grid(&self) -> bool {
        self.inner.wants_taxi_grid()
    }

    fn take_degradation(&mut self) -> Option<Degraded> {
        self.inner.take_degradation()
    }
}

/// Wraps `metric` in a per-frame [`DistanceCache`] and hands the caching
/// metric to `make`, which builds the underlying policy over it.
pub fn cached<M, P, F>(metric: M, make: F) -> CachedPolicy<P, M>
where
    M: Metric,
    F: FnOnce(Arc<DistanceCache<M>>) -> P,
{
    let cache = Arc::new(DistanceCache::new(metric));
    let inner = make(Arc::clone(&cache));
    CachedPolicy {
        inner,
        cache,
        lifetime: CacheLifetime::PerFrame,
    }
}

/// Like [`cached`], but the cache persists across frames
/// ([`CacheLifetime::Persistent`]): stationary idle taxis and
/// carried-over requests hit across frames, and memory is bounded by a
/// stale-origin sweep once the cache exceeds `max_entries`. Results are
/// bit-identical to [`cached`] and to the uncached policy.
pub fn cached_persistent<M, P, F>(metric: M, max_entries: usize, make: F) -> CachedPolicy<P, M>
where
    M: Metric,
    F: FnOnce(Arc<DistanceCache<M>>) -> P,
{
    let cache = Arc::new(DistanceCache::new(metric));
    let inner = make(Arc::clone(&cache));
    CachedPolicy {
        inner,
        cache,
        lifetime: CacheLifetime::Persistent { max_entries },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_geo::Euclidean;

    fn ctx_fixture() -> (Vec<Taxi>, Vec<Request>) {
        let taxis = vec![Taxi::new(TaxiId(0), Point::new(0.0, 0.0))];
        let requests = vec![Request::new(
            RequestId(0),
            0,
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
        )];
        (taxis, requests)
    }

    #[test]
    fn all_policies_have_paper_names() {
        let p = PreferenceParams::default();
        let names: Vec<String> = vec![
            nstd_p(Euclidean, p).name().into(),
            nstd_t(Euclidean, p).name().into(),
            near(Euclidean, p).name().into(),
            pair(Euclidean, p).name().into(),
            mini(Euclidean, p).name().into(),
            std_p(Euclidean, p).name().into(),
            std_t(Euclidean, p).name().into(),
            raii(Euclidean, p).name().into(),
            sarp(Euclidean, p).name().into(),
            lin(Euclidean, p).name().into(),
        ];
        assert_eq!(
            names,
            vec![
                "NSTD-P", "NSTD-T", "Near", "Pair", "Mini", "STD-P", "STD-T", "RAII", "SARP", "Lin"
            ]
        );
    }

    #[test]
    fn non_sharing_policies_assign_single_members() {
        let (taxis, requests) = ctx_fixture();
        let ctx = FrameContext::new(0, 60, &taxis, &requests);
        let p = PreferenceParams::default();
        for mut policy in [
            Box::new(nstd_p(Euclidean, p)) as Box<dyn DispatchPolicy>,
            Box::new(near(Euclidean, p)),
            Box::new(pair(Euclidean, p)),
            Box::new(mini(Euclidean, p)),
        ] {
            let out = policy.dispatch(&ctx);
            assert_eq!(out.len(), 1, "{}", policy.name());
            assert_eq!(out[0].members, vec![RequestId(0)]);
            assert_eq!(out[0].stops.len(), 2);
            assert!((out[0].passenger_costs[0] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sharing_policies_assign_routes() {
        let (taxis, requests) = ctx_fixture();
        let ctx = FrameContext::new(0, 60, &taxis, &requests);
        let p = PreferenceParams::default();
        for mut policy in [
            Box::new(std_p(Euclidean, p)) as Box<dyn DispatchPolicy>,
            Box::new(std_t(Euclidean, p)),
            Box::new(raii(Euclidean, p)),
            Box::new(sarp(Euclidean, p)),
            Box::new(lin(Euclidean, p)),
        ] {
            let out = policy.dispatch(&ctx);
            assert_eq!(out.len(), 1, "{}", policy.name());
            assert_eq!(out[0].stops.len(), 2);
            assert_eq!(out[0].taxi, TaxiId(0));
        }
    }

    #[test]
    fn egalitarian_policy_serves_frames() {
        let (taxis, requests) = ctx_fixture();
        let ctx = FrameContext::new(0, 60, &taxis, &requests);
        let mut p = nstd_e(Euclidean, PreferenceParams::default());
        assert_eq!(p.name(), "NSTD-E");
        let out = p.dispatch(&ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].members, vec![RequestId(0)]);
    }

    #[test]
    fn fn_policy_wraps_closure() {
        let mut p = from_fn("noop", |_ctx: &FrameContext<'_>| Vec::new());
        assert_eq!(p.name(), "noop");
        let (taxis, requests) = ctx_fixture();
        let ctx = FrameContext::new(0, 0, &taxis, &requests);
        assert!(p.dispatch(&ctx).is_empty());
    }

    #[test]
    fn nstd_policies_want_frame_inputs_by_candidate_mode() {
        let p = PreferenceParams::default();
        // Sparse (the default): taxi grid in, pick-up matrix out.
        assert!(!nstd_p(Euclidean, p).wants_pickup_distances());
        assert!(!nstd_t(Euclidean, p).wants_pickup_distances());
        assert!(nstd_p(Euclidean, p).wants_taxi_grid());
        assert!(nstd_t(Euclidean, p).wants_taxi_grid());
        // Dense: the original contract.
        let dense = NstdPPolicy::from_dispatcher(
            NonSharingDispatcher::new(Euclidean, p).with_candidate_mode(CandidateMode::Dense),
        );
        assert!(dense.wants_pickup_distances());
        assert!(!dense.wants_taxi_grid());
        // Non-NSTD policies ask for neither.
        assert!(!nstd_e(Euclidean, p).wants_pickup_distances());
        assert!(!std_p(Euclidean, p).wants_pickup_distances());
        assert!(!near(Euclidean, p).wants_pickup_distances());
        assert!(!nstd_e(Euclidean, p).wants_taxi_grid());
        assert!(!std_p(Euclidean, p).wants_taxi_grid());
    }

    #[test]
    fn cached_policies_record_hit_miss_deltas_on_the_frame_recorder() {
        let p = PreferenceParams::default();
        let mut wrapped = cached(Euclidean, |metric| {
            StdPPolicy::from_dispatcher(SharingDispatcher::new(metric, p))
        });
        let stats = wrapped.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));

        let (taxis, requests) = ctx_fixture();
        let recorder = Recorder::new();
        let mut ctx = FrameContext::new(0, 60, &taxis, &requests);
        ctx.recorder = &recorder;
        let out = wrapped.dispatch(&ctx);
        assert_eq!(out.len(), 1);
        let stats = wrapped.cache_stats();
        assert!(stats.misses > 0, "dispatch populates the cache");
        assert_eq!(recorder.counter("cache.misses"), stats.misses);
        assert_eq!(recorder.counter("cache.hits"), stats.hits);

        // The default context carries the disabled recorder: dispatching
        // through it is inert but still bit-identical.
        let plain_ctx = FrameContext::new(1, 120, &taxis, &requests);
        assert!(!plain_ctx.recorder.is_enabled());
        assert_eq!(wrapped.dispatch(&plain_ctx), out);
    }

    #[test]
    fn budgeted_dispatch_reports_and_clears_degradation() {
        use o2o_core::{DispatchTier, TimeBudgetSpec};
        let (taxis, requests) = ctx_fixture();
        let mut p = nstd_t(Euclidean, PreferenceParams::default());
        // Unlimited budget (the default context): no degradation.
        let ctx = FrameContext::new(0, 60, &taxis, &requests);
        let out = p.dispatch(&ctx);
        assert_eq!(out.len(), 1);
        assert!(p.take_degradation().is_none());
        // A zero deadline forces the greedy floor and records it.
        let mut ctx = FrameContext::new(1, 120, &taxis, &requests);
        ctx.budget = TimeBudgetSpec::default()
            .with_deadline(std::time::Duration::ZERO)
            .start();
        let out = p.dispatch(&ctx);
        assert_eq!(out.len(), 1, "greedy still serves the lone request");
        let d = p.take_degradation().expect("degradation recorded");
        assert_eq!(d.from, DispatchTier::NstdT);
        assert_eq!(d.to, DispatchTier::GreedyNearest);
        // take_degradation drains the record.
        assert!(p.take_degradation().is_none());
        // Policies without a budgeted path report none by default.
        let mut near = near(Euclidean, PreferenceParams::default());
        let _ = near.dispatch(&ctx);
        assert!(near.take_degradation().is_none());
    }

    #[test]
    fn cached_policy_matches_plain_and_clears_per_frame() {
        let (taxis, requests) = ctx_fixture();
        let ctx = FrameContext::new(0, 60, &taxis, &requests);
        let p = PreferenceParams::default();
        let mut plain = std_p(Euclidean, p);
        let mut wrapped = cached(Euclidean, |metric| {
            StdPPolicy::from_dispatcher(SharingDispatcher::new(metric, p))
        });
        assert_eq!(wrapped.name(), "STD-P");
        let out = wrapped.dispatch(&ctx);
        assert_eq!(out, plain.dispatch(&ctx));
        assert!(wrapped.cache().stats().misses > 0);
        // Dispatch starts by clearing, so a second frame re-misses but
        // still matches.
        let again = wrapped.dispatch(&ctx);
        assert_eq!(again, out);
    }
}
