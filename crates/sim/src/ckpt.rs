//! Crash-safe checkpointing and write-ahead logging for simulation runs.
//!
//! A long run can be killed at any instant — frame boundary, mid-write,
//! or by the power cord — and resumed to a **bit-identical**
//! [`SimReport`] (modulo wall-clock telemetry; see
//! [`SimReport::deterministic_digest`]). The design has three parts:
//!
//! 1. **Checkpoints** (`ckpt-<frame>.o2oc`): a versioned, self-describing
//!    snapshot of the full [`EngineState`] at a frame boundary — RNG
//!    state, fleet, pending/served ledger, fault cursors, degradation
//!    history and report accumulators. The format is hand-rolled
//!    little-endian sections (`tag`/`len`/payload) guarded by an FNV-1a
//!    checksum; no serde in this offline workspace. Writes go to a temp
//!    file, are optionally fsynced, then renamed into place, so a
//!    half-written checkpoint can never shadow a valid one. The loader
//!    detects torn or corrupt files ([`CkptError`], never a panic) and
//!    [`latest_valid_checkpoint`] falls back to the newest file that
//!    still verifies.
//! 2. **Frame WAL** (`frames.o2ow`): an append-only record per executed
//!    frame — `(frame, state digest, checksum)` — reset at every
//!    checkpoint. Resume = load-latest-valid + deterministically
//!    re-execute the WAL's frames, verifying each replayed frame's
//!    digest against what the dead process recorded
//!    ([`CkptError::ReplayDivergence`] on mismatch). A torn final record
//!    (the crash landed mid-append) is ignored; records at or before the
//!    checkpoint frame are skipped as stale.
//! 3. **The bit-identity argument.** Only [`EngineState`] survives a
//!    frame boundary; per-frame scratch is rebuilt from the trace, and
//!    policy warm state is deterministically rebuilt because the
//!    policies guarantee warm==cold results. A resumed run therefore
//!    replays the exact dispatch sequence. The *telemetry* differs —
//!    a cold-restarted policy re-misses its caches and wall-clock
//!    timings are machine noise — which is exactly the set of fields
//!    [`SimReport::deterministic_digest`] excludes.

use crate::engine::{EngineState, Simulator, TaxiState};
use crate::fault::{DegradationEvent, DispatchError, FaultCounters, FaultPlan, FaultState};
use crate::metrics::HourBucket;
use crate::policy::DispatchPolicy;
use crate::report::SimReport;
use o2o_core::{DegradeReason, Degraded, DispatchTier};
use o2o_geo::{Euclidean, Metric, Point};
use o2o_obs::StageBreakdown;
use o2o_trace::{Request, RequestId, Taxi, TaxiId, Trace};
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const CKPT_MAGIC: [u8; 4] = *b"O2OC";
const WAL_MAGIC: [u8; 4] = *b"O2OW";
const CKPT_VERSION: u32 = 1;
const WAL_VERSION: u32 = 1;
const SEC_META: u32 = 1;
const SEC_STATE: u32 = 2;
/// Bytes per WAL record: frame, digest, record checksum.
const WAL_RECORD: usize = 24;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a checkpoint or WAL could not be used. Corruption is always a
/// typed error, never a panic, so callers can fall back to an older
/// checkpoint or a cold start.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file is shorter than its own framing claims (torn write).
    Truncated,
    /// The whole-file checksum does not match (bit rot or torn write).
    ChecksumMismatch,
    /// A section decoded to something structurally impossible.
    Malformed(String),
    /// The checkpoint belongs to a different run (trace, policy, config
    /// or fault plan changed).
    Mismatch(String),
    /// A WAL-replayed frame did not reproduce the digest the original
    /// process recorded — the resume would not be bit-identical.
    ReplayDivergence {
        /// The frame whose replay diverged.
        frame: u64,
        /// Digest the WAL recorded.
        expected: u64,
        /// Digest the replay produced.
        got: u64,
    },
    /// An invalid [`CheckpointSpec`] field.
    BadSpec(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CkptError::Truncated => write!(f, "checkpoint file is truncated"),
            CkptError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CkptError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CkptError::Mismatch(m) => write!(f, "checkpoint belongs to a different run: {m}"),
            CkptError::ReplayDivergence {
                frame,
                expected,
                got,
            } => write!(
                f,
                "WAL replay diverged at frame {frame}: recorded digest {expected:#018x}, \
                 replayed {got:#018x}"
            ),
            CkptError::BadSpec(m) => write!(f, "invalid checkpoint spec: {m}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

// ---------------------------------------------------------------------
// FNV-1a and the byte codec
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a processed a word at a time — the checksum and digest
/// primitive. Not cryptographic; it guards against torn writes and bit
/// rot, not adversaries, and it is dependency-free. Word-chunking (vs
/// the textbook byte loop) keeps checksumming hundreds of kilobytes of
/// checkpoint off the dispatch hot path's budget.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.bytes(bytes);
    h.finish()
}

/// Streaming form of [`fnv1a64`]: hash values as they come, no staging
/// buffer. Used for the per-frame WAL digest, which runs once per
/// simulated frame and must cost microseconds, not allocations.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.u64(u64::from_le_bytes(tail));
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Little-endian byte encoder for the checkpoint payloads.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn point(&mut self, p: Point) {
        self.f64(p.x);
        self.f64(p.y);
    }
}

/// Little-endian cursor over a checkpoint payload; every read is
/// bounds-checked so corrupt framing surfaces as [`CkptError`].
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated)?;
        if end > self.buf.len() {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A length prefix about to index this file — reject lengths that
    /// exceed the remaining bytes so a corrupt count cannot trigger an
    /// absurd allocation.
    fn len_prefix(&mut self, min_item: usize) -> Result<usize, CkptError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(min_item.max(1)) > self.buf.len().saturating_sub(self.pos) {
            return Err(CkptError::Malformed(format!(
                "length prefix {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, CkptError> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Malformed("non-UTF-8 string".into()))
    }
    fn point(&mut self) -> Result<Point, CkptError> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------
// EngineState <-> bytes
// ---------------------------------------------------------------------

fn encode_state(e: &mut Enc, st: &EngineState) {
    e.u64(st.frame);
    e.u64(st.next_request as u64);
    e.u64(st.faults_seen);

    e.u64(st.taxis.len() as u64);
    for t in &st.taxis {
        e.u64(t.template.id.0);
        e.point(t.template.location);
        e.u8(t.template.seats);
        e.point(t.location);
        e.u64(t.free_at);
    }

    e.u64(st.pending.len() as u64);
    for &(r, admitted) in &st.pending {
        encode_request(e, &r);
        e.u64(admitted);
    }

    encode_id_set(e, st.admitted_ids.iter().map(|id| id.0));
    encode_id_set(e, st.prev_idle_ids.iter().map(|id| id.0));
    encode_id_set(e, st.prev_batch_ids.iter().map(|id| id.0));

    match &st.fault_state {
        None => e.u8(0),
        Some(fs) => {
            e.u8(1);
            let (plan, rng, offline) = fs.snapshot();
            encode_fault_plan(e, &plan);
            for w in rng {
                e.u64(w);
            }
            e.u64(offline.len() as u64);
            for &f in offline {
                e.u64(f);
            }
        }
    }

    encode_report(e, &st.report);
}

fn decode_state(d: &mut Dec<'_>) -> Result<EngineState, CkptError> {
    let frame = d.u64()?;
    let next_request = d.u64()? as usize;
    let faults_seen = d.u64()?;

    let n_taxis = d.len_prefix(41)?;
    let mut taxis = Vec::with_capacity(n_taxis);
    for _ in 0..n_taxis {
        let id = TaxiId(d.u64()?);
        let tmpl_loc = d.point()?;
        let seats = d.u8()?;
        let location = d.point()?;
        let free_at = d.u64()?;
        taxis.push(TaxiState {
            template: Taxi {
                id,
                location: tmpl_loc,
                seats,
            },
            location,
            free_at,
        });
    }

    let n_pending = d.len_prefix(49)?;
    let mut pending = VecDeque::with_capacity(n_pending);
    for _ in 0..n_pending {
        let r = decode_request(d)?;
        let admitted = d.u64()?;
        pending.push_back((r, admitted));
    }

    let admitted_ids: HashSet<RequestId> = decode_id_set(d)?.into_iter().map(RequestId).collect();
    let prev_idle_ids: HashSet<TaxiId> = decode_id_set(d)?.into_iter().map(TaxiId).collect();
    let prev_batch_ids: HashSet<RequestId> = decode_id_set(d)?.into_iter().map(RequestId).collect();

    let fault_state = match d.u8()? {
        0 => None,
        1 => {
            let plan = decode_fault_plan(d)?;
            let mut rng = [0u64; 4];
            for w in &mut rng {
                *w = d.u64()?;
            }
            let n = d.len_prefix(8)?;
            let mut offline = Vec::with_capacity(n);
            for _ in 0..n {
                offline.push(d.u64()?);
            }
            Some(FaultState::restore(plan, rng, offline))
        }
        t => return Err(CkptError::Malformed(format!("unknown fault-state tag {t}"))),
    };

    let report = decode_report(d)?;

    Ok(EngineState {
        taxis,
        pending,
        next_request,
        report,
        faults_seen,
        fault_state,
        admitted_ids,
        prev_idle_ids,
        prev_batch_ids,
        frame,
    })
}

fn encode_request(e: &mut Enc, r: &Request) {
    e.u64(r.id.0);
    e.u64(r.time);
    e.point(r.pickup);
    e.point(r.dropoff);
    e.u8(r.passengers);
}

fn decode_request(d: &mut Dec<'_>) -> Result<Request, CkptError> {
    Ok(Request {
        id: RequestId(d.u64()?),
        time: d.u64()?,
        pickup: d.point()?,
        dropoff: d.point()?,
        passengers: d.u8()?,
    })
}

/// Sets are serialized sorted so the same state always produces the same
/// bytes (hash iteration order never leaks into the file).
fn encode_id_set(e: &mut Enc, ids: impl Iterator<Item = u64>) {
    let mut v: Vec<u64> = ids.collect();
    v.sort_unstable();
    e.u64(v.len() as u64);
    for id in v {
        e.u64(id);
    }
}

fn decode_id_set(d: &mut Dec<'_>) -> Result<Vec<u64>, CkptError> {
    let n = d.len_prefix(8)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.u64()?);
    }
    Ok(v)
}

fn encode_fault_plan(e: &mut Enc, p: &FaultPlan) {
    e.u64(p.seed);
    e.f64(p.taxi_dropout);
    e.u64(p.dropout_frames);
    e.f64(p.request_cancel);
    e.f64(p.gps_jitter);
    e.f64(p.jitter_km);
    e.f64(p.duplicate_record);
    e.f64(p.malformed_record);
    e.f64(p.mid_dispatch_cancel);
    e.f64(p.mid_dispatch_dropout);
}

fn decode_fault_plan(d: &mut Dec<'_>) -> Result<FaultPlan, CkptError> {
    let plan = FaultPlan {
        seed: d.u64()?,
        taxi_dropout: d.f64()?,
        dropout_frames: d.u64()?,
        request_cancel: d.f64()?,
        gps_jitter: d.f64()?,
        jitter_km: d.f64()?,
        duplicate_record: d.f64()?,
        malformed_record: d.f64()?,
        mid_dispatch_cancel: d.f64()?,
        mid_dispatch_dropout: d.f64()?,
    };
    plan.validate().map_err(CkptError::Malformed)?;
    Ok(plan)
}

fn encode_report(e: &mut Enc, r: &SimReport) {
    e.str(&r.policy);
    e.str(&r.trace);
    e.u64(r.served as u64);
    e.u64(r.unserved_at_end as u64);
    e.u64(r.frames);
    encode_f64s(e, &r.delays_min);
    encode_f64s(e, &r.passenger_dissatisfaction);
    encode_f64s(e, &r.taxi_dissatisfaction);
    e.u64(r.shared_requests as u64);
    e.f64(r.total_drive_km);
    e.u64(r.queue_by_frame.len() as u64);
    e.buf.reserve(r.queue_by_frame.len() * 4);
    for &q in &r.queue_by_frame {
        e.u32(q);
    }
    e.u64(r.idle_by_frame.len() as u64);
    e.buf.reserve(r.idle_by_frame.len() * 4);
    for &q in &r.idle_by_frame {
        e.u32(q);
    }
    // Wall-clock telemetry (`dispatch_ms_by_frame`, `stage_breakdown`,
    // `slo_events`) is deliberately NOT persisted: it is process-local,
    // excluded from `deterministic_digest`, and at full scale it is the
    // bulk of the report's bytes — omitting it keeps checkpoint cost
    // flat as the run progresses. A resumed run's telemetry covers
    // resumed frames only (SLO windows restart cold).
    encode_fault_counters(e, &r.faults);

    e.u64(r.dispatch_errors.len() as u64);
    for err in &r.dispatch_errors {
        match err {
            DispatchError::UnknownTaxi { taxi, frame } => {
                e.u8(0);
                e.u64(taxi.0);
                e.u64(*frame);
            }
            DispatchError::RequestNotPending { request, frame } => {
                e.u8(1);
                e.u64(request.0);
                e.u64(*frame);
            }
            DispatchError::PrecomputeFailed { frame, message } => {
                e.u8(2);
                e.u64(*frame);
                e.str(message);
            }
        }
    }

    e.u64(r.degradations.len() as u64);
    for ev in &r.degradations {
        e.u64(ev.frame);
        e.u8(tier_tag(ev.degraded.from));
        e.u8(tier_tag(ev.degraded.to));
        match ev.degraded.reason {
            DegradeReason::DeadlineExceeded { stage } => {
                e.u8(0);
                e.str(stage);
            }
            DegradeReason::NodeCapReached { nodes } => {
                e.u8(1);
                e.u64(nodes);
            }
        }
    }

    for buckets in [&r.delay_by_hour, &r.passenger_by_hour, &r.taxi_by_hour] {
        for b in buckets.iter() {
            e.f64(b.sum);
            e.u64(b.count as u64);
        }
    }
}

fn decode_report(d: &mut Dec<'_>) -> Result<SimReport, CkptError> {
    let policy = d.str()?;
    let trace = d.str()?;
    let served = d.u64()? as usize;
    let unserved_at_end = d.u64()? as usize;
    let frames = d.u64()?;
    let delays_min = decode_f64s(d)?;
    let passenger_dissatisfaction = decode_f64s(d)?;
    let taxi_dissatisfaction = decode_f64s(d)?;
    let shared_requests = d.u64()? as usize;
    let total_drive_km = d.f64()?;
    let n = d.len_prefix(4)?;
    let mut queue_by_frame = Vec::with_capacity(n);
    for _ in 0..n {
        queue_by_frame.push(d.u32()?);
    }
    let n = d.len_prefix(4)?;
    let mut idle_by_frame = Vec::with_capacity(n);
    for _ in 0..n {
        idle_by_frame.push(d.u32()?);
    }
    // Telemetry restarts empty on resume (see `encode_report`).
    let dispatch_ms_by_frame = Vec::new();
    let stage_breakdown = StageBreakdown::new();
    let slo_events = Vec::new();

    let faults = decode_fault_counters(d)?;

    let n = d.len_prefix(9)?;
    let mut dispatch_errors = Vec::with_capacity(n);
    for _ in 0..n {
        dispatch_errors.push(match d.u8()? {
            0 => DispatchError::UnknownTaxi {
                taxi: TaxiId(d.u64()?),
                frame: d.u64()?,
            },
            1 => DispatchError::RequestNotPending {
                request: RequestId(d.u64()?),
                frame: d.u64()?,
            },
            2 => DispatchError::PrecomputeFailed {
                frame: d.u64()?,
                message: d.str()?,
            },
            t => {
                return Err(CkptError::Malformed(format!(
                    "unknown dispatch-error tag {t}"
                )))
            }
        });
    }

    let n = d.len_prefix(11)?;
    let mut degradations = Vec::with_capacity(n);
    for _ in 0..n {
        let frame = d.u64()?;
        let from = tier_from_tag(d.u8()?)?;
        let to = tier_from_tag(d.u8()?)?;
        let reason = match d.u8()? {
            0 => DegradeReason::DeadlineExceeded {
                stage: intern_stage(&d.str()?),
            },
            1 => DegradeReason::NodeCapReached { nodes: d.u64()? },
            t => {
                return Err(CkptError::Malformed(format!(
                    "unknown degrade-reason tag {t}"
                )))
            }
        };
        degradations.push(DegradationEvent {
            frame,
            degraded: Degraded { from, to, reason },
        });
    }

    let mut buckets = [[HourBucket::default(); 24]; 3];
    for series in &mut buckets {
        for b in series.iter_mut() {
            b.sum = d.f64()?;
            b.count = d.u64()? as usize;
        }
    }
    let [delay_by_hour, passenger_by_hour, taxi_by_hour] = buckets;

    Ok(SimReport {
        policy,
        trace,
        served,
        unserved_at_end,
        frames,
        delays_min,
        passenger_dissatisfaction,
        taxi_dissatisfaction,
        shared_requests,
        total_drive_km,
        queue_by_frame,
        idle_by_frame,
        dispatch_ms_by_frame,
        stage_breakdown,
        faults,
        dispatch_errors,
        degradations,
        slo_events,
        delay_by_hour,
        passenger_by_hour,
        taxi_by_hour,
    })
}

fn encode_f64s(e: &mut Enc, xs: &[f64]) {
    e.u64(xs.len() as u64);
    e.buf.reserve(xs.len() * 8);
    for &x in xs {
        e.f64(x);
    }
}

fn decode_f64s(d: &mut Dec<'_>) -> Result<Vec<f64>, CkptError> {
    let n = d.len_prefix(8)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.f64()?);
    }
    Ok(v)
}

fn encode_fault_counters(e: &mut Enc, c: &FaultCounters) {
    e.u64(c.taxi_dropouts);
    e.u64(c.request_cancellations);
    e.u64(c.gps_faults);
    e.u64(c.duplicate_records);
    e.u64(c.malformed_records);
    e.u64(c.mid_dispatch_cancellations);
    e.u64(c.mid_dispatch_dropouts);
    e.u64(c.quarantined_arrivals);
    e.u64(c.recovered_dispatch_errors);
    e.f64(c.recovery_ms);
}

fn decode_fault_counters(d: &mut Dec<'_>) -> Result<FaultCounters, CkptError> {
    Ok(FaultCounters {
        taxi_dropouts: d.u64()?,
        request_cancellations: d.u64()?,
        gps_faults: d.u64()?,
        duplicate_records: d.u64()?,
        malformed_records: d.u64()?,
        mid_dispatch_cancellations: d.u64()?,
        mid_dispatch_dropouts: d.u64()?,
        quarantined_arrivals: d.u64()?,
        recovered_dispatch_errors: d.u64()?,
        recovery_ms: d.f64()?,
    })
}

fn tier_tag(t: DispatchTier) -> u8 {
    match t {
        DispatchTier::NstdT => 0,
        DispatchTier::NstdP => 1,
        DispatchTier::GreedyNearest => 2,
        DispatchTier::FullEnumeration => 3,
        DispatchTier::PartialEnumeration => 4,
    }
}

fn tier_from_tag(t: u8) -> Result<DispatchTier, CkptError> {
    Ok(match t {
        0 => DispatchTier::NstdT,
        1 => DispatchTier::NstdP,
        2 => DispatchTier::GreedyNearest,
        3 => DispatchTier::FullEnumeration,
        4 => DispatchTier::PartialEnumeration,
        _ => return Err(CkptError::Malformed(format!("unknown tier tag {t}"))),
    })
}

/// Maps a serialized deadline stage back to the `&'static str` the
/// [`DegradeReason`] type requires. Every stage the current ladder emits
/// is matched; an unrecognized name (a checkpoint written by a future
/// build) is leaked once — bounded by the handful of distinct stage
/// names a format version can introduce.
fn intern_stage(s: &str) -> &'static str {
    match s {
        "before preference construction" => "before preference construction",
        "after preference construction" => "after preference construction",
        "during enumeration" => "during enumeration",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

// ---------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------

impl SimReport {
    /// A digest over every *result* field of the report — the fields a
    /// crash-free rerun reproduces exactly. Two runs of the same
    /// `(trace, policy, config, fault plan)` have equal digests; so do
    /// an uninterrupted run and a kill/resume run.
    ///
    /// Excluded, deliberately: wall-clock measurements
    /// ([`dispatch_ms_by_frame`](SimReport::dispatch_ms_by_frame),
    /// [`FaultCounters::recovery_ms`], stage timings) and the
    /// [`stage_breakdown`](SimReport::stage_breakdown) telemetry, whose
    /// cache counters legitimately differ after a resume (the policy
    /// restarts cold; the warm==cold invariant fixes its *results*, not
    /// its cache hit pattern). [`slo_events`](SimReport::slo_events) is
    /// excluded for the same reason: breaches are wall-clock-derived and
    /// a resume restarts the monitor's windows.
    #[must_use]
    pub fn deterministic_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.policy);
        h.str(&self.trace);
        h.u64(self.served as u64);
        h.u64(self.unserved_at_end as u64);
        h.u64(self.frames);
        for series in [
            &self.delays_min,
            &self.passenger_dissatisfaction,
            &self.taxi_dissatisfaction,
        ] {
            h.u64(series.len() as u64);
            for &x in series.iter() {
                h.f64(x);
            }
        }
        h.u64(self.shared_requests as u64);
        h.f64(self.total_drive_km);
        for &q in &self.queue_by_frame {
            h.u64(u64::from(q));
        }
        for &q in &self.idle_by_frame {
            h.u64(u64::from(q));
        }
        hash_fault_counters(&mut h, &self.faults);
        for err in &self.dispatch_errors {
            h.str(&err.to_string());
        }
        for ev in &self.degradations {
            h.u64(ev.frame);
            h.u64(u64::from(tier_tag(ev.degraded.from)));
            h.u64(u64::from(tier_tag(ev.degraded.to)));
            h.str(&ev.degraded.reason.to_string());
        }
        for buckets in [
            &self.delay_by_hour,
            &self.passenger_by_hour,
            &self.taxi_by_hour,
        ] {
            for b in buckets.iter() {
                h.f64(b.sum);
                h.u64(b.count as u64);
            }
        }
        h.finish()
    }
}

/// Hashes every fault counter except the wall-clock `recovery_ms`.
fn hash_fault_counters(h: &mut Fnv, c: &FaultCounters) {
    h.u64(c.taxi_dropouts);
    h.u64(c.request_cancellations);
    h.u64(c.gps_faults);
    h.u64(c.duplicate_records);
    h.u64(c.malformed_records);
    h.u64(c.mid_dispatch_cancellations);
    h.u64(c.mid_dispatch_dropouts);
    h.u64(c.quarantined_arrivals);
    h.u64(c.recovered_dispatch_errors);
}

impl EngineState {
    /// A cheap per-frame digest over the engine's *result* state — what
    /// the WAL records after each frame and what replay re-derives. Like
    /// [`SimReport::deterministic_digest`], wall-clock and telemetry
    /// fields are excluded so a cold-restarted replay matches.
    pub(crate) fn frame_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.frame);
        h.u64(self.next_request as u64);
        h.u64(self.report.served as u64);
        h.u64(self.report.unserved_at_end as u64);
        h.f64(self.report.total_drive_km);
        h.u64(self.report.delays_min.len() as u64);
        if let Some(&d) = self.report.delays_min.last() {
            h.f64(d);
        }
        // The pending queue is summarized (length + both ends), not
        // walked: at full scale the backlog reaches thousands of
        // entries and a full walk per frame would put the digest on the
        // wrong side of the ≤3% overhead budget. Any dispatch
        // divergence reorders pops within a frame or two, so the
        // summary still trips; full queue content is covered by the
        // checkpoint checksum and the end-of-run report digest.
        h.u64(self.pending.len() as u64);
        if let Some(&(r, admitted)) = self.pending.front() {
            h.u64(r.id.0);
            h.u64(admitted);
        }
        if let Some(&(r, admitted)) = self.pending.back() {
            h.u64(r.id.0);
            h.u64(admitted);
        }
        for t in &self.taxis {
            h.u64(t.free_at);
            h.f64(t.location.x);
            h.f64(t.location.y);
        }
        hash_fault_counters(&mut h, &self.report.faults);
        h.finish()
    }
}

// ---------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------

/// A checkpoint loaded back from disk: the engine state at a frame
/// boundary plus the run identity it was written under.
#[derive(Debug)]
pub struct Checkpoint {
    pub(crate) state: EngineState,
    pub(crate) fingerprint: u64,
}

impl Checkpoint {
    /// The frame boundary the checkpoint captured (frames `0..frame`
    /// are included).
    #[must_use]
    pub fn frame(&self) -> u64 {
        self.state.frame
    }

    /// Policy display name the run used.
    #[must_use]
    pub fn policy(&self) -> &str {
        &self.state.report.policy
    }

    /// Trace name the run used.
    #[must_use]
    pub fn trace(&self) -> &str {
        &self.state.report.trace
    }

    /// Requests served up to the checkpointed frame.
    #[must_use]
    pub fn served(&self) -> usize {
        self.state.report.served
    }
}

fn ckpt_file_name(frame: u64) -> String {
    format!("ckpt-{frame:012}.o2oc")
}

/// Checkpoint files in `dir`, newest (highest frame) first. Non-ckpt
/// files are ignored.
///
/// # Errors
///
/// Propagates directory-listing I/O failures.
pub fn checkpoint_files(dir: &Path) -> Result<Vec<PathBuf>, CkptError> {
    let mut files: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("ckpt-") && name.ends_with(".o2oc") {
            files.push(path);
        }
    }
    // Zero-padded frame numbers sort lexicographically; newest first.
    files.sort();
    files.reverse();
    Ok(files)
}

/// Encodes a checkpoint into `out`, reusing its capacity. A run writes
/// one checkpoint per interval, each a few hundred kilobytes at full
/// scale; rebuilding that buffer from scratch every time (with its
/// doubling-growth copies, plus a second copy assembling sections into
/// the framed file) was the single largest slice of checkpoint overhead.
/// Sections are framed in place instead: the length prefix is reserved,
/// the payload encoded directly into `out`, and the prefix patched once
/// the payload's true size is known.
fn encode_checkpoint_into(st: &EngineState, fingerprint: u64, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&CKPT_MAGIC);
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    out.extend_from_slice(&2u32.to_le_bytes()); // section count

    // Meta section: fixed-size payload, framed directly.
    out.extend_from_slice(&SEC_META.to_le_bytes());
    out.extend_from_slice(&16u64.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&st.frame.to_le_bytes());

    // State section: reserve the length slot, encode in place, patch.
    out.extend_from_slice(&SEC_STATE.to_le_bytes());
    let len_at = out.len();
    out.extend_from_slice(&0u64.to_le_bytes());
    let payload_start = out.len();
    let mut e = Enc {
        buf: std::mem::take(out),
    };
    encode_state(&mut e, st);
    *out = e.buf;
    let payload_len = (out.len() - payload_start) as u64;
    out[len_at..len_at + 8].copy_from_slice(&payload_len.to_le_bytes());

    let checksum = fnv1a64(out);
    out.extend_from_slice(&checksum.to_le_bytes());
}

fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
    if bytes.len() < 4 {
        return Err(CkptError::Truncated);
    }
    if bytes[..4] != CKPT_MAGIC {
        return Err(CkptError::BadMagic);
    }
    if bytes.len() < 4 + 4 + 4 + 8 {
        return Err(CkptError::Truncated);
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    let recorded = u64::from_le_bytes(footer.try_into().unwrap());
    if fnv1a64(body) != recorded {
        return Err(CkptError::ChecksumMismatch);
    }
    let mut d = Dec::new(&body[4..]);
    let version = d.u32()?;
    if version != CKPT_VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let sections = d.u32()?;
    let mut meta: Option<&[u8]> = None;
    let mut state: Option<&[u8]> = None;
    for _ in 0..sections {
        let tag = d.u32()?;
        let len = d.u64()? as usize;
        let payload = d.take(len)?;
        match tag {
            SEC_META => meta = Some(payload),
            SEC_STATE => state = Some(payload),
            // Unknown sections from a same-version writer extension are
            // skipped: the format is self-describing.
            _ => {}
        }
    }
    if !d.done() {
        return Err(CkptError::Malformed("trailing bytes after sections".into()));
    }
    let meta = meta.ok_or_else(|| CkptError::Malformed("missing META section".into()))?;
    let state = state.ok_or_else(|| CkptError::Malformed("missing STATE section".into()))?;

    let mut md = Dec::new(meta);
    let fingerprint = md.u64()?;
    let meta_frame = md.u64()?;

    let mut sd = Dec::new(state);
    let engine = decode_state(&mut sd)?;
    if !sd.done() {
        return Err(CkptError::Malformed("trailing bytes in STATE".into()));
    }
    if engine.frame != meta_frame {
        return Err(CkptError::Malformed(format!(
            "META frame {meta_frame} != STATE frame {}",
            engine.frame
        )));
    }
    Ok(Checkpoint {
        state: engine,
        fingerprint,
    })
}

/// Loads and fully validates one checkpoint file.
///
/// # Errors
///
/// Every corruption mode is a typed [`CkptError`] — truncation, a
/// flipped bit anywhere (checksum), an unknown version, an empty file —
/// never a panic.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, CkptError> {
    let bytes = fs::read(path)?;
    decode_checkpoint(&bytes)
}

/// The newest checkpoint in `dir` that loads and verifies, with the
/// files that failed on the way down (newest first) so callers can log
/// or delete them. Returns `Ok(None)` when no file validates (including
/// an empty or missing directory).
///
/// # Errors
///
/// Propagates only directory-listing I/O failures; per-file read or
/// validation failures trigger fallback instead.
pub fn latest_valid_checkpoint(dir: &Path) -> Result<Option<(PathBuf, Checkpoint)>, CkptError> {
    if !dir.exists() {
        return Ok(None);
    }
    for path in checkpoint_files(dir)? {
        if let Ok(ckpt) = load_checkpoint(&path) {
            return Ok(Some((path, ckpt)));
        }
    }
    Ok(None)
}

fn write_checkpoint(
    dir: &Path,
    st: &EngineState,
    fingerprint: u64,
    sync: bool,
    scratch: &mut Vec<u8>,
) -> Result<PathBuf, CkptError> {
    encode_checkpoint_into(st, fingerprint, scratch);
    let bytes = &*scratch;
    let final_path = dir.join(ckpt_file_name(st.frame));
    let tmp_path = dir.join(format!("{}.tmp", ckpt_file_name(st.frame)));
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(bytes)?;
        if sync {
            f.sync_all()?;
        }
    }
    // The rename is the commit point: a crash before it leaves at most a
    // stale .tmp file the loader never looks at; a crash after it leaves
    // a fully written, checksummed file.
    fs::rename(&tmp_path, &final_path)?;
    if sync {
        // Persist the rename itself.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(final_path)
}

// ---------------------------------------------------------------------
// Frame WAL
// ---------------------------------------------------------------------

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("frames.o2ow")
}

fn wal_record_bytes(frame: u64, digest: u64) -> [u8; WAL_RECORD] {
    let mut rec = [0u8; WAL_RECORD];
    rec[..8].copy_from_slice(&frame.to_le_bytes());
    rec[8..16].copy_from_slice(&digest.to_le_bytes());
    let crc = fnv1a64(&rec[..16]);
    rec[16..].copy_from_slice(&crc.to_le_bytes());
    rec
}

/// The WAL's valid `(frame, digest)` records, in file order. A missing
/// file is an empty WAL; a torn or corrupt tail (short final record,
/// failed per-record checksum) ends the valid prefix silently — that is
/// exactly the crash-mid-append case the format is built for.
fn read_wal(dir: &Path) -> Result<Vec<(u64, u64)>, CkptError> {
    let path = wal_path(dir);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 8 || bytes[..4] != WAL_MAGIC {
        return Ok(Vec::new());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for rec in bytes[8..].chunks(WAL_RECORD) {
        if rec.len() < WAL_RECORD {
            break; // torn final record
        }
        let frame = u64::from_le_bytes(rec[..8].try_into().unwrap());
        let digest = u64::from_le_bytes(rec[8..16].try_into().unwrap());
        let crc = u64::from_le_bytes(rec[16..].try_into().unwrap());
        if fnv1a64(&rec[..16]) != crc {
            break; // corrupt tail
        }
        out.push((frame, digest));
    }
    Ok(out)
}

/// Frames recorded in `dir`'s WAL (the replay distance a resume from the
/// latest checkpoint would cover). Exposed for the recovery benchmarks.
///
/// # Errors
///
/// Propagates I/O failures other than a missing WAL.
pub fn wal_frames(dir: &Path) -> Result<Vec<u64>, CkptError> {
    Ok(read_wal(dir)?.into_iter().map(|(f, _)| f).collect())
}

/// Truncates the WAL back to a bare header (called right after a
/// checkpoint commits — the checkpoint now covers those frames).
fn reset_wal(dir: &Path, sync: bool) -> Result<File, CkptError> {
    let mut f = File::create(wal_path(dir))?;
    f.write_all(&WAL_MAGIC)?;
    f.write_all(&WAL_VERSION.to_le_bytes())?;
    if sync {
        f.sync_all()?;
    }
    Ok(f)
}

fn open_wal_append(dir: &Path, sync: bool) -> Result<File, CkptError> {
    let path = wal_path(dir);
    let needs_header = !path.exists();
    let mut f = OpenOptions::new().create(true).append(true).open(&path)?;
    if needs_header {
        f.write_all(&WAL_MAGIC)?;
        f.write_all(&WAL_VERSION.to_le_bytes())?;
        if sync {
            f.sync_all()?;
        }
    }
    Ok(f)
}

// ---------------------------------------------------------------------
// The checkpointed run loop
// ---------------------------------------------------------------------

/// Where and how often a checkpointed run persists its state.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Directory for checkpoint files and the frame WAL (created if
    /// absent). One run per directory.
    pub dir: PathBuf,
    /// Frames between checkpoints (the WAL covers the gap).
    pub interval: u64,
    /// Checkpoint files retained (at least 2, so a torn newest file
    /// always leaves a fallback).
    pub keep: usize,
    /// Fsync checkpoint files and WAL appends. Off by default: the
    /// atomic-rename protocol already survives process kills; fsync
    /// additionally survives power loss at a real throughput cost.
    pub sync: bool,
    /// Crash-injection hook: stop (as if killed) after executing this
    /// many frames *in this process*, leaving the directory exactly as a
    /// SIGKILL at that frame boundary would. `None` runs to completion.
    pub stop_after_frames: Option<u64>,
}

impl CheckpointSpec {
    /// A spec with the default cadence: checkpoint every 128 frames,
    /// keep 2, no fsync. The default interval is set where the recovery
    /// benchmark (`fig_recovery`) shows checkpointing costs well under
    /// 3% of run time while replaying a full interval's WAL after a
    /// crash still takes well under a second.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            dir: dir.into(),
            interval: 128,
            keep: 2,
            sync: false,
            stop_after_frames: None,
        }
    }

    /// Sets the checkpoint interval in frames.
    #[must_use]
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval;
        self
    }

    /// Sets how many checkpoint files to retain.
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }

    /// Enables fsync on checkpoint commit and WAL header writes.
    #[must_use]
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self
    }

    /// Arms the crash-injection hook (see
    /// [`stop_after_frames`](Self::stop_after_frames)).
    #[must_use]
    pub fn with_stop_after_frames(mut self, frames: u64) -> Self {
        self.stop_after_frames = Some(frames);
        self
    }

    fn validate(&self) -> Result<(), CkptError> {
        if self.interval == 0 {
            return Err(CkptError::BadSpec("interval must be at least 1".into()));
        }
        if self.keep < 2 {
            return Err(CkptError::BadSpec(
                "keep must be at least 2 (torn-write fallback)".into(),
            ));
        }
        Ok(())
    }
}

/// How a checkpointed run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// The simulation ran to its natural end; the report is final.
    Completed(Box<SimReport>),
    /// The crash-injection hook fired: the process "died" at this frame
    /// boundary. Re-invoking [`Simulator::run_checkpointed`] with the
    /// same directory (and a fresh policy) resumes from here.
    Stopped {
        /// The next frame the resumed run will execute.
        frame: u64,
    },
}

impl RunOutcome {
    /// The completed report, if the run finished.
    #[must_use]
    pub fn report(self) -> Option<SimReport> {
        match self {
            RunOutcome::Completed(r) => Some(*r),
            RunOutcome::Stopped { .. } => None,
        }
    }
}

impl Simulator {
    /// Identity of a `(trace, policy, config, fault plan)` combination;
    /// a checkpoint only resumes a run with the same fingerprint.
    fn run_fingerprint(&self, trace: &Trace, policy_name: &str) -> u64 {
        let mut e = Enc::default();
        e.str(policy_name);
        e.str(&trace.name);
        e.u64(trace.requests.len() as u64);
        e.u64(trace.taxis.len() as u64);
        e.str(&format!("{:?}", self.config()));
        e.str(&format!("{:?}", self.fault_plan()));
        fnv1a64(&e.buf)
    }

    /// [`run_checkpointed_with_metric`](Self::run_checkpointed_with_metric)
    /// over straight-line ([`Euclidean`]) distances.
    ///
    /// # Errors
    ///
    /// See [`run_checkpointed_with_metric`](Self::run_checkpointed_with_metric).
    pub fn run_checkpointed<P: DispatchPolicy>(
        &self,
        trace: &Trace,
        policy: &mut P,
        spec: &CheckpointSpec,
    ) -> Result<RunOutcome, CkptError> {
        self.run_checkpointed_with_metric(&Euclidean, trace, policy, spec)
    }

    /// Runs like [`run_with_metric`](Self::run_with_metric), but
    /// checkpoints the engine state every [`CheckpointSpec::interval`]
    /// frames and WALs every frame in between, resuming from the
    /// directory's latest valid checkpoint if one exists.
    ///
    /// On resume, pass a **fresh** policy: the engine replays the WAL's
    /// frames (verifying each against the recorded digest) and then
    /// continues; the final report is bit-identical to an uninterrupted
    /// run on every result field (see
    /// [`SimReport::deterministic_digest`]).
    ///
    /// # Errors
    ///
    /// I/O failures, an invalid spec, a checkpoint from a different run
    /// ([`CkptError::Mismatch`]), or a WAL replay that does not
    /// reproduce the recorded digests
    /// ([`CkptError::ReplayDivergence`]). Corrupt checkpoint *files*
    /// are not errors here — the loader falls back past them.
    pub fn run_checkpointed_with_metric<M: Metric, P: DispatchPolicy>(
        &self,
        metric: &M,
        trace: &Trace,
        policy: &mut P,
        spec: &CheckpointSpec,
    ) -> Result<RunOutcome, CkptError> {
        spec.validate()?;
        fs::create_dir_all(&spec.dir)?;
        let fingerprint = self.run_fingerprint(trace, policy.name());

        let mut state = match latest_valid_checkpoint(&spec.dir)? {
            Some((path, ckpt)) => {
                if ckpt.fingerprint != fingerprint {
                    return Err(CkptError::Mismatch(format!(
                        "{} was written by a different (trace, policy, config, fault plan)",
                        path.display()
                    )));
                }
                ckpt.state
            }
            None => EngineState::new(trace, policy.name(), self.fault_plan().copied()),
        };
        let mut scratch = self.new_scratch(trace);

        let mut steps_this_process = 0u64;
        let stopped = |steps: u64| spec.stop_after_frames.is_some_and(|cap| steps >= cap);

        // Replay the frames the dead process executed past the
        // checkpoint. Replay is re-execution (the engine is
        // deterministic); the WAL's role is to *verify* each replayed
        // frame against the digest the original process recorded.
        let mut running = true;
        for (frame, digest) in read_wal(&spec.dir)? {
            if frame < state.frame {
                continue; // covered by the checkpoint already
            }
            if frame != state.frame || !running {
                break; // stale or gapped tail — stop trusting it
            }
            running = self.step_frame(metric, trace, policy, &mut state, &mut scratch);
            let got = state.frame_digest();
            if got != digest {
                return Err(CkptError::ReplayDivergence {
                    frame,
                    expected: digest,
                    got,
                });
            }
            steps_this_process += 1;
            if stopped(steps_this_process) {
                return Ok(RunOutcome::Stopped { frame: state.frame });
            }
        }

        let mut wal = open_wal_append(&spec.dir, spec.sync)?;
        let mut ckpt_buf = Vec::new();
        // WAL records are buffered and flushed in small batches (and on
        // every exit path below, so an in-process stop never loses
        // records). A real SIGKILL can lose at most the unflushed tail —
        // which only moves the resume point a few frames back; replay
        // re-executes them and the result is unchanged. `sync` mode
        // flushes every frame: durability per frame is the point there.
        const WAL_BATCH: usize = 32;
        let mut wal_buf: Vec<u8> = Vec::with_capacity(WAL_BATCH * WAL_RECORD);
        // Checkpoints written (oldest first) — pruning works off this
        // list instead of re-listing the directory every interval.
        let mut on_disk: Vec<PathBuf> = {
            let mut files = checkpoint_files(&spec.dir)?;
            files.reverse();
            files
        };
        // Cumulative time inside checkpoint machinery (digest, WAL
        // append, checkpoint write/prune). Published as the
        // `ckpt_machinery_us` counter so the recovery benchmark can
        // measure overhead directly instead of differencing two whole
        // runs — on a loaded machine the latter drifts by more than the
        // overhead being measured.
        let mut machinery = std::time::Duration::ZERO;
        while running {
            running = self.step_frame(metric, trace, policy, &mut state, &mut scratch);
            let t0 = std::time::Instant::now();
            let executed = state.frame - 1;
            wal_buf.extend_from_slice(&wal_record_bytes(executed, state.frame_digest()));
            if spec.sync {
                wal.write_all(&wal_buf)?;
                wal_buf.clear();
                wal.sync_data()?;
            } else if wal_buf.len() >= WAL_BATCH * WAL_RECORD {
                wal.write_all(&wal_buf)?;
                wal_buf.clear();
            }
            steps_this_process += 1;

            if running && state.frame % spec.interval == 0 {
                // Frames buffered for the WAL are covered by this
                // checkpoint; they never need to reach the old WAL.
                wal_buf.clear();
                on_disk.push(write_checkpoint(
                    &spec.dir,
                    &state,
                    fingerprint,
                    spec.sync,
                    &mut ckpt_buf,
                )?);
                while on_disk.len() > spec.keep.max(1) {
                    let _ = fs::remove_file(on_disk.remove(0));
                }
                wal = reset_wal(&spec.dir, spec.sync)?;
            }
            let spent = t0.elapsed();
            machinery += spent;
            // Surface checkpoint cost to the live SLO monitor: the next
            // dispatched frame's observation drains this accumulator into
            // its `ckpt_ms` (the checkpoint-overhead metric's numerator).
            scratch.slo_ckpt_ms += spent.as_secs_f64() * 1e3;
            if stopped(steps_this_process) && running {
                wal.write_all(&wal_buf)?;
                self.recorder()
                    .add("ckpt_machinery_us", machinery.as_micros() as u64);
                return Ok(RunOutcome::Stopped { frame: state.frame });
            }
        }
        wal.write_all(&wal_buf)?;
        self.recorder()
            .add("ckpt_machinery_us", machinery.as_micros() as u64);
        Ok(RunOutcome::Completed(Box::new(self.finish(state))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use crate::policy;
    use o2o_core::PreferenceParams;
    use o2o_trace::boston_september_2012;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("o2o-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn engine_state_round_trips_through_bytes() {
        let trace = boston_september_2012(0.002).generate(5);
        let sim = Simulator::new(SimConfig::default()).with_fault_plan(FaultPlan::uniform(3, 0.05));
        let mut p = policy::nstd_p(o2o_geo::Euclidean, PreferenceParams::default());
        // Drive the engine a few frames to populate every state field.
        let mut st = EngineState::new(&trace, p.name(), sim.fault_plan().copied());
        let mut sc = sim.new_scratch(&trace);
        for _ in 0..30 {
            if !sim.step_frame(&o2o_geo::Euclidean, &trace, &mut p, &mut st, &mut sc) {
                break;
            }
        }
        let mut e = Enc::default();
        encode_state(&mut e, &st);
        let mut d = Dec::new(&e.buf);
        let back = decode_state(&mut d).expect("state decodes");
        assert!(d.done(), "decoder consumed every byte");
        assert_eq!(back.frame, st.frame);
        assert_eq!(back.next_request, st.next_request);
        assert_eq!(back.taxis, st.taxis);
        assert_eq!(back.pending, st.pending);
        assert_eq!(back.admitted_ids, st.admitted_ids);
        assert_eq!(back.prev_idle_ids, st.prev_idle_ids);
        assert_eq!(back.prev_batch_ids, st.prev_batch_ids);
        assert_eq!(back.report.served, st.report.served);
        assert_eq!(back.report.delays_min, st.report.delays_min);
        assert_eq!(back.report.faults, st.report.faults);
        assert_eq!(back.frame_digest(), st.frame_digest());
        // And the re-encoded bytes are identical (canonical encoding).
        let mut e2 = Enc::default();
        encode_state(&mut e2, &back);
        assert_eq!(e.buf, e2.buf);
    }

    #[test]
    fn checkpoint_write_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let trace = boston_september_2012(0.002).generate(7);
        let st = EngineState::new(&trace, "NSTD-P", None);
        let path = write_checkpoint(&dir, &st, 0xfeed, false, &mut Vec::new()).unwrap();
        let ckpt = load_checkpoint(&path).unwrap();
        assert_eq!(ckpt.frame(), 0);
        assert_eq!(ckpt.fingerprint, 0xfeed);
        assert_eq!(ckpt.trace(), trace.name);
        let found = latest_valid_checkpoint(&dir).unwrap().expect("present");
        assert_eq!(found.0, path);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_survives_torn_tail() {
        let dir = tmp_dir("wal");
        let mut f = reset_wal(&dir, false).unwrap();
        f.write_all(&wal_record_bytes(0, 11)).unwrap();
        f.write_all(&wal_record_bytes(1, 22)).unwrap();
        // Torn final record: only half written before the "crash".
        f.write_all(&wal_record_bytes(2, 33)[..10]).unwrap();
        drop(f);
        assert_eq!(read_wal(&dir).unwrap(), vec![(0, 11), (1, 22)]);
        assert_eq!(wal_frames(&dir).unwrap(), vec![0, 1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_rejects_corrupt_record_and_trusts_prefix() {
        let dir = tmp_dir("wal-corrupt");
        let mut f = reset_wal(&dir, false).unwrap();
        f.write_all(&wal_record_bytes(0, 1)).unwrap();
        let mut bad = wal_record_bytes(1, 2);
        bad[9] ^= 0x40; // flip a digest bit; crc no longer matches
        f.write_all(&bad).unwrap();
        f.write_all(&wal_record_bytes(2, 3)).unwrap();
        drop(f);
        // The corrupt record ends the trusted prefix even though a valid
        // record follows it.
        assert_eq!(read_wal(&dir).unwrap(), vec![(0, 1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_validation_rejects_degenerate_values() {
        let spec = CheckpointSpec::new("/tmp/x").with_interval(0);
        assert!(matches!(spec.validate(), Err(CkptError::BadSpec(_))));
        let spec = CheckpointSpec::new("/tmp/x").with_keep(1);
        assert!(matches!(spec.validate(), Err(CkptError::BadSpec(_))));
        assert!(CheckpointSpec::new("/tmp/x").validate().is_ok());
    }

    #[test]
    fn intern_stage_reuses_known_names() {
        let s = intern_stage("after preference construction");
        assert_eq!(s, "after preference construction");
        let t = intern_stage("during enumeration");
        assert_eq!(t, "during enumeration");
    }
}
