//! Discrete-frame city simulator for taxi dispatch policies.
//!
//! Reproduces the paper's experimental machinery (§VI.A): "taxis are
//! scheduled based on a one minute time frame" at 20 km/h. Each frame the
//! engine admits newly-arrived requests into the pending queue, collects
//! the idle fleet, asks a [`DispatchPolicy`] for assignments, and advances
//! taxis along their routes (a dispatched taxi is busy until it finishes
//! its route, then idles at the final drop-off).
//!
//! Collected metrics are exactly the paper's three:
//!
//! * **dispatch delay** — request sent → taxi dispatched, in minutes,
//! * **passenger dissatisfaction** — `D(t, r^s)` (non-sharing) or
//!   `D_ck(t, r^s) + β·detour` (sharing), in km,
//! * **taxi dissatisfaction** — `D(t, r^s) − α·D(r^s, r^d)` resp.
//!   `D_ck(t) − (α+1)·ΣD`, in km.
//!
//! [`SimReport`] renders them as CDFs (Figs. 4, 5, 8, 9), averages
//! (Fig. 6) and hour-of-day series (Fig. 7).
//!
//! The engine is fault-tolerant: an optional seeded [`FaultPlan`]
//! injects operational churn (taxi dropouts, passenger cancellations,
//! GPS jitter, duplicate and malformed records) that the engine recovers
//! from and tallies in [`FaultCounters`], and a finite
//! [`SimConfig::frame_budget`] makes budget-aware policies step down a
//! degradation ladder (NSTD-T → NSTD-P → greedy-nearest) instead of
//! overrunning their frame, each step recorded as a
//! [`DegradationEvent`].
//!
//! The engine is also observable: each dispatched frame is bracketed by
//! a [`Recorder`] frame window, pipeline stages record spans and
//! counters through it (see `o2o_obs`), and the per-frame stage
//! self-times and counter deltas land in
//! [`SimReport::stage_breakdown`]. The default recorder collects in
//! memory only; [`Simulator::with_recorder`] accepts a sink-bearing one
//! (e.g. JSONL event log) or [`Recorder::disabled`] — dispatch results
//! are bit-identical in every configuration.
//!
//! # Examples
//!
//! ```
//! use o2o_sim::{policy, SimConfig, Simulator};
//! use o2o_core::PreferenceParams;
//! use o2o_geo::Euclidean;
//! use o2o_trace::boston_september_2012;
//!
//! let trace = boston_september_2012(0.001).generate(7);
//! let mut policy = policy::nstd_p(Euclidean, PreferenceParams::default());
//! let report = Simulator::new(SimConfig::default()).run(&trace, &mut policy);
//! assert!(report.served + report.unserved_at_end == trace.requests.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ckpt;
mod engine;
mod fault;
mod metrics;
pub mod policy;
mod report;

pub use ckpt::{
    checkpoint_files, latest_valid_checkpoint, load_checkpoint, wal_frames, Checkpoint,
    CheckpointSpec, CkptError, RunOutcome,
};
pub use engine::{SimConfig, Simulator};
pub use fault::{DegradationEvent, DispatchError, FaultCounters, FaultPlan};
pub use metrics::Cdf;
pub use o2o_obs::{
    FleetMeta, FrameStats, JsonlSink, MemorySink, Recorder, SloBound, SloEvent, SloMetric,
    SloMonitor, SloSpec, StageBreakdown, SummarySink,
};
pub use policy::{
    cached, cached_persistent, CacheLifetime, CachedPolicy, DispatchPolicy, FrameAssignment,
    FrameContext, FrameDelta,
};
pub use report::{HourlySeries, SimReport};
