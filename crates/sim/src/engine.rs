//! The discrete-frame simulation engine.

use crate::fault::{
    DegradationEvent, DispatchError, FaultCounters, FaultPlan, FaultState, MidDispatchFate,
};
use crate::metrics::HourBucket;
use crate::policy::{DispatchPolicy, FrameContext, FrameDelta};
use crate::report::SimReport;
use o2o_core::{PickupDistances, TimeBudgetSpec};
use o2o_geo::{heuristic_cell_size, BBox, Euclidean, IncrementalGrid, Metric, Point};
use o2o_obs::{self as obs, FrameObservation, Recorder, SloMonitor, SloSpec};
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId, Trace};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

/// Churn fraction above which the engine's incremental taxi grid rebuilds
/// from scratch instead of patching (see [`IncrementalGrid`]). At typical
/// per-frame fleet churn (a few percent) the delta path dominates; past
/// roughly a third of the fleet changing, a bulk rebuild is cheaper than
/// item-by-item patching.
const GRID_REBUILD_THRESHOLD: f64 = 0.35;

/// Engine parameters; defaults reproduce the paper's setup (one-minute
/// frames, 20 km/h).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Length of one dispatch frame in seconds (paper: 60).
    pub frame_seconds: u64,
    /// Taxi cruising speed in km/h (paper: 20, from its ref. \[24\]).
    pub taxi_speed_kmh: f64,
    /// How many frames past the last request arrival the engine keeps
    /// draining the pending queue before giving up (prevents an infinite
    /// run when demand permanently exceeds supply).
    pub drain_frames: u64,
    /// Drop a request after waiting this many frames (`None` = passengers
    /// wait indefinitely, as in the paper).
    pub max_pending_frames: Option<u64>,
    /// Cap the batch handed to the policy at this many pending requests
    /// *per idle taxi* (oldest first). A frame can serve at most
    /// `max_group_size × idle` requests, so a generous multiple preserves
    /// choice while bounding the quadratic/cubic sharing stages during
    /// backlogs. `None` passes the whole queue.
    pub max_batch_per_idle: Option<usize>,
    /// Per-frame compute budget handed to the policy via
    /// [`FrameContext::budget`]. The default is unlimited, which leaves
    /// every policy running its normal algorithm; a finite deadline or
    /// node cap makes budget-aware policies (the NSTD family) step down
    /// the degradation ladder and report it on
    /// [`SimReport::degradations`]. The budget clock starts when the
    /// frame's dispatch work (precomputation included) starts.
    pub frame_budget: TimeBudgetSpec,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            frame_seconds: 60,
            taxi_speed_kmh: 20.0,
            drain_frames: 720,
            max_pending_frames: None,
            max_batch_per_idle: Some(8),
            frame_budget: TimeBudgetSpec::default(),
        }
    }
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.frame_seconds == 0 {
            return Err("frame_seconds must be positive".into());
        }
        if !(self.taxi_speed_kmh.is_finite() && self.taxi_speed_kmh > 0.0) {
            return Err(format!(
                "taxi_speed_kmh must be positive, got {}",
                self.taxi_speed_kmh
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TaxiState {
    pub(crate) template: Taxi,
    pub(crate) location: Point,
    pub(crate) free_at: u64,
}

/// Everything the engine carries across a frame boundary.
///
/// This is the complete resume surface: a run restored from a serialized
/// `EngineState` (see [`crate::ckpt`]) continues bit-identically to one
/// that never stopped, because every other per-frame structure is either
/// scratch (rebuilt from scratch each frame — see [`Scratch`]) or policy
/// warm state (deterministically rebuilt by the warm==cold invariant the
/// policies guarantee). Wall-clock fields inside the report are the only
/// exception, and the determinism digest excludes them.
#[derive(Debug, Clone)]
pub(crate) struct EngineState {
    pub(crate) taxis: Vec<TaxiState>,
    /// `(request, admission frame)` queue, arrival order.
    pub(crate) pending: VecDeque<(Request, u64)>,
    /// Next index into `trace.requests` to admit.
    pub(crate) next_request: usize,
    pub(crate) report: SimReport,
    /// Injected-fault counter watermark: the `sim.faults_injected`
    /// counter is advanced by the per-frame delta of the cumulative
    /// fault tally (faults land on dispatched and skipped frames
    /// alike; skipped-frame injections attribute to the next
    /// dispatched frame, with any tail flushed after the loop).
    pub(crate) faults_seen: u64,
    pub(crate) fault_state: Option<FaultState>,
    /// Every request id ever admitted, kept only on fault runs: the
    /// admission screen rejects injected duplicates against it.
    pub(crate) admitted_ids: HashSet<RequestId>,
    /// Policy-visible sets of the previous dispatched frame, for
    /// [`FrameDelta`] construction.
    pub(crate) prev_idle_ids: HashSet<TaxiId>,
    pub(crate) prev_batch_ids: HashSet<RequestId>,
    /// The next frame to execute (frames `0..frame` are done).
    pub(crate) frame: u64,
}

impl EngineState {
    pub(crate) fn new(trace: &Trace, policy_name: &str, faults: Option<FaultPlan>) -> Self {
        let taxis: Vec<TaxiState> = trace
            .taxis
            .iter()
            .map(|t| TaxiState {
                template: *t,
                location: t.location,
                free_at: 0,
            })
            .collect();
        let fleet = taxis.len();
        EngineState {
            taxis,
            pending: VecDeque::new(),
            next_request: 0,
            report: SimReport {
                policy: policy_name.to_string(),
                trace: trace.name.clone(),
                served: 0,
                unserved_at_end: 0,
                frames: 0,
                delays_min: Vec::new(),
                passenger_dissatisfaction: Vec::new(),
                taxi_dissatisfaction: Vec::new(),
                shared_requests: 0,
                total_drive_km: 0.0,
                queue_by_frame: Vec::new(),
                idle_by_frame: Vec::new(),
                dispatch_ms_by_frame: Vec::new(),
                stage_breakdown: o2o_obs::StageBreakdown::new(),
                faults: FaultCounters::default(),
                dispatch_errors: Vec::new(),
                degradations: Vec::new(),
                slo_events: Vec::new(),
                delay_by_hour: [HourBucket::default(); 24],
                passenger_by_hour: [HourBucket::default(); 24],
                taxi_by_hour: [HourBucket::default(); 24],
            },
            faults_seen: 0,
            fault_state: faults.map(|plan| FaultState::new(plan, fleet)),
            admitted_ids: HashSet::new(),
            prev_idle_ids: HashSet::new(),
            prev_batch_ids: HashSet::new(),
            frame: 0,
        }
    }
}

/// Reusable per-frame scratch, hoisted so a long run does not
/// re-allocate (and re-free) the same buffers every tick. Nothing here
/// survives a frame as *state*: everything is recomputed before use (the
/// incremental grid is delta-synced to exactly the fresh-build result),
/// so resume after a crash rebuilds it all from the trace without loss.
pub(crate) struct Scratch {
    idle: Vec<Taxi>,
    idle_fleet: Vec<usize>,
    pending_vec: Vec<Request>,
    arrivals: Vec<Request>,
    member_reqs: Vec<Request>,
    cancelled_members: HashSet<RequestId>,
    used_taxis: HashSet<TaxiId>,
    served_ids: HashSet<RequestId>,
    cur_idle_ids: HashSet<TaxiId>,
    cur_batch_ids: HashSet<RequestId>,
    /// Delta-maintained idle-taxi grid: keyed by fleet index across
    /// frames (taxi state transitions patch it in place), remapped to
    /// idle-slice ranks for the policy each frame. Query results are
    /// exactly those of a fresh `build_taxi_grid(&idle)` — asserted in
    /// debug builds.
    inc_grid: IncrementalGrid<usize>,
    desired: Vec<(usize, Point)>,
    fleet_rank: Vec<usize>,
    taxi_index: HashMap<TaxiId, usize>,
    /// Live SLO monitor, fed once per dispatched frame; `None` when the
    /// simulator has no [`SloSpec`]s configured. Scratch (not state): a
    /// resumed run restarts its rolling windows cold, mirroring the
    /// telemetry exclusion in the checkpoint format.
    pub(crate) slo: Option<SloMonitor>,
    /// Arrivals admitted since the monitor was last fed — dispatch-less
    /// frames accumulate here so the served-ratio denominator never
    /// drops admissions that happened between dispatches.
    pub(crate) slo_arrivals: u64,
    /// Checkpoint-machinery milliseconds accumulated since the monitor
    /// was last fed (the checkpoint layer adds after each step, the next
    /// observation drains).
    pub(crate) slo_ckpt_ms: f64,
}

impl Scratch {
    pub(crate) fn new(trace: &Trace) -> Self {
        Scratch {
            idle: Vec::new(),
            idle_fleet: Vec::new(),
            pending_vec: Vec::new(),
            arrivals: Vec::new(),
            member_reqs: Vec::new(),
            cancelled_members: HashSet::new(),
            used_taxis: HashSet::new(),
            served_ids: HashSet::new(),
            cur_idle_ids: HashSet::new(),
            cur_batch_ids: HashSet::new(),
            inc_grid: IncrementalGrid::new(GRID_REBUILD_THRESHOLD),
            desired: Vec::new(),
            fleet_rank: vec![0; trace.taxis.len()],
            taxi_index: trace
                .taxis
                .iter()
                .enumerate()
                .map(|(i, t)| (t.id, i))
                .collect(),
            slo: None,
            slo_arrivals: 0,
            slo_ckpt_ms: 0.0,
        }
    }
}

/// The discrete-frame simulator; see the [crate docs](crate) for the
/// model.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
    par: Parallelism,
    faults: Option<FaultPlan>,
    recorder: Recorder,
    slo: Vec<SloSpec>,
}

impl Simulator {
    /// Creates a simulator. Policy-independent per-frame precomputation
    /// (the idle × pending pick-up distance matrix) defaults to
    /// [`Parallelism::auto`]; thread count never affects results, only
    /// wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        config.validate().expect("invalid simulator configuration");
        Simulator {
            config,
            par: Parallelism::auto(),
            faults: None,
            recorder: Recorder::new(),
            slo: Vec::new(),
        }
    }

    /// Sets the thread count for per-frame precomputation
    /// ([`Parallelism::sequential`] recovers single-threaded behaviour
    /// exactly — results are bit-identical either way).
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Injects faults from `plan` while the simulation runs (see
    /// [`FaultPlan`]). A [`FaultPlan::none`] plan leaves every run
    /// bit-identical to one without a plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        plan.validate().expect("invalid fault plan");
        self.faults = Some(plan);
        self
    }

    /// The fault plan in use, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Replaces the run's [`Recorder`]. The default is an enabled,
    /// sink-less recorder ([`Recorder::new`]), so
    /// [`SimReport::stage_breakdown`] and the cache-effectiveness views
    /// populate on every run without writing an event stream anywhere.
    /// Pass [`Recorder::disabled`] to opt out of telemetry entirely, or
    /// a sink-bearing recorder to stream the event log — dispatch
    /// results are bit-identical in all three configurations.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The recorder the engine threads through every frame.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Installs live SLO specs. Each dispatched frame feeds one
    /// [`FrameObservation`] to a [`SloMonitor`] built from `specs`;
    /// breach/recover transitions land on [`SimReport::slo_events`] and
    /// (when the recorder has a sink) in the event stream as `slo`
    /// records. The monitor only *reads* engine outputs — dispatch
    /// results are bit-identical with or without specs, enabled or
    /// disabled recorder.
    #[must_use]
    pub fn with_slo(mut self, specs: Vec<SloSpec>) -> Self {
        self.slo = specs;
        self
    }

    /// The configured SLO specs (empty unless
    /// [`with_slo`](Self::with_slo) was called).
    #[must_use]
    pub fn slo_specs(&self) -> &[SloSpec] {
        &self.slo
    }

    /// Builds the per-run scratch space, attaching an [`SloMonitor`]
    /// when specs are configured. The checkpoint layer's resume paths
    /// call this too, so a resumed run monitors the same SLOs (with
    /// windows restarted cold).
    pub(crate) fn new_scratch(&self, trace: &Trace) -> Scratch {
        let mut sc = Scratch::new(trace);
        if !self.slo.is_empty() {
            sc.slo = Some(SloMonitor::new(self.slo.clone()));
        }
        sc
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The precomputation thread configuration.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Runs `policy` over `trace` with straight-line driving distances.
    ///
    /// Shorthand for [`run_with_metric`](Self::run_with_metric) with
    /// [`Euclidean`], so the same-metric requirement documented there
    /// applies: the policy must dispatch over Euclidean distances too
    /// (a caching wrapper around `Euclidean` is fine). A policy built
    /// over any other metric must go through `run_with_metric` with that
    /// metric, or the precomputed pick-up matrix would silently mix
    /// Euclidean pick-up distances into its preferences.
    #[must_use]
    pub fn run<P: DispatchPolicy>(&self, trace: &Trace, policy: &mut P) -> SimReport {
        self.run_with_metric(&Euclidean, trace, policy)
    }

    /// Runs `policy` over `trace`, measuring driven distances with
    /// `metric`.
    ///
    /// `metric` must be the metric the policy dispatches with (a
    /// memoizing wrapper over it is fine): besides measuring driven
    /// kilometres, the engine precomputes each frame's idle × pending
    /// pick-up distance matrix with `metric` and hands it to the policy
    /// via [`FrameContext::pickup_distances`], substituting those entries
    /// for the policy's own metric queries. With a mismatched metric the
    /// policy would silently mix `metric`'s pick-up distances with its
    /// own trip distances; preference construction spot-checks a sampled
    /// entry against the policy metric in debug builds.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns a structurally invalid assignment (a
    /// busy or repeated taxi, a repeated request, empty stops, or a
    /// member/cost length mismatch) — these are policy bugs, not
    /// recoverable conditions. Identity failures, by contrast, are
    /// recovered: an assignment naming an unknown taxi or a request that
    /// is no longer pending is skipped and recorded on
    /// [`SimReport::dispatch_errors`] rather than panicking (under fault
    /// injection a request can legitimately vanish between the policy's
    /// decision and its application).
    #[must_use]
    pub fn run_with_metric<M: Metric, P: DispatchPolicy>(
        &self,
        metric: &M,
        trace: &Trace,
        policy: &mut P,
    ) -> SimReport {
        let mut state = EngineState::new(trace, policy.name(), self.faults);
        let mut scratch = self.new_scratch(trace);
        while self.step_frame(metric, trace, policy, &mut state, &mut scratch) {}
        self.finish(state)
    }

    /// Executes exactly one frame (admission, expiry, dispatch, drive,
    /// bookkeeping), advances `st.frame`, and reports whether the run
    /// continues. The split from [`run_with_metric`](Self::run_with_metric)
    /// exists for the checkpoint layer: a resumed run re-enters here at an
    /// arbitrary frame boundary and proceeds bit-identically.
    pub(crate) fn step_frame<M: Metric, P: DispatchPolicy>(
        &self,
        metric: &M,
        trace: &Trace,
        policy: &mut P,
        st: &mut EngineState,
        sc: &mut Scratch,
    ) -> bool {
        let frame_s = self.config.frame_seconds;
        let speed_km_per_s = self.config.taxi_speed_kmh / 3600.0;
        let last_arrival_frame = trace.requests.last().map_or(0, |r| r.time / frame_s);
        let recorder = &self.recorder;

        let EngineState {
            taxis,
            pending,
            next_request,
            report,
            faults_seen,
            fault_state,
            admitted_ids,
            prev_idle_ids,
            prev_batch_ids,
            frame: frame_slot,
        } = st;
        let Scratch {
            idle,
            idle_fleet,
            pending_vec,
            arrivals,
            member_reqs,
            cancelled_members,
            used_taxis,
            served_ids,
            cur_idle_ids,
            cur_batch_ids,
            inc_grid,
            desired,
            fleet_rank,
            taxi_index,
            slo,
            slo_arrivals,
            slo_ckpt_ms,
        } = sc;

        let frame = *frame_slot;
        {
            let time_end = (frame + 1) * frame_s;
            // Admit arrivals.
            match fault_state.as_mut() {
                None => {
                    while *next_request < trace.requests.len()
                        && trace.requests[*next_request].time < time_end
                    {
                        pending.push_back((trace.requests[*next_request], frame));
                        *slo_arrivals += 1;
                        *next_request += 1;
                    }
                }
                Some(fs) => {
                    // Fault runs corrupt the arrival batch (duplicates,
                    // malformed siblings) and then screen every record at
                    // admission: non-finite coordinates, empty parties and
                    // already-seen ids are quarantined, everything else is
                    // admitted exactly as on the clean path.
                    let recovery_started = Instant::now();
                    arrivals.clear();
                    while *next_request < trace.requests.len()
                        && trace.requests[*next_request].time < time_end
                    {
                        arrivals.push(trace.requests[*next_request]);
                        *next_request += 1;
                    }
                    fs.corrupt_arrivals(arrivals, &mut report.faults);
                    for r in arrivals.drain(..) {
                        let finite = r.pickup.x.is_finite()
                            && r.pickup.y.is_finite()
                            && r.dropoff.x.is_finite()
                            && r.dropoff.y.is_finite();
                        if !finite || r.passengers == 0 || !admitted_ids.insert(r.id) {
                            report.faults.quarantined_arrivals += 1;
                        } else {
                            pending.push_back((r, frame));
                            *slo_arrivals += 1;
                        }
                    }
                    // Pending passengers may abandon between frames; the
                    // engine releases them from the queue so no taxi is
                    // ever dispatched to a cancelled request.
                    pending.retain(|_| !fs.cancels_request(&mut report.faults));
                    report.faults.recovery_ms += recovery_started.elapsed().as_secs_f64() * 1e3;
                }
            }
            // Expire over-waited requests, if configured.
            if let Some(cap) = self.config.max_pending_frames {
                let before = pending.len();
                pending.retain(|&(_, admitted)| frame - admitted <= cap);
                report.unserved_at_end += before - pending.len();
            }

            // Collect the idle fleet (fleet order, so grid tie-breaking
            // matches a fresh build exactly). On fault runs, dropped-out
            // taxis are evicted from the pool and reported positions may
            // be GPS-jittered — the true position (used for driving) is
            // untouched, only the policy's view shifts.
            idle.clear();
            idle_fleet.clear();
            for (fi, t) in taxis.iter().enumerate() {
                if t.free_at <= time_end {
                    let location = match fault_state.as_mut() {
                        Some(fs) => {
                            if fs.taxi_offline(fi, frame, &mut report.faults) {
                                continue;
                            }
                            fs.report_position(t.location, &mut report.faults)
                        }
                        None => t.location,
                    };
                    idle_fleet.push(fi);
                    idle.push(Taxi {
                        id: t.template.id,
                        location,
                        seats: t.template.seats,
                    });
                }
            }

            let mut dispatch_ms = 0.0;
            if !idle.is_empty() && !pending.is_empty() {
                let served_before = report.served;
                let batch_cap = self
                    .config
                    .max_batch_per_idle
                    .map_or(usize::MAX, |m| m.saturating_mul(idle.len()));
                pending_vec.clear();
                pending_vec.extend(pending.iter().take(batch_cap).map(|&(r, _)| r));

                // Frame delta relative to the previous dispatched frame,
                // over exactly the sets the policy sees (idle fleet and
                // batch-capped pending queue). Informational: incremental
                // policies size their work from it, but never depend on it
                // for correctness.
                cur_idle_ids.clear();
                cur_idle_ids.extend(idle.iter().map(|t| t.id));
                cur_batch_ids.clear();
                cur_batch_ids.extend(pending_vec.iter().map(|r| r.id));
                let mut delta = FrameDelta::default();
                delta.entered_idle.extend(
                    idle.iter()
                        .map(|t| t.id)
                        .filter(|id| !prev_idle_ids.contains(id)),
                );
                delta
                    .left_idle
                    .extend(prev_idle_ids.difference(cur_idle_ids).copied());
                delta.left_idle.sort_unstable();
                delta.new_requests.extend(
                    pending_vec
                        .iter()
                        .map(|r| r.id)
                        .filter(|id| !prev_batch_ids.contains(id)),
                );
                delta
                    .removed_requests
                    .extend(prev_batch_ids.difference(cur_batch_ids).copied());
                delta.removed_requests.sort_unstable();
                std::mem::swap(prev_idle_ids, cur_idle_ids);
                std::mem::swap(prev_batch_ids, cur_batch_ids);

                // Open the frame's telemetry window and install the
                // recorder as this thread's current one, so pipeline
                // stages without a handle (deferred acceptance,
                // preference construction, the baselines' scans) record
                // through the free functions in `o2o_obs`.
                recorder.begin_frame(frame);
                let _obs_scope = obs::scope(recorder);
                let started = Instant::now();
                // The frame's compute budget starts with the dispatch
                // work, so precomputation time counts against a finite
                // deadline too.
                let budget = self.config.frame_budget.start();
                // Policy-independent precomputation, built only for
                // policies that will read it: the idle × pending pick-up
                // matrix (dense candidate mode), and the idle-taxi grid
                // shared by sparse candidate generation and the
                // grid-accelerated baselines. The grid is maintained
                // incrementally across frames, keyed by fleet index, then
                // remapped to idle-slice ranks (the fleet→rank map is
                // monotone, so query order is preserved). A worker panic
                // in the matrix (even after the sequential retry) skips
                // this frame's dispatch instead of tearing the run down —
                // the requests stay pending and the next frame retries.
                let mut precompute_failed = false;
                let pickup = if policy.wants_pickup_distances() {
                    let _span = obs::span("pickup_matrix");
                    match PickupDistances::try_compute(metric, idle, pending_vec, self.par) {
                        Ok(p) => Some(p),
                        Err(e) => {
                            report
                                .dispatch_errors
                                .push(DispatchError::PrecomputeFailed {
                                    frame,
                                    message: e.to_string(),
                                });
                            report.faults.recovered_dispatch_errors += 1;
                            recorder.add("sim.dispatch_errors", 1);
                            precompute_failed = true;
                            None
                        }
                    }
                } else {
                    None
                };
                let grid = (!precompute_failed && policy.wants_taxi_grid()).then(|| {
                    let _span = obs::span("grid_build");
                    desired.clear();
                    // Key the grid by fleet index but place each taxi at
                    // its *reported* position (identical to the true one
                    // except under GPS jitter), so the grid the policy
                    // queries matches the idle slice it sees.
                    desired.extend(
                        idle_fleet
                            .iter()
                            .zip(idle.iter())
                            .map(|(&fi, t)| (fi, t.location)),
                    );
                    let bbox = BBox::from_points(idle.iter().map(|t| t.location))
                        .unwrap_or_else(|| BBox::square(Point::ORIGIN, 1.0));
                    inc_grid.sync(bbox, heuristic_cell_size(bbox), desired);
                    for (rank, &fi) in idle_fleet.iter().enumerate() {
                        fleet_rank[fi] = rank;
                    }
                    let g = inc_grid
                        .grid()
                        .expect("grid present after sync")
                        .map_payloads(|&fi| fleet_rank[fi]);
                    debug_assert_eq!(
                        g,
                        o2o_core::build_taxi_grid(idle),
                        "incremental grid must equal a fresh bulk build"
                    );
                    g
                });
                let mut ctx = FrameContext::new(frame, time_end, idle, pending_vec);
                ctx.pickup_distances = pickup.as_ref();
                ctx.taxi_grid = grid.as_ref();
                ctx.delta = Some(&delta);
                ctx.budget = budget;
                ctx.recorder = recorder;
                let mut assignments = if precompute_failed {
                    Vec::new()
                } else {
                    let _span = obs::span("policy_dispatch");
                    policy.dispatch(&ctx)
                };
                dispatch_ms = started.elapsed().as_secs_f64() * 1e3;
                let mut rung = None;
                if let Some(d) = policy.take_degradation() {
                    rung = Some(d.to.as_str());
                    recorder.add("sim.degradations", 1);
                    report
                        .degradations
                        .push(DegradationEvent { frame, degraded: d });
                }

                // Mid-dispatch faults land between the policy's decision
                // and its application: passengers may cancel (their
                // assignment is voided and they leave the queue) or the
                // taxi may drop offline (the assignment is voided and the
                // members stay pending for a later frame).
                if let Some(fs) = fault_state.as_mut() {
                    let recovery_started = Instant::now();
                    cancelled_members.clear();
                    assignments.retain(|a| match fs.mid_dispatch_fate() {
                        MidDispatchFate::Deliver => true,
                        MidDispatchFate::CancelPassengers => {
                            report.faults.mid_dispatch_cancellations += a.members.len() as u64;
                            cancelled_members.extend(a.members.iter().copied());
                            false
                        }
                        MidDispatchFate::TaxiDropout => {
                            report.faults.mid_dispatch_dropouts += 1;
                            if let Some(&fi) = taxi_index.get(&a.taxi) {
                                fs.force_offline(fi, frame);
                            }
                            false
                        }
                    });
                    if !cancelled_members.is_empty() {
                        pending.retain(|&(r, _)| !cancelled_members.contains(&r.id));
                    }
                    report.faults.recovery_ms += recovery_started.elapsed().as_secs_f64() * 1e3;
                }

                used_taxis.clear();
                served_ids.clear();
                for a in &assignments {
                    // Structural violations stay hard panics — they are
                    // policy bugs, not operational conditions.
                    assert!(
                        used_taxis.insert(a.taxi),
                        "policy {} assigned taxi {} twice in frame {frame}",
                        policy.name(),
                        a.taxi
                    );
                    assert!(!a.stops.is_empty(), "assignment with no stops");
                    assert_eq!(
                        a.members.len(),
                        a.passenger_costs.len(),
                        "passenger cost per member required"
                    );
                    // Identity lookups, by contrast, are recoverable: an
                    // assignment naming an unknown taxi or a request that
                    // is no longer pending is skipped whole (validated
                    // *before* any taxi or report state mutates) and
                    // recorded as a typed error.
                    let Some(&ti) = taxi_index.get(&a.taxi) else {
                        report.dispatch_errors.push(DispatchError::UnknownTaxi {
                            taxi: a.taxi,
                            frame,
                        });
                        report.faults.recovered_dispatch_errors += 1;
                        recorder.add("sim.dispatch_errors", 1);
                        continue;
                    };
                    assert!(
                        taxis[ti].free_at <= time_end,
                        "policy {} dispatched busy taxi {}",
                        policy.name(),
                        a.taxi
                    );
                    member_reqs.clear();
                    let mut members_ok = true;
                    for &m in &a.members {
                        assert!(
                            !served_ids.contains(&m) && !member_reqs.iter().any(|r| r.id == m),
                            "request {m} assigned twice in frame {frame}"
                        );
                        match pending.iter().find(|&&(r, _)| r.id == m) {
                            Some(&(r, _)) => member_reqs.push(r),
                            None => {
                                report
                                    .dispatch_errors
                                    .push(DispatchError::RequestNotPending { request: m, frame });
                                report.faults.recovered_dispatch_errors += 1;
                                recorder.add("sim.dispatch_errors", 1);
                                members_ok = false;
                                break;
                            }
                        }
                    }
                    if !members_ok {
                        continue;
                    }
                    served_ids.extend(a.members.iter().copied());

                    // Drive: approach leg + the route through all stops.
                    let mut length = metric.distance(taxis[ti].location, a.stops[0]);
                    length += metric.path_length(&a.stops);
                    let travel_s = (length / speed_km_per_s).ceil() as u64;
                    taxis[ti].free_at = time_end + travel_s;
                    taxis[ti].location = *a.stops.last().expect("non-empty stops");
                    report.total_drive_km += length;

                    // Metrics.
                    let dispatch_hour = ((time_end / 3600) % 24) as usize;
                    report.taxi_dissatisfaction.push(a.taxi_cost);
                    report.taxi_by_hour[dispatch_hour].push(a.taxi_cost);
                    let shared = a.members.len() >= 2;
                    for (req, &cost) in member_reqs.iter().zip(&a.passenger_costs) {
                        let delay_min = (time_end.saturating_sub(req.time)) as f64 / 60.0;
                        let hour = req.hour_of_day() as usize;
                        report.delays_min.push(delay_min);
                        report.delay_by_hour[hour].push(delay_min);
                        report.passenger_dissatisfaction.push(cost);
                        report.passenger_by_hour[hour].push(cost);
                        report.served += 1;
                        if shared {
                            report.shared_requests += 1;
                        }
                    }
                }
                pending.retain(|&(r, _)| !served_ids.contains(&r.id));

                recorder.observe("frame.dispatch_ms", dispatch_ms);
                recorder.gauge("sim.queue_len", pending.len() as f64);
                recorder.gauge("sim.idle_taxis", idle.len() as f64);
                let faults_total = report.faults.total_injected();
                if faults_total > *faults_seen {
                    recorder.add("sim.faults_injected", faults_total - *faults_seen);
                    *faults_seen = faults_total;
                }
                // Feed the live SLO monitor once per dispatched frame,
                // inside the open telemetry window so breach counters
                // attribute to this frame. The monitor only reads the
                // report — it never touches dispatch state — so runs with
                // and without specs stay bit-identical.
                if let Some(mon) = slo.as_mut() {
                    let observation = FrameObservation {
                        frame,
                        dispatch_ms,
                        served: (report.served - served_before) as u64,
                        arrivals: std::mem::take(slo_arrivals),
                        rung,
                        ckpt_ms: std::mem::take(slo_ckpt_ms),
                    };
                    for ev in mon.on_frame(&observation) {
                        recorder.slo_event(ev.clone());
                        report.slo_events.push(ev);
                    }
                }
                if let Some(fs) = recorder.end_frame() {
                    report.stage_breakdown.push(fs);
                }
            }

            report.dispatch_ms_by_frame.push(dispatch_ms);
            report.queue_by_frame.push(pending.len() as u32);
            report
                .idle_by_frame
                .push(taxis.iter().filter(|t| t.free_at <= time_end).count() as u32);
        }

        *frame_slot = frame + 1;
        let arrivals_done = *next_request >= trace.requests.len();
        !(arrivals_done
            && (pending.is_empty() || *frame_slot > last_arrival_frame + self.config.drain_frames))
    }

    /// Flushes the tail counters and seals the report after the last
    /// frame.
    pub(crate) fn finish(&self, mut st: EngineState) -> SimReport {
        let faults_total = st.report.faults.total_injected();
        if faults_total > st.faults_seen {
            self.recorder
                .add("sim.faults_injected", faults_total - st.faults_seen);
        }
        self.recorder.flush();
        st.report.frames = st.frame;
        st.report.unserved_at_end += st.pending.len();
        st.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy;
    use o2o_core::PreferenceParams;
    use o2o_geo::BBox;
    use o2o_trace::{boston_september_2012, RequestId};

    fn tiny_trace(requests: Vec<Request>, taxis: Vec<Taxi>) -> Trace {
        Trace {
            name: "tiny".into(),
            bbox: BBox::square(Point::ORIGIN, 100.0),
            requests,
            taxis,
        }
    }

    fn req(id: u64, time: u64, s: f64, d: f64) -> Request {
        Request::new(RequestId(id), time, Point::new(s, 0.0), Point::new(d, 0.0))
    }

    #[test]
    fn single_request_served_with_subminute_delay() {
        let trace = tiny_trace(
            vec![req(0, 30, 1.0, 2.0)],
            vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        );
        let mut p = policy::near(Euclidean, PreferenceParams::default());
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut p);
        assert_eq!(report.served, 1);
        assert_eq!(report.unserved_at_end, 0);
        // Arrived at t=30, dispatched at the end of frame 0 (t=60).
        assert!((report.delays_min[0] - 0.5).abs() < 1e-9);
        assert!((report.passenger_dissatisfaction[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_taxi_delays_second_request() {
        // One taxi; trip takes 2 km + 1 km pickup at 20 km/h = 9 min.
        // Second request arrives at t=120 and must wait for the taxi.
        let trace = tiny_trace(
            vec![req(0, 0, 1.0, 3.0), req(1, 120, 3.5, 5.0)],
            vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        );
        let mut p = policy::near(Euclidean, PreferenceParams::default());
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut p);
        assert_eq!(report.served, 2);
        // First: dispatched at t=60. Busy for (1+2) km / 20 km/h = 540 s;
        // free at 600 s → request 1 dispatched at t=600 (end of frame 9).
        // Delay = (600 − 120)/60 = 8 min.
        let d1 = report.delays_min[1];
        assert!((d1 - 8.0).abs() < 1e-9, "delay {d1}");
        // Taxi served request 1 from the previous drop-off at x=3.
        assert!((report.passenger_dissatisfaction[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_taxis_terminates_with_unserved() {
        let trace = tiny_trace(vec![req(0, 0, 1.0, 2.0)], vec![]);
        let mut p = policy::near(Euclidean, PreferenceParams::default());
        let cfg = SimConfig {
            drain_frames: 5,
            ..SimConfig::default()
        };
        let report = Simulator::new(cfg).run(&trace, &mut p);
        assert_eq!(report.served, 0);
        assert_eq!(report.unserved_at_end, 1);
        assert!(report.frames <= 7);
    }

    #[test]
    fn max_pending_frames_drops_requests() {
        // A taxi too far to ever be acceptable under the dummy threshold.
        let trace = tiny_trace(
            vec![req(0, 0, 0.0, 1.0)],
            vec![Taxi::new(TaxiId(0), Point::new(49.0, 0.0))],
        );
        let params = PreferenceParams::default().with_passenger_threshold(10.0);
        let mut p = policy::nstd_p(Euclidean, params);
        let cfg = SimConfig {
            max_pending_frames: Some(3),
            drain_frames: 100,
            ..SimConfig::default()
        };
        let report = Simulator::new(cfg).run(&trace, &mut p);
        assert_eq!(report.served, 0);
        assert_eq!(report.unserved_at_end, 1);
        assert!(report.frames < 20, "dropped request must end the run");
    }

    #[test]
    fn faster_taxis_reduce_delays() {
        let requests: Vec<Request> = (0..6)
            .map(|i| req(i, i * 60, (i % 3) as f64, (i % 3) as f64 + 4.0))
            .collect();
        let taxis = vec![Taxi::new(TaxiId(0), Point::ORIGIN)];
        let slow_cfg = SimConfig {
            taxi_speed_kmh: 10.0,
            ..SimConfig::default()
        };
        let fast_cfg = SimConfig {
            taxi_speed_kmh: 60.0,
            ..SimConfig::default()
        };
        let trace = tiny_trace(requests, taxis);
        let params = PreferenceParams::default();
        let mut p1 = policy::near(Euclidean, params);
        let mut p2 = policy::near(Euclidean, params);
        let slow = Simulator::new(slow_cfg).run(&trace, &mut p1);
        let fast = Simulator::new(fast_cfg).run(&trace, &mut p2);
        assert!(fast.avg_delay_min() <= slow.avg_delay_min());
    }

    #[test]
    fn sharing_policy_runs_end_to_end() {
        let trace = boston_september_2012(0.002).generate(3);
        let mut p = policy::std_p(Euclidean, PreferenceParams::default());
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut p);
        assert_eq!(report.served + report.unserved_at_end, trace.requests.len());
        assert_eq!(report.policy, "STD-P");
        assert!(report.total_drive_km > 0.0);
    }

    #[test]
    fn sparse_and_dense_candidate_modes_run_identically() {
        use o2o_core::{CandidateMode, NonSharingDispatcher};
        let trace = boston_september_2012(0.002).generate(7);
        let params = PreferenceParams::default();
        // Default NSTD-P is sparse (grid-pruned candidates); pinning its
        // full run against the dense path catches any divergence the
        // per-frame property tests could miss.
        let mut sparse = policy::nstd_p(Euclidean, params);
        let mut dense = policy::NstdPPolicy::from_dispatcher(
            NonSharingDispatcher::new(Euclidean, params).with_candidate_mode(CandidateMode::Dense),
        );
        let a = Simulator::new(SimConfig::default()).run(&trace, &mut sparse);
        let b = Simulator::new(SimConfig::default()).run(&trace, &mut dense);
        assert_eq!(a.delays_min, b.delays_min);
        assert_eq!(a.passenger_dissatisfaction, b.passenger_dissatisfaction);
        assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
        assert_eq!(a.total_drive_km, b.total_drive_km);
        assert_eq!(a.queue_by_frame, b.queue_by_frame);
    }

    #[test]
    fn sharded_mode_runs_identically_end_to_end() {
        use o2o_core::{IncrementalMode, NonSharingDispatcher, ShardMode, ShardSpec};
        let trace = boston_september_2012(0.002).generate(9);
        let params = PreferenceParams::default();
        // Cold incremental mode makes every frame take the cold sparse
        // path, where the sharded pipeline engages (the warm path's
        // carried seed bypasses it by design).
        let mut global =
            policy::nstd_p(Euclidean, params).with_incremental_mode(IncrementalMode::Cold);
        let mut sharded = policy::NstdPPolicy::from_dispatcher(
            NonSharingDispatcher::new(Euclidean, params)
                .with_shard_mode(ShardMode::Sharded(ShardSpec::new(8))),
        )
        .with_incremental_mode(IncrementalMode::Cold);
        let a = Simulator::new(SimConfig::default()).run(&trace, &mut global);
        let b = Simulator::new(SimConfig::default()).run(&trace, &mut sharded);
        assert_eq!(a.delays_min, b.delays_min);
        assert_eq!(a.passenger_dissatisfaction, b.passenger_dissatisfaction);
        assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
        assert_eq!(a.total_drive_km, b.total_drive_km);
        assert_eq!(a.queue_by_frame, b.queue_by_frame);
        // The sharded run reports its per-frame shard counters; the
        // global run reports none.
        assert!(b.total_shard_frames() > 0, "sharded pipeline never engaged");
        assert_eq!(a.total_shard_frames(), 0);

        let mut global_t =
            policy::nstd_t(Euclidean, params).with_incremental_mode(IncrementalMode::Cold);
        let mut sharded_t = policy::NstdTPolicy::from_dispatcher(
            NonSharingDispatcher::new(Euclidean, params)
                .with_shard_mode(ShardMode::Sharded(ShardSpec::new(8))),
        )
        .with_incremental_mode(IncrementalMode::Cold);
        let at = Simulator::new(SimConfig::default()).run(&trace, &mut global_t);
        let bt = Simulator::new(SimConfig::default()).run(&trace, &mut sharded_t);
        assert_eq!(at.delays_min, bt.delays_min);
        assert_eq!(at.passenger_dissatisfaction, bt.passenger_dissatisfaction);
        assert_eq!(at.taxi_dissatisfaction, bt.taxi_dissatisfaction);
    }

    #[test]
    fn cached_policy_reports_per_frame_cache_effectiveness() {
        let trace = boston_september_2012(0.002).generate(3);
        let params = PreferenceParams::default();
        let mut wrapped = policy::cached(Euclidean, |metric| {
            policy::StdPPolicy::from_dispatcher(o2o_core::SharingDispatcher::new(metric, params))
        });
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut wrapped);
        assert_eq!(
            report.cache_hits_by_frame().len(),
            report.frames as usize,
            "derived view is dense over frames"
        );
        assert_eq!(report.cache_misses_by_frame().len(), report.frames as usize);
        assert!(
            report.total_cache_misses() > 0,
            "dispatch queried the metric"
        );
        assert_eq!(
            report.cache_misses_by_frame().iter().sum::<u64>(),
            report.total_cache_misses(),
            "per-frame view sums to the run total"
        );
        // An uncached policy reports all-zero counters.
        let mut plain = policy::std_p(Euclidean, params);
        let bare = Simulator::new(SimConfig::default()).run(&trace, &mut plain);
        assert_eq!(bare.total_cache_hits() + bare.total_cache_misses(), 0);
    }

    #[test]
    fn warm_incremental_mode_matches_cold_over_a_full_run() {
        use o2o_core::IncrementalMode;
        let trace = boston_september_2012(0.002).generate(13);
        let params = PreferenceParams::default();
        // Warm is the default; Cold re-runs deferred acceptance from
        // scratch each frame. The two must be bit-identical end to end.
        let mut warm = policy::nstd_p(Euclidean, params);
        assert_eq!(warm.incremental_mode(), IncrementalMode::Warm);
        let mut cold =
            policy::nstd_p(Euclidean, params).with_incremental_mode(IncrementalMode::Cold);
        let a = Simulator::new(SimConfig::default()).run(&trace, &mut warm);
        let b = Simulator::new(SimConfig::default()).run(&trace, &mut cold);
        assert_eq!(a.delays_min, b.delays_min);
        assert_eq!(a.passenger_dissatisfaction, b.passenger_dissatisfaction);
        assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
        assert_eq!(a.total_drive_km, b.total_drive_km);
        assert_eq!(a.queue_by_frame, b.queue_by_frame);

        let mut warm_t = policy::nstd_t(Euclidean, params);
        let mut cold_t =
            policy::nstd_t(Euclidean, params).with_incremental_mode(IncrementalMode::Cold);
        let at = Simulator::new(SimConfig::default()).run(&trace, &mut warm_t);
        let bt = Simulator::new(SimConfig::default()).run(&trace, &mut cold_t);
        assert_eq!(at.delays_min, bt.delays_min);
        assert_eq!(at.passenger_dissatisfaction, bt.passenger_dissatisfaction);
        assert_eq!(at.taxi_dissatisfaction, bt.taxi_dissatisfaction);
    }

    #[test]
    fn persistent_cache_sweeps_keep_per_frame_deltas_consistent() {
        use o2o_core::NonSharingDispatcher;
        let trace = boston_september_2012(0.003).generate(5);
        let params = PreferenceParams::default();
        // A tiny capacity forces stale-origin sweeps mid-run; the sweep
        // must not disturb the cumulative hit/miss counters, so the
        // engine's per-frame deltas still sum exactly to the final stats.
        // Cold incremental mode keeps every frame re-querying the metric
        // (warm mode's candidate-row carry would starve the cache of the
        // repeat queries this test needs to observe hits across frames).
        let mut p = policy::cached_persistent(Euclidean, 64, |metric| {
            policy::NstdPPolicy::from_dispatcher(NonSharingDispatcher::new(metric, params))
                .with_incremental_mode(o2o_core::IncrementalMode::Cold)
        });
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut p);
        let finals = p.cache_stats();
        assert_eq!(report.total_cache_hits(), finals.hits);
        assert_eq!(report.total_cache_misses(), finals.misses);
        assert!(
            report.total_cache_hits() > 0,
            "persistent cache must hit across frames"
        );
        assert_eq!(
            p.lifetime(),
            policy::CacheLifetime::Persistent { max_entries: 64 }
        );
        // And the caching layer never changes results.
        let mut plain = policy::nstd_p(Euclidean, params);
        let bare = Simulator::new(SimConfig::default()).run(&trace, &mut plain);
        assert_eq!(report.delays_min, bare.delays_min);
        assert_eq!(
            report.passenger_dissatisfaction,
            bare.passenger_dissatisfaction
        );
        assert_eq!(report.taxi_dissatisfaction, bare.taxi_dissatisfaction);
    }

    #[test]
    fn frame_delta_replays_to_the_policy_visible_sets() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let trace = boston_september_2012(0.002).generate(2);
        type Seen = Vec<(Vec<TaxiId>, Vec<RequestId>, FrameDelta)>;
        let seen: Rc<RefCell<Seen>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut probe = policy::from_fn("probe", move |ctx: &FrameContext<'_>| {
            sink.borrow_mut().push((
                ctx.idle_taxis.iter().map(|t| t.id).collect(),
                ctx.pending.iter().map(|r| r.id).collect(),
                ctx.delta
                    .expect("engine supplies a delta on dispatched frames")
                    .clone(),
            ));
            Vec::new()
        });
        let cfg = SimConfig {
            drain_frames: 3,
            ..SimConfig::default()
        };
        let _ = Simulator::new(cfg).run(&trace, &mut probe);
        let frames = seen.borrow();
        assert!(frames.len() > 1, "need several dispatched frames");
        // Applying each frame's delta to the previous frame's sets must
        // reproduce exactly what the policy saw this frame.
        let mut idle: HashSet<TaxiId> = HashSet::new();
        let mut batch: HashSet<RequestId> = HashSet::new();
        for (cur_idle, cur_batch, delta) in frames.iter() {
            for id in &delta.left_idle {
                assert!(idle.remove(id), "left_idle names a tracked taxi");
            }
            for id in &delta.entered_idle {
                assert!(idle.insert(*id), "entered_idle is new");
            }
            for id in &delta.removed_requests {
                assert!(batch.remove(id), "removed_requests names a tracked request");
            }
            for id in &delta.new_requests {
                assert!(batch.insert(*id), "new_requests is new");
            }
            assert_eq!(idle, cur_idle.iter().copied().collect());
            assert_eq!(batch, cur_batch.iter().copied().collect());
            assert_eq!(
                delta.churn(),
                delta.entered_idle.len()
                    + delta.left_idle.len()
                    + delta.new_requests.len()
                    + delta.removed_requests.len()
            );
        }
    }

    #[test]
    fn deterministic_given_seeded_trace() {
        let trace = boston_september_2012(0.002).generate(11);
        let params = PreferenceParams::default();
        let mut p1 = policy::nstd_p(Euclidean, params);
        let mut p2 = policy::nstd_p(Euclidean, params);
        let a = Simulator::new(SimConfig::default()).run(&trace, &mut p1);
        let b = Simulator::new(SimConfig::default()).run(&trace, &mut p2);
        assert_eq!(a.delays_min, b.delays_min);
        assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
    }

    #[test]
    #[should_panic(expected = "frame_seconds")]
    fn zero_frame_rejected() {
        let _ = Simulator::new(SimConfig {
            frame_seconds: 0,
            ..SimConfig::default()
        });
    }

    #[test]
    fn unknown_taxi_assignment_is_recovered_not_panicked() {
        let trace = tiny_trace(
            vec![req(0, 0, 1.0, 2.0)],
            vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        );
        let mut bad = policy::from_fn("bad", |ctx: &FrameContext<'_>| {
            ctx.pending
                .iter()
                .map(|r| crate::FrameAssignment {
                    taxi: TaxiId(999),
                    members: vec![r.id],
                    stops: vec![r.pickup, r.dropoff],
                    passenger_costs: vec![0.0],
                    taxi_cost: 0.0,
                })
                .collect()
        });
        let cfg = SimConfig {
            drain_frames: 2,
            ..SimConfig::default()
        };
        let report = Simulator::new(cfg).run(&trace, &mut bad);
        assert_eq!(report.served, 0);
        assert_eq!(report.unserved_at_end, 1);
        assert!(report.faults.recovered_dispatch_errors > 0);
        assert!(matches!(
            report.dispatch_errors[0],
            crate::DispatchError::UnknownTaxi {
                taxi: TaxiId(999),
                frame: 0
            }
        ));
    }

    #[test]
    fn not_pending_request_is_recovered_not_panicked() {
        let trace = tiny_trace(
            vec![req(0, 0, 1.0, 2.0)],
            vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        );
        let mut bad = policy::from_fn("bad", |ctx: &FrameContext<'_>| {
            vec![crate::FrameAssignment {
                taxi: ctx.idle_taxis[0].id,
                members: vec![RequestId(999)],
                stops: vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)],
                passenger_costs: vec![0.0],
                taxi_cost: 0.0,
            }]
        });
        let cfg = SimConfig {
            drain_frames: 2,
            ..SimConfig::default()
        };
        let report = Simulator::new(cfg).run(&trace, &mut bad);
        // The whole assignment is skipped before any state mutates: the
        // taxi stays idle and nothing is served.
        assert_eq!(report.served, 0);
        assert_eq!(report.total_drive_km, 0.0);
        assert!(report
            .dispatch_errors
            .iter()
            .all(|e| matches!(e, crate::DispatchError::RequestNotPending { .. })));
        assert!(!report.dispatch_errors.is_empty());
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_no_plan() {
        let trace = boston_september_2012(0.002).generate(5);
        let params = PreferenceParams::default();
        let mut plain = policy::nstd_p(Euclidean, params);
        let mut faulted = policy::nstd_p(Euclidean, params);
        let a = Simulator::new(SimConfig::default()).run(&trace, &mut plain);
        let b = Simulator::new(SimConfig::default())
            .with_fault_plan(crate::FaultPlan::none(99))
            .run(&trace, &mut faulted);
        assert_eq!(a.delays_min, b.delays_min);
        assert_eq!(a.passenger_dissatisfaction, b.passenger_dissatisfaction);
        assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
        assert_eq!(a.total_drive_km, b.total_drive_km);
        assert_eq!(a.queue_by_frame, b.queue_by_frame);
        assert_eq!(a.idle_by_frame, b.idle_by_frame);
        assert_eq!(b.faults.total_injected(), 0);
        assert!(b.dispatch_errors.is_empty() && b.degradations.is_empty());
    }

    #[test]
    fn fault_injection_recovers_and_balances_the_request_ledger() {
        let trace = boston_september_2012(0.002).generate(7);
        let params = PreferenceParams::default();
        let mut p = policy::nstd_p(Euclidean, params);
        let report = Simulator::new(SimConfig::default())
            .with_fault_plan(crate::FaultPlan::uniform(13, 0.05))
            .run(&trace, &mut p);
        // Every trace request is accounted for exactly once: served,
        // still pending at the end, or cancelled (while pending or
        // mid-dispatch). Injected duplicate/malformed records were
        // quarantined at admission and never enter the ledger.
        assert_eq!(
            trace.requests.len() as u64,
            report.served as u64
                + report.unserved_at_end as u64
                + report.faults.request_cancellations
                + report.faults.mid_dispatch_cancellations,
            "request ledger must balance under faults"
        );
        assert!(report.faults.total_injected() > 0, "faults were injected");
        assert_eq!(
            report.faults.quarantined_arrivals,
            report.faults.duplicate_records + report.faults.malformed_records,
            "every injected corrupt record is quarantined"
        );
        assert!(report.served > 0, "the run still serves passengers");
        let ratio = report.served_ratio();
        assert!((0.0..=1.0).contains(&ratio));
    }

    #[test]
    fn fault_runs_are_deterministic_for_a_plan_seed() {
        let trace = boston_september_2012(0.002).generate(3);
        let params = PreferenceParams::default();
        let plan = crate::FaultPlan::uniform(21, 0.08);
        let mut p1 = policy::nstd_p(Euclidean, params);
        let mut p2 = policy::nstd_p(Euclidean, params);
        let a = Simulator::new(SimConfig::default())
            .with_fault_plan(plan)
            .run(&trace, &mut p1);
        let b = Simulator::new(SimConfig::default())
            .with_fault_plan(plan)
            .run(&trace, &mut p2);
        assert_eq!(a.delays_min, b.delays_min);
        assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
        // Counters match exactly except the wall-clock recovery cost.
        let (mut fa, mut fb) = (a.faults.clone(), b.faults.clone());
        fa.recovery_ms = 0.0;
        fb.recovery_ms = 0.0;
        assert_eq!(fa, fb);
        assert_eq!(a.dispatch_errors, b.dispatch_errors);
    }

    #[test]
    fn zero_deadline_budget_degrades_every_dispatched_frame_to_greedy() {
        use o2o_core::{DispatchTier, TimeBudgetSpec};
        let trace = boston_september_2012(0.002).generate(9);
        let params = PreferenceParams::default();
        let mut p = policy::nstd_t(Euclidean, params);
        let cfg = SimConfig {
            frame_budget: TimeBudgetSpec::default().with_deadline(std::time::Duration::ZERO),
            ..SimConfig::default()
        };
        let report = Simulator::new(cfg).run(&trace, &mut p);
        assert!(
            !report.degradations.is_empty(),
            "a zero deadline must degrade"
        );
        // A zero deadline is exhausted before preference construction, so
        // every dispatched frame falls all the way to the greedy floor.
        assert_eq!(
            report.degradations_to(DispatchTier::GreedyNearest),
            report.degradations.len()
        );
        assert!(report
            .degradations
            .iter()
            .all(|e| e.degraded.from == DispatchTier::NstdT));
        assert_eq!(report.served + report.unserved_at_end, trace.requests.len());
        assert!(report.served > 0, "greedy still serves passengers");
    }

    #[test]
    fn unlimited_budget_config_is_bit_identical_to_default() {
        use o2o_core::TimeBudgetSpec;
        let trace = boston_september_2012(0.002).generate(5);
        let params = PreferenceParams::default();
        let mut p1 = policy::nstd_t(Euclidean, params);
        let mut p2 = policy::nstd_t(Euclidean, params);
        let a = Simulator::new(SimConfig::default()).run(&trace, &mut p1);
        let explicit = SimConfig {
            frame_budget: TimeBudgetSpec::default(),
            ..SimConfig::default()
        };
        let b = Simulator::new(explicit).run(&trace, &mut p2);
        assert_eq!(a.delays_min, b.delays_min);
        assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
        assert!(a.degradations.is_empty() && b.degradations.is_empty());
    }

    #[test]
    #[should_panic(expected = "assigned taxi")]
    fn double_taxi_assignment_is_caught() {
        let trace = tiny_trace(
            vec![req(0, 0, 1.0, 2.0), req(1, 0, 2.0, 3.0)],
            vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        );
        let mut evil = policy::from_fn("evil", |ctx: &FrameContext<'_>| {
            ctx.pending
                .iter()
                .map(|r| crate::FrameAssignment {
                    taxi: ctx.idle_taxis[0].id,
                    members: vec![r.id],
                    stops: vec![r.pickup, r.dropoff],
                    passenger_costs: vec![0.0],
                    taxi_cost: 0.0,
                })
                .collect()
        });
        let _ = Simulator::new(SimConfig::default()).run(&trace, &mut evil);
    }
}
