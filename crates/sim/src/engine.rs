//! The discrete-frame simulation engine.

use crate::metrics::HourBucket;
use crate::policy::{DispatchPolicy, FrameContext};
use crate::report::SimReport;
use o2o_core::{build_taxi_grid, PickupDistances};
use o2o_geo::{Euclidean, Metric, Point};
use o2o_par::Parallelism;
use o2o_trace::{Request, Taxi, TaxiId, Trace};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Engine parameters; defaults reproduce the paper's setup (one-minute
/// frames, 20 km/h).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Length of one dispatch frame in seconds (paper: 60).
    pub frame_seconds: u64,
    /// Taxi cruising speed in km/h (paper: 20, from its ref. \[24\]).
    pub taxi_speed_kmh: f64,
    /// How many frames past the last request arrival the engine keeps
    /// draining the pending queue before giving up (prevents an infinite
    /// run when demand permanently exceeds supply).
    pub drain_frames: u64,
    /// Drop a request after waiting this many frames (`None` = passengers
    /// wait indefinitely, as in the paper).
    pub max_pending_frames: Option<u64>,
    /// Cap the batch handed to the policy at this many pending requests
    /// *per idle taxi* (oldest first). A frame can serve at most
    /// `max_group_size × idle` requests, so a generous multiple preserves
    /// choice while bounding the quadratic/cubic sharing stages during
    /// backlogs. `None` passes the whole queue.
    pub max_batch_per_idle: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            frame_seconds: 60,
            taxi_speed_kmh: 20.0,
            drain_frames: 720,
            max_pending_frames: None,
            max_batch_per_idle: Some(8),
        }
    }
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.frame_seconds == 0 {
            return Err("frame_seconds must be positive".into());
        }
        if !(self.taxi_speed_kmh.is_finite() && self.taxi_speed_kmh > 0.0) {
            return Err(format!(
                "taxi_speed_kmh must be positive, got {}",
                self.taxi_speed_kmh
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct TaxiState {
    template: Taxi,
    location: Point,
    free_at: u64,
}

/// The discrete-frame simulator; see the [crate docs](crate) for the
/// model.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
    par: Parallelism,
}

impl Simulator {
    /// Creates a simulator. Policy-independent per-frame precomputation
    /// (the idle × pending pick-up distance matrix) defaults to
    /// [`Parallelism::auto`]; thread count never affects results, only
    /// wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        config.validate().expect("invalid simulator configuration");
        Simulator {
            config,
            par: Parallelism::auto(),
        }
    }

    /// Sets the thread count for per-frame precomputation
    /// ([`Parallelism::sequential`] recovers single-threaded behaviour
    /// exactly — results are bit-identical either way).
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The precomputation thread configuration.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Runs `policy` over `trace` with straight-line driving distances.
    ///
    /// Shorthand for [`run_with_metric`](Self::run_with_metric) with
    /// [`Euclidean`], so the same-metric requirement documented there
    /// applies: the policy must dispatch over Euclidean distances too
    /// (a caching wrapper around `Euclidean` is fine). A policy built
    /// over any other metric must go through `run_with_metric` with that
    /// metric, or the precomputed pick-up matrix would silently mix
    /// Euclidean pick-up distances into its preferences.
    #[must_use]
    pub fn run<P: DispatchPolicy>(&self, trace: &Trace, policy: &mut P) -> SimReport {
        self.run_with_metric(&Euclidean, trace, policy)
    }

    /// Runs `policy` over `trace`, measuring driven distances with
    /// `metric`.
    ///
    /// `metric` must be the metric the policy dispatches with (a
    /// memoizing wrapper over it is fine): besides measuring driven
    /// kilometres, the engine precomputes each frame's idle × pending
    /// pick-up distance matrix with `metric` and hands it to the policy
    /// via [`FrameContext::pickup_distances`], substituting those entries
    /// for the policy's own metric queries. With a mismatched metric the
    /// policy would silently mix `metric`'s pick-up distances with its
    /// own trip distances; preference construction spot-checks a sampled
    /// entry against the policy metric in debug builds.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns an invalid assignment (a non-idle or
    /// repeated taxi, an unknown or repeated request, or empty stops) —
    /// these are policy bugs, not recoverable conditions.
    #[must_use]
    pub fn run_with_metric<M: Metric, P: DispatchPolicy>(
        &self,
        metric: &M,
        trace: &Trace,
        policy: &mut P,
    ) -> SimReport {
        let frame_s = self.config.frame_seconds;
        let speed_km_per_s = self.config.taxi_speed_kmh / 3600.0;

        let mut taxis: Vec<TaxiState> = trace
            .taxis
            .iter()
            .map(|t| TaxiState {
                template: *t,
                location: t.location,
                free_at: 0,
            })
            .collect();
        let taxi_index: HashMap<TaxiId, usize> = trace
            .taxis
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, i))
            .collect();

        // (request, admission frame)
        let mut pending: VecDeque<(Request, u64)> = VecDeque::new();
        let mut next_request = 0usize;
        let last_arrival_frame = trace.requests.last().map_or(0, |r| r.time / frame_s);

        let mut report = SimReport {
            policy: policy.name().to_string(),
            trace: trace.name.clone(),
            served: 0,
            unserved_at_end: 0,
            frames: 0,
            delays_min: Vec::new(),
            passenger_dissatisfaction: Vec::new(),
            taxi_dissatisfaction: Vec::new(),
            shared_requests: 0,
            total_drive_km: 0.0,
            queue_by_frame: Vec::new(),
            idle_by_frame: Vec::new(),
            dispatch_ms_by_frame: Vec::new(),
            cache_hits_by_frame: Vec::new(),
            cache_misses_by_frame: Vec::new(),
            delay_by_hour: [HourBucket::default(); 24],
            passenger_by_hour: [HourBucket::default(); 24],
            taxi_by_hour: [HourBucket::default(); 24],
        };

        let mut frame = 0u64;
        loop {
            let time_end = (frame + 1) * frame_s;
            // Admit arrivals.
            while next_request < trace.requests.len()
                && trace.requests[next_request].time < time_end
            {
                pending.push_back((trace.requests[next_request], frame));
                next_request += 1;
            }
            // Expire over-waited requests, if configured.
            if let Some(cap) = self.config.max_pending_frames {
                let before = pending.len();
                pending.retain(|&(_, admitted)| frame - admitted <= cap);
                report.unserved_at_end += before - pending.len();
            }

            // Collect the idle fleet.
            let idle: Vec<Taxi> = taxis
                .iter()
                .filter(|t| t.free_at <= time_end)
                .map(|t| Taxi {
                    id: t.template.id,
                    location: t.location,
                    seats: t.template.seats,
                })
                .collect();

            let mut dispatch_ms = 0.0;
            let mut frame_cache = (0u64, 0u64);
            if !idle.is_empty() && !pending.is_empty() {
                let batch_cap = self
                    .config
                    .max_batch_per_idle
                    .map_or(usize::MAX, |m| m.saturating_mul(idle.len()));
                let pending_vec: Vec<Request> =
                    pending.iter().take(batch_cap).map(|&(r, _)| r).collect();
                let stats_before = policy.cache_stats();
                let started = Instant::now();
                // Policy-independent precomputation, built only for
                // policies that will read it: the idle × pending pick-up
                // matrix (dense candidate mode), and the idle-taxi grid
                // shared by sparse candidate generation and the
                // grid-accelerated baselines.
                let pickup = policy
                    .wants_pickup_distances()
                    .then(|| PickupDistances::compute(metric, &idle, &pending_vec, self.par));
                let grid = policy.wants_taxi_grid().then(|| build_taxi_grid(&idle));
                let mut ctx = FrameContext::new(frame, time_end, &idle, &pending_vec);
                ctx.pickup_distances = pickup.as_ref();
                ctx.taxi_grid = grid.as_ref();
                let assignments = policy.dispatch(&ctx);
                dispatch_ms = started.elapsed().as_secs_f64() * 1e3;
                // The cache counters are cumulative across the run; the
                // per-frame delta is this frame's cache effectiveness.
                if let (Some(b), Some(a)) = (stats_before, policy.cache_stats()) {
                    frame_cache = (
                        a.hits.saturating_sub(b.hits),
                        a.misses.saturating_sub(b.misses),
                    );
                }

                let mut used_taxis = std::collections::HashSet::new();
                let mut served_ids = std::collections::HashSet::new();
                for a in &assignments {
                    assert!(
                        used_taxis.insert(a.taxi),
                        "policy {} assigned taxi {} twice in frame {frame}",
                        policy.name(),
                        a.taxi
                    );
                    assert!(!a.stops.is_empty(), "assignment with no stops");
                    assert_eq!(
                        a.members.len(),
                        a.passenger_costs.len(),
                        "passenger cost per member required"
                    );
                    let ti = *taxi_index
                        .get(&a.taxi)
                        .unwrap_or_else(|| panic!("unknown taxi {}", a.taxi));
                    assert!(
                        taxis[ti].free_at <= time_end,
                        "policy {} dispatched busy taxi {}",
                        policy.name(),
                        a.taxi
                    );
                    for &m in &a.members {
                        assert!(
                            served_ids.insert(m),
                            "request {m} assigned twice in frame {frame}"
                        );
                    }

                    // Drive: approach leg + the route through all stops.
                    let mut length = metric.distance(taxis[ti].location, a.stops[0]);
                    length += metric.path_length(&a.stops);
                    let travel_s = (length / speed_km_per_s).ceil() as u64;
                    taxis[ti].free_at = time_end + travel_s;
                    taxis[ti].location = *a.stops.last().expect("non-empty stops");
                    report.total_drive_km += length;

                    // Metrics.
                    let dispatch_hour = ((time_end / 3600) % 24) as usize;
                    report.taxi_dissatisfaction.push(a.taxi_cost);
                    report.taxi_by_hour[dispatch_hour].push(a.taxi_cost);
                    let shared = a.members.len() >= 2;
                    for (&m, &cost) in a.members.iter().zip(&a.passenger_costs) {
                        let (req, _) = pending
                            .iter()
                            .find(|&&(r, _)| r.id == m)
                            .copied()
                            .unwrap_or_else(|| panic!("request {m} not pending"));
                        let delay_min = (time_end.saturating_sub(req.time)) as f64 / 60.0;
                        let hour = req.hour_of_day() as usize;
                        report.delays_min.push(delay_min);
                        report.delay_by_hour[hour].push(delay_min);
                        report.passenger_dissatisfaction.push(cost);
                        report.passenger_by_hour[hour].push(cost);
                        report.served += 1;
                        if shared {
                            report.shared_requests += 1;
                        }
                    }
                }
                pending.retain(|&(r, _)| !served_ids.contains(&r.id));
            }

            report.dispatch_ms_by_frame.push(dispatch_ms);
            report.cache_hits_by_frame.push(frame_cache.0);
            report.cache_misses_by_frame.push(frame_cache.1);
            report.queue_by_frame.push(pending.len() as u32);
            report
                .idle_by_frame
                .push(taxis.iter().filter(|t| t.free_at <= time_end).count() as u32);

            frame += 1;
            let arrivals_done = next_request >= trace.requests.len();
            if arrivals_done
                && (pending.is_empty() || frame > last_arrival_frame + self.config.drain_frames)
            {
                break;
            }
        }
        report.frames = frame;
        report.unserved_at_end += pending.len();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy;
    use o2o_core::PreferenceParams;
    use o2o_geo::BBox;
    use o2o_trace::{boston_september_2012, RequestId};

    fn tiny_trace(requests: Vec<Request>, taxis: Vec<Taxi>) -> Trace {
        Trace {
            name: "tiny".into(),
            bbox: BBox::square(Point::ORIGIN, 100.0),
            requests,
            taxis,
        }
    }

    fn req(id: u64, time: u64, s: f64, d: f64) -> Request {
        Request::new(RequestId(id), time, Point::new(s, 0.0), Point::new(d, 0.0))
    }

    #[test]
    fn single_request_served_with_subminute_delay() {
        let trace = tiny_trace(
            vec![req(0, 30, 1.0, 2.0)],
            vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        );
        let mut p = policy::near(Euclidean, PreferenceParams::default());
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut p);
        assert_eq!(report.served, 1);
        assert_eq!(report.unserved_at_end, 0);
        // Arrived at t=30, dispatched at the end of frame 0 (t=60).
        assert!((report.delays_min[0] - 0.5).abs() < 1e-9);
        assert!((report.passenger_dissatisfaction[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_taxi_delays_second_request() {
        // One taxi; trip takes 2 km + 1 km pickup at 20 km/h = 9 min.
        // Second request arrives at t=120 and must wait for the taxi.
        let trace = tiny_trace(
            vec![req(0, 0, 1.0, 3.0), req(1, 120, 3.5, 5.0)],
            vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        );
        let mut p = policy::near(Euclidean, PreferenceParams::default());
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut p);
        assert_eq!(report.served, 2);
        // First: dispatched at t=60. Busy for (1+2) km / 20 km/h = 540 s;
        // free at 600 s → request 1 dispatched at t=600 (end of frame 9).
        // Delay = (600 − 120)/60 = 8 min.
        let d1 = report.delays_min[1];
        assert!((d1 - 8.0).abs() < 1e-9, "delay {d1}");
        // Taxi served request 1 from the previous drop-off at x=3.
        assert!((report.passenger_dissatisfaction[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_taxis_terminates_with_unserved() {
        let trace = tiny_trace(vec![req(0, 0, 1.0, 2.0)], vec![]);
        let mut p = policy::near(Euclidean, PreferenceParams::default());
        let cfg = SimConfig {
            drain_frames: 5,
            ..SimConfig::default()
        };
        let report = Simulator::new(cfg).run(&trace, &mut p);
        assert_eq!(report.served, 0);
        assert_eq!(report.unserved_at_end, 1);
        assert!(report.frames <= 7);
    }

    #[test]
    fn max_pending_frames_drops_requests() {
        // A taxi too far to ever be acceptable under the dummy threshold.
        let trace = tiny_trace(
            vec![req(0, 0, 0.0, 1.0)],
            vec![Taxi::new(TaxiId(0), Point::new(49.0, 0.0))],
        );
        let params = PreferenceParams::default().with_passenger_threshold(10.0);
        let mut p = policy::nstd_p(Euclidean, params);
        let cfg = SimConfig {
            max_pending_frames: Some(3),
            drain_frames: 100,
            ..SimConfig::default()
        };
        let report = Simulator::new(cfg).run(&trace, &mut p);
        assert_eq!(report.served, 0);
        assert_eq!(report.unserved_at_end, 1);
        assert!(report.frames < 20, "dropped request must end the run");
    }

    #[test]
    fn faster_taxis_reduce_delays() {
        let requests: Vec<Request> = (0..6)
            .map(|i| req(i, i * 60, (i % 3) as f64, (i % 3) as f64 + 4.0))
            .collect();
        let taxis = vec![Taxi::new(TaxiId(0), Point::ORIGIN)];
        let slow_cfg = SimConfig {
            taxi_speed_kmh: 10.0,
            ..SimConfig::default()
        };
        let fast_cfg = SimConfig {
            taxi_speed_kmh: 60.0,
            ..SimConfig::default()
        };
        let trace = tiny_trace(requests, taxis);
        let params = PreferenceParams::default();
        let mut p1 = policy::near(Euclidean, params);
        let mut p2 = policy::near(Euclidean, params);
        let slow = Simulator::new(slow_cfg).run(&trace, &mut p1);
        let fast = Simulator::new(fast_cfg).run(&trace, &mut p2);
        assert!(fast.avg_delay_min() <= slow.avg_delay_min());
    }

    #[test]
    fn sharing_policy_runs_end_to_end() {
        let trace = boston_september_2012(0.002).generate(3);
        let mut p = policy::std_p(Euclidean, PreferenceParams::default());
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut p);
        assert_eq!(report.served + report.unserved_at_end, trace.requests.len());
        assert_eq!(report.policy, "STD-P");
        assert!(report.total_drive_km > 0.0);
    }

    #[test]
    fn sparse_and_dense_candidate_modes_run_identically() {
        use o2o_core::{CandidateMode, NonSharingDispatcher};
        let trace = boston_september_2012(0.002).generate(7);
        let params = PreferenceParams::default();
        // Default NSTD-P is sparse (grid-pruned candidates); pinning its
        // full run against the dense path catches any divergence the
        // per-frame property tests could miss.
        let mut sparse = policy::nstd_p(Euclidean, params);
        let mut dense = policy::NstdPPolicy::from_dispatcher(
            NonSharingDispatcher::new(Euclidean, params).with_candidate_mode(CandidateMode::Dense),
        );
        let a = Simulator::new(SimConfig::default()).run(&trace, &mut sparse);
        let b = Simulator::new(SimConfig::default()).run(&trace, &mut dense);
        assert_eq!(a.delays_min, b.delays_min);
        assert_eq!(a.passenger_dissatisfaction, b.passenger_dissatisfaction);
        assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
        assert_eq!(a.total_drive_km, b.total_drive_km);
        assert_eq!(a.queue_by_frame, b.queue_by_frame);
    }

    #[test]
    fn cached_policy_reports_per_frame_cache_effectiveness() {
        let trace = boston_september_2012(0.002).generate(3);
        let params = PreferenceParams::default();
        let mut wrapped = policy::cached(Euclidean, |metric| {
            policy::StdPPolicy::from_dispatcher(o2o_core::SharingDispatcher::new(metric, params))
        });
        let report = Simulator::new(SimConfig::default()).run(&trace, &mut wrapped);
        assert_eq!(report.cache_hits_by_frame.len(), report.frames as usize);
        assert_eq!(report.cache_misses_by_frame.len(), report.frames as usize);
        assert!(
            report.total_cache_misses() > 0,
            "dispatch queried the metric"
        );
        // An uncached policy reports all-zero counters.
        let mut plain = policy::std_p(Euclidean, params);
        let bare = Simulator::new(SimConfig::default()).run(&trace, &mut plain);
        assert_eq!(bare.total_cache_hits() + bare.total_cache_misses(), 0);
    }

    #[test]
    fn deterministic_given_seeded_trace() {
        let trace = boston_september_2012(0.002).generate(11);
        let params = PreferenceParams::default();
        let mut p1 = policy::nstd_p(Euclidean, params);
        let mut p2 = policy::nstd_p(Euclidean, params);
        let a = Simulator::new(SimConfig::default()).run(&trace, &mut p1);
        let b = Simulator::new(SimConfig::default()).run(&trace, &mut p2);
        assert_eq!(a.delays_min, b.delays_min);
        assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
    }

    #[test]
    #[should_panic(expected = "frame_seconds")]
    fn zero_frame_rejected() {
        let _ = Simulator::new(SimConfig {
            frame_seconds: 0,
            ..SimConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "assigned taxi")]
    fn double_taxi_assignment_is_caught() {
        let trace = tiny_trace(
            vec![req(0, 0, 1.0, 2.0), req(1, 0, 2.0, 3.0)],
            vec![Taxi::new(TaxiId(0), Point::ORIGIN)],
        );
        let mut evil = policy::from_fn("evil", |ctx: &FrameContext<'_>| {
            ctx.pending
                .iter()
                .map(|r| crate::FrameAssignment {
                    taxi: ctx.idle_taxis[0].id,
                    members: vec![r.id],
                    stops: vec![r.pickup, r.dropoff],
                    passenger_costs: vec![0.0],
                    taxi_cost: 0.0,
                })
                .collect()
        });
        let _ = Simulator::new(SimConfig::default()).run(&trace, &mut evil);
    }
}
