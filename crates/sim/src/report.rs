//! Simulation results in the shapes the paper's figures use.

use crate::fault::{DegradationEvent, DispatchError, FaultCounters};
use crate::metrics::{Cdf, HourBucket};
use o2o_core::DispatchTier;
use o2o_obs::StageBreakdown;

/// A 24-value hour-of-day series of averages (the Fig. 7 x-axis).
#[derive(Debug, Clone, PartialEq)]
pub struct HourlySeries {
    /// `values[h]` = average over requests issued in hour `h`.
    pub values: [f64; 24],
}

impl HourlySeries {
    pub(crate) fn from_buckets(buckets: &[HourBucket; 24]) -> Self {
        let mut values = [0.0; 24];
        for (v, b) in values.iter_mut().zip(buckets.iter()) {
            *v = b.mean();
        }
        HourlySeries { values }
    }

    /// The *earliest* hour with the largest value.
    ///
    /// Edge cases are defined, not incidental: an empty series (every
    /// hour averaged no requests, so all values are `0.0`) returns hour
    /// `0`; ties break toward the earlier hour; `NaN` values never
    /// compare as the maximum, so a series that is all-`NaN` also
    /// returns `0`.
    #[must_use]
    pub fn peak_hour(&self) -> usize {
        let mut best = 0;
        let mut best_value = f64::NEG_INFINITY;
        for (hour, &value) in self.values.iter().enumerate() {
            if value > best_value {
                best = hour;
                best_value = value;
            }
        }
        if best_value.is_finite() {
            best
        } else {
            0
        }
    }
}

/// Everything a simulation run measured, named after the paper's metrics.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Display name of the policy that produced the run.
    pub policy: String,
    /// Name of the trace.
    pub trace: String,
    /// Number of requests that were eventually served.
    pub served: usize,
    /// Requests still waiting when the simulation ended.
    pub unserved_at_end: usize,
    /// Frames simulated.
    pub frames: u64,
    /// Per-served-request dispatch delay, minutes.
    pub delays_min: Vec<f64>,
    /// Per-served-request passenger dissatisfaction, km.
    pub passenger_dissatisfaction: Vec<f64>,
    /// Per-dispatch taxi dissatisfaction, km.
    pub taxi_dissatisfaction: Vec<f64>,
    /// Requests served in a shared ride (≥ 2 members).
    pub shared_requests: usize,
    /// Total distance driven by the fleet, km.
    pub total_drive_km: f64,
    /// Pending-queue length after each frame's dispatch (congestion
    /// diagnostic; index = frame).
    pub queue_by_frame: Vec<u32>,
    /// Idle-taxi count at each frame's dispatch (supply diagnostic).
    pub idle_by_frame: Vec<u32>,
    /// Wall-clock milliseconds each frame spent in the dispatch step
    /// (precomputation + policy; `0.0` for frames with nothing to
    /// dispatch). Index = frame. This is the paper's "computation time"
    /// axis and the signal the benchmark JSON reports.
    pub dispatch_ms_by_frame: Vec<f64>,
    /// Per-dispatched-frame stage self-times and counter deltas, as
    /// collected by the engine's [`Recorder`](o2o_obs::Recorder): one
    /// [`FrameStats`](o2o_obs::FrameStats) per frame that ran a
    /// dispatch, in frame order. Empty when the engine ran with
    /// [`Recorder::disabled`](o2o_obs::Recorder::disabled). The
    /// cache-effectiveness views
    /// ([`cache_hits_by_frame`](Self::cache_hits_by_frame) and
    /// friends) derive from the `cache.hits` / `cache.misses` counters
    /// recorded here.
    pub stage_breakdown: StageBreakdown,
    /// Injected-fault tallies and recovery bookkeeping for the run; all
    /// zero unless the simulator ran with a
    /// [`FaultPlan`](crate::FaultPlan).
    pub faults: FaultCounters,
    /// Dispatch-level failures the engine recovered from (skipping the
    /// offending assignment or frame) instead of panicking.
    pub dispatch_errors: Vec<DispatchError>,
    /// Frames whose dispatch stepped down the degradation ladder under
    /// the configured [`frame_budget`](crate::SimConfig::frame_budget).
    pub degradations: Vec<DegradationEvent>,
    /// SLO breach/recover transitions observed by the live monitor
    /// ([`Simulator::with_slo`](crate::Simulator::with_slo)), in frame
    /// order. Empty when no SLO specs were configured. Process-local
    /// telemetry like [`stage_breakdown`](Self::stage_breakdown): it is
    /// excluded from checkpoints and from the deterministic digest, and
    /// a resumed run restarts its SLO windows cold.
    pub slo_events: Vec<o2o_obs::SloEvent>,
    pub(crate) delay_by_hour: [HourBucket; 24],
    pub(crate) passenger_by_hour: [HourBucket; 24],
    pub(crate) taxi_by_hour: [HourBucket; 24],
}

impl SimReport {
    /// CDF of dispatch delays (Figs. 4(a), 5(a), 8(a), 9(a)).
    #[must_use]
    pub fn delay_cdf(&self) -> Cdf {
        Cdf::from_samples(self.delays_min.clone())
    }

    /// CDF of passenger dissatisfaction (Figs. 4(b), 5(b), 8(b), 9(b)).
    #[must_use]
    pub fn passenger_cdf(&self) -> Cdf {
        Cdf::from_samples(self.passenger_dissatisfaction.clone())
    }

    /// CDF of taxi dissatisfaction (Figs. 4(c), 5(c), 8(c), 9(c)).
    #[must_use]
    pub fn taxi_cdf(&self) -> Cdf {
        Cdf::from_samples(self.taxi_dissatisfaction.clone())
    }

    /// Average dispatch delay in minutes (Fig. 6(a)).
    #[must_use]
    pub fn avg_delay_min(&self) -> f64 {
        mean(&self.delays_min)
    }

    /// Average passenger dissatisfaction (Fig. 6(b)).
    #[must_use]
    pub fn avg_passenger_dissatisfaction(&self) -> f64 {
        mean(&self.passenger_dissatisfaction)
    }

    /// Average taxi dissatisfaction (Fig. 6(c)).
    #[must_use]
    pub fn avg_taxi_dissatisfaction(&self) -> f64 {
        mean(&self.taxi_dissatisfaction)
    }

    /// Hour-of-day series of average dispatch delay (Fig. 7(a)).
    #[must_use]
    pub fn hourly_delay(&self) -> HourlySeries {
        HourlySeries::from_buckets(&self.delay_by_hour)
    }

    /// Hour-of-day series of average passenger dissatisfaction
    /// (Fig. 7(b)).
    #[must_use]
    pub fn hourly_passenger_dissatisfaction(&self) -> HourlySeries {
        HourlySeries::from_buckets(&self.passenger_by_hour)
    }

    /// Hour-of-day series of average taxi dissatisfaction (Fig. 7(c)).
    #[must_use]
    pub fn hourly_taxi_dissatisfaction(&self) -> HourlySeries {
        HourlySeries::from_buckets(&self.taxi_by_hour)
    }

    /// The largest pending-queue length observed (0 for an empty run) —
    /// the congestion headline of a run.
    #[must_use]
    pub fn peak_queue(&self) -> u32 {
        self.queue_by_frame.iter().copied().max().unwrap_or(0)
    }

    /// Mean idle-taxi count across frames (0 for an empty run).
    #[must_use]
    pub fn avg_idle_taxis(&self) -> f64 {
        if self.idle_by_frame.is_empty() {
            0.0
        } else {
            self.idle_by_frame.iter().map(|&x| x as f64).sum::<f64>()
                / self.idle_by_frame.len() as f64
        }
    }

    /// Total wall-clock milliseconds spent dispatching across the run.
    #[must_use]
    pub fn total_dispatch_ms(&self) -> f64 {
        self.dispatch_ms_by_frame.iter().sum()
    }

    /// Mean dispatch wall-clock per frame, in milliseconds (0 for an
    /// empty run).
    #[must_use]
    pub fn avg_dispatch_ms(&self) -> f64 {
        mean(&self.dispatch_ms_by_frame)
    }

    /// The slowest frame's dispatch wall-clock, in milliseconds.
    #[must_use]
    pub fn max_dispatch_ms(&self) -> f64 {
        self.dispatch_ms_by_frame
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    /// Per-frame increments of the named recorder counter, as a dense
    /// vector indexed by frame (`0` for frames where the counter did
    /// not move, including frames that dispatched nothing).
    #[must_use]
    pub fn counter_by_frame(&self, name: &str) -> Vec<u64> {
        let mut out = vec![0u64; self.queue_by_frame.len()];
        for fs in &self.stage_breakdown.frames {
            if let Some(slot) = out.get_mut(fs.frame as usize) {
                *slot = fs.counter(name);
            }
        }
        out
    }

    /// Distance-cache hits during each frame's dispatch (index =
    /// frame). A derived view over
    /// [`stage_breakdown`](Self::stage_breakdown): all zeros unless the
    /// policy memoizes metric queries and records the `cache.hits` /
    /// `cache.misses` counters on the frame's recorder (e.g.
    /// [`CachedPolicy`](crate::policy::CachedPolicy)).
    #[must_use]
    pub fn cache_hits_by_frame(&self) -> Vec<u64> {
        self.counter_by_frame("cache.hits")
    }

    /// Distance-cache misses during each frame's dispatch (index =
    /// frame); see [`cache_hits_by_frame`](Self::cache_hits_by_frame).
    #[must_use]
    pub fn cache_misses_by_frame(&self) -> Vec<u64> {
        self.counter_by_frame("cache.misses")
    }

    /// Distance-cache hits summed across the run (0 for uncached
    /// policies).
    #[must_use]
    pub fn total_cache_hits(&self) -> u64 {
        self.stage_breakdown.counter_total("cache.hits")
    }

    /// Distance-cache misses summed across the run (0 for uncached
    /// policies).
    #[must_use]
    pub fn total_cache_misses(&self) -> u64 {
        self.stage_breakdown.counter_total("cache.misses")
    }

    /// Fraction of metric queries answered from the distance cache across
    /// the run (0 when no queries were observed — in particular for
    /// uncached policies).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.total_cache_hits();
        let total = hits + self.total_cache_misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Frames whose dispatch ran the anytime NSTD-T search (total of the
    /// `anytime.frames` counter; 0 for policies that never invoke it).
    #[must_use]
    pub fn total_anytime_frames(&self) -> u64 {
        self.stage_breakdown.counter_total("anytime.frames")
    }

    /// BreakDispatch nodes explored by the anytime NSTD-T search, summed
    /// across the run (the spend half of the anytime trade-off).
    #[must_use]
    pub fn total_anytime_nodes(&self) -> u64 {
        self.stage_breakdown.counter_total("anytime.nodes")
    }

    /// Nodes the anytime NSTD-T search explored during each frame's
    /// dispatch (index = frame; zero where the search did not run).
    #[must_use]
    pub fn anytime_nodes_by_frame(&self) -> Vec<u64> {
        self.counter_by_frame("anytime.nodes")
    }

    /// The anytime search's measured optimality gap per frame (index =
    /// frame; zero both for certified-optimal frames and for frames that
    /// never ran the search — disambiguate with
    /// [`anytime_nodes_by_frame`](Self::anytime_nodes_by_frame) or the
    /// `anytime.frames` counter).
    #[must_use]
    pub fn anytime_gap_by_frame(&self) -> Vec<u64> {
        self.counter_by_frame("anytime.gap")
    }

    /// The measured optimality gap of the **last** frame that ran the
    /// anytime NSTD-T search (`None` if no frame did): `Some(0)` means
    /// the run ended on a certified taxi-optimal schedule.
    #[must_use]
    pub fn final_anytime_gap(&self) -> Option<u64> {
        self.stage_breakdown
            .frames
            .iter()
            .rev()
            .find(|fs| fs.counter("anytime.frames") > 0)
            .map(|fs| fs.counter("anytime.gap"))
    }

    /// Frames whose dispatch ran the spatially sharded pipeline (total of
    /// the `shard.frames` counter; 0 under [`ShardMode::Global`]
    /// dispatchers).
    ///
    /// [`ShardMode::Global`]: o2o_core::ShardMode::Global
    #[must_use]
    pub fn total_shard_frames(&self) -> u64 {
        self.stage_breakdown.counter_total("shard.frames")
    }

    /// Fraction of the run's requests that were eventually served, out of
    /// every request that entered the system: served, still pending at
    /// the end, cancelled while pending, or cancelled mid-dispatch
    /// (0 for an empty run). The headline metric of a chaos run.
    #[must_use]
    pub fn served_ratio(&self) -> f64 {
        let total = self.served as u64
            + self.unserved_at_end as u64
            + self.faults.request_cancellations
            + self.faults.mid_dispatch_cancellations;
        if total == 0 {
            0.0
        } else {
            self.served as f64 / total as f64
        }
    }

    /// How many frames degraded *to* the given tier (e.g.
    /// [`DispatchTier::GreedyNearest`] counts the frames that fell all
    /// the way to the greedy floor).
    #[must_use]
    pub fn degradations_to(&self, tier: DispatchTier) -> usize {
        self.degradations
            .iter()
            .filter(|e| e.degraded.to == tier)
            .count()
    }

    /// Fraction of served requests that shared a taxi.
    #[must_use]
    pub fn sharing_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.shared_requests as f64 / self.served as f64
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_obs::FrameStats;

    fn cache_frame(frame: u64, hits: u64, misses: u64) -> FrameStats {
        FrameStats {
            frame,
            wall_ms: 1.0,
            stages: Vec::new(),
            counters: vec![
                ("cache.hits".to_string(), hits),
                ("cache.misses".to_string(), misses),
            ],
        }
    }

    fn report() -> SimReport {
        let mut delay_by_hour = [HourBucket::default(); 24];
        delay_by_hour[9].push(4.0);
        delay_by_hour[3].push(1.0);
        let mut stage_breakdown = StageBreakdown::new();
        stage_breakdown.push(cache_frame(0, 3, 2));
        stage_breakdown.push(cache_frame(1, 6, 1));
        SimReport {
            policy: "TEST".into(),
            trace: "toy".into(),
            served: 2,
            unserved_at_end: 1,
            frames: 10,
            delays_min: vec![1.0, 3.0],
            passenger_dissatisfaction: vec![2.0, 4.0],
            taxi_dissatisfaction: vec![-1.0, 1.0],
            shared_requests: 2,
            total_drive_km: 12.0,
            queue_by_frame: vec![3, 1, 0],
            idle_by_frame: vec![1, 2, 2],
            dispatch_ms_by_frame: vec![0.5, 1.5, 0.0],
            stage_breakdown,
            faults: FaultCounters::default(),
            dispatch_errors: Vec::new(),
            degradations: Vec::new(),
            slo_events: Vec::new(),
            delay_by_hour,
            passenger_by_hour: [HourBucket::default(); 24],
            taxi_by_hour: [HourBucket::default(); 24],
        }
    }

    #[test]
    fn averages() {
        let r = report();
        assert_eq!(r.avg_delay_min(), 2.0);
        assert_eq!(r.avg_passenger_dissatisfaction(), 3.0);
        assert_eq!(r.avg_taxi_dissatisfaction(), 0.0);
        assert_eq!(r.sharing_rate(), 1.0);
    }

    #[test]
    fn cdfs_are_built_from_samples() {
        let r = report();
        assert_eq!(r.delay_cdf().len(), 2);
        assert_eq!(r.passenger_cdf().fraction_at_most(2.0), 0.5);
        assert_eq!(r.taxi_cdf().quantile(1.0), 1.0);
    }

    #[test]
    fn hourly_series_and_peak() {
        let r = report();
        let h = r.hourly_delay();
        assert_eq!(h.values[9], 4.0);
        assert_eq!(h.values[3], 1.0);
        assert_eq!(h.values[0], 0.0);
        assert_eq!(h.peak_hour(), 9);
    }

    #[test]
    fn congestion_diagnostics() {
        let r = report();
        assert_eq!(r.peak_queue(), 3);
        assert!((r.avg_idle_taxis() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn dispatch_timing_aggregates() {
        let r = report();
        assert!((r.total_dispatch_ms() - 2.0).abs() < 1e-12);
        assert!((r.avg_dispatch_ms() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_dispatch_ms(), 1.5);
    }

    #[test]
    fn cache_effectiveness_aggregates() {
        let r = report();
        assert_eq!(r.total_cache_hits(), 9);
        assert_eq!(r.total_cache_misses(), 3);
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-12);
        // The per-frame views are dense over all frames, zero-filled
        // where the breakdown has no entry (frame 2 dispatched nothing).
        assert_eq!(r.cache_hits_by_frame(), vec![3, 6, 0]);
        assert_eq!(r.cache_misses_by_frame(), vec![2, 1, 0]);
    }

    #[test]
    fn counter_by_frame_ignores_out_of_range_frames() {
        let mut r = report();
        // A frame index past the queue series (e.g. a truncated report)
        // must not panic — it is simply not representable in the view.
        r.stage_breakdown.push(cache_frame(99, 5, 5));
        assert_eq!(r.cache_hits_by_frame(), vec![3, 6, 0]);
        // The run totals still see every recorded frame.
        assert_eq!(r.total_cache_hits(), 14);
    }

    #[test]
    fn anytime_aggregates_derive_from_counters() {
        let mut r = report();
        assert_eq!(r.total_anytime_frames(), 0);
        assert_eq!(r.final_anytime_gap(), None);
        r.stage_breakdown.push(FrameStats {
            frame: 1,
            wall_ms: 1.0,
            stages: Vec::new(),
            counters: vec![
                ("anytime.frames".to_string(), 1),
                ("anytime.gap".to_string(), 3),
                ("anytime.nodes".to_string(), 40),
            ],
        });
        r.stage_breakdown.push(FrameStats {
            frame: 2,
            wall_ms: 1.0,
            stages: Vec::new(),
            counters: vec![
                ("anytime.frames".to_string(), 1),
                ("anytime.nodes".to_string(), 25),
            ],
        });
        assert_eq!(r.total_anytime_frames(), 2);
        assert_eq!(r.total_anytime_nodes(), 65);
        // The last anytime frame recorded no gap delta ⇒ certified
        // optimal, not "absent".
        assert_eq!(r.final_anytime_gap(), Some(0));
        assert_eq!(r.anytime_nodes_by_frame(), vec![0, 40, 25]);
        assert_eq!(r.anytime_gap_by_frame(), vec![0, 3, 0]);
        assert_eq!(r.total_shard_frames(), 0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport {
            policy: "E".into(),
            trace: "e".into(),
            served: 0,
            unserved_at_end: 0,
            frames: 0,
            delays_min: vec![],
            passenger_dissatisfaction: vec![],
            taxi_dissatisfaction: vec![],
            shared_requests: 0,
            total_drive_km: 0.0,
            queue_by_frame: vec![],
            idle_by_frame: vec![],
            dispatch_ms_by_frame: vec![],
            stage_breakdown: StageBreakdown::new(),
            faults: FaultCounters::default(),
            dispatch_errors: Vec::new(),
            degradations: Vec::new(),
            slo_events: Vec::new(),
            delay_by_hour: [HourBucket::default(); 24],
            passenger_by_hour: [HourBucket::default(); 24],
            taxi_by_hour: [HourBucket::default(); 24],
        };
        assert_eq!(r.avg_delay_min(), 0.0);
        assert_eq!(r.sharing_rate(), 0.0);
        assert_eq!(r.served_ratio(), 0.0);
        assert_eq!(r.degradations_to(DispatchTier::GreedyNearest), 0);
        assert!(r.stage_breakdown.is_empty());
        assert!(r.cache_hits_by_frame().is_empty());
        assert_eq!(r.total_cache_hits(), 0);
    }

    #[test]
    fn peak_hour_edge_cases_are_defined() {
        // All-zero (no requests in any hour): hour 0, not the last tie.
        let empty = HourlySeries { values: [0.0; 24] };
        assert_eq!(empty.peak_hour(), 0);
        // Ties break toward the earlier hour.
        let mut values = [0.0; 24];
        values[5] = 2.0;
        values[17] = 2.0;
        assert_eq!(HourlySeries { values }.peak_hour(), 5);
        // NaN never wins, even against smaller finite values...
        let mut values = [1.0; 24];
        values[8] = f64::NAN;
        values[13] = 3.0;
        assert_eq!(HourlySeries { values }.peak_hour(), 13);
        // ...and an all-NaN series falls back to hour 0.
        let all_nan = HourlySeries {
            values: [f64::NAN; 24],
        };
        assert_eq!(all_nan.peak_hour(), 0);
    }

    #[test]
    fn served_ratio_counts_cancellations_in_the_denominator() {
        let mut r = report();
        // 2 served + 1 unserved = 2/3 without faults.
        assert!((r.served_ratio() - 2.0 / 3.0).abs() < 1e-12);
        r.faults.request_cancellations = 2;
        r.faults.mid_dispatch_cancellations = 1;
        // 2 served out of 6 that entered the system.
        assert!((r.served_ratio() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degradations_to_filters_by_target_tier() {
        use crate::fault::DegradationEvent;
        use o2o_core::{DegradeReason, Degraded};
        let mut r = report();
        r.degradations = vec![
            DegradationEvent {
                frame: 1,
                degraded: Degraded {
                    from: DispatchTier::NstdT,
                    to: DispatchTier::NstdP,
                    reason: DegradeReason::DeadlineExceeded {
                        stage: "after preference construction",
                    },
                },
            },
            DegradationEvent {
                frame: 2,
                degraded: Degraded {
                    from: DispatchTier::NstdT,
                    to: DispatchTier::GreedyNearest,
                    reason: DegradeReason::DeadlineExceeded {
                        stage: "before preference construction",
                    },
                },
            },
        ];
        assert_eq!(r.degradations_to(DispatchTier::NstdP), 1);
        assert_eq!(r.degradations_to(DispatchTier::GreedyNearest), 1);
        assert_eq!(r.degradations_to(DispatchTier::FullEnumeration), 0);
    }
}
