//! Golden corpus of corrupted checkpoints.
//!
//! Every corruption mode a crash or bit rot can produce — truncation at
//! any byte, a flipped bit anywhere, a stale format version, an empty
//! file, foreign bytes — must surface as a typed [`CkptError`], never a
//! panic, and must never be loaded as state. When a valid older
//! checkpoint sits next to a corrupt newer one, fallback must find it.

use o2o_core::PreferenceParams;
use o2o_geo::Euclidean;
use o2o_sim::{
    checkpoint_files, latest_valid_checkpoint, load_checkpoint, policy, CheckpointSpec, CkptError,
    RunOutcome, SimConfig, Simulator,
};
use o2o_trace::boston_september_2012;
use std::fs;
use std::path::PathBuf;

/// The checkpoint format's word-chunked FNV-1a (mirrors the loader's —
/// needed to re-seal a deliberately doctored file).
fn fnv1a64_words(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut word = |w: u64| h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        word(u64::from_le_bytes(c.try_into().unwrap()));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        tail[7] = rest.len() as u8;
        word(u64::from_le_bytes(tail));
    }
    h
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("o2o-corpus-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Produces a directory holding at least two valid checkpoints, and
/// returns the raw bytes of the newest — the seed for every corruption.
fn golden(tag: &str) -> (PathBuf, PathBuf, Vec<u8>) {
    let dir = tmp_dir(tag);
    let trace = boston_september_2012(0.002).generate(19);
    let sim = Simulator::new(SimConfig::default());
    let mut p = policy::nstd_p(Euclidean, PreferenceParams::default());
    let spec = CheckpointSpec::new(&dir)
        .with_interval(8)
        .with_keep(4)
        .with_stop_after_frames(30);
    let out = sim.run_checkpointed(&trace, &mut p, &spec).unwrap();
    assert!(matches!(out, RunOutcome::Stopped { .. }));
    let files = checkpoint_files(&dir).unwrap();
    assert!(files.len() >= 2, "need a fallback candidate");
    let newest = files[0].clone();
    let bytes = fs::read(&newest).unwrap();
    (dir, newest, bytes)
}

#[test]
fn truncation_at_every_interesting_length_is_a_typed_error() {
    let (dir, newest, bytes) = golden("trunc");
    // A spread of cut points: empty, inside the magic, inside the
    // header, inside a section, one byte short of complete.
    let cuts = [
        0,
        2,
        7,
        16,
        bytes.len() / 4,
        bytes.len() / 2,
        bytes.len() - 9,
        bytes.len() - 1,
    ];
    for cut in cuts {
        fs::write(&newest, &bytes[..cut]).unwrap();
        let err = load_checkpoint(&newest).expect_err("corrupt file must not load");
        assert!(
            matches!(
                err,
                CkptError::Truncated | CkptError::ChecksumMismatch | CkptError::BadMagic
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn any_flipped_bit_is_caught_by_the_checksum() {
    let (dir, newest, bytes) = golden("bitflip");
    // Flip one bit at a spread of offsets covering header, both
    // sections and the checksum footer itself.
    let n = bytes.len();
    for offset in [4, 9, 13, 21, n / 3, n / 2, 2 * n / 3, n - 20, n - 4] {
        let mut mutated = bytes.clone();
        mutated[offset] ^= 0x10;
        fs::write(&newest, &mutated).unwrap();
        let err = load_checkpoint(&newest).expect_err("bit flip must not load");
        assert!(
            matches!(
                err,
                CkptError::ChecksumMismatch
                    | CkptError::BadMagic
                    | CkptError::Truncated
                    | CkptError::UnsupportedVersion(_)
                    | CkptError::Malformed(_)
            ),
            "flip at {offset}: unexpected error {err}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_format_version_is_reported_as_unsupported() {
    let (dir, newest, bytes) = golden("version");
    // Patch the version field and re-seal the checksum so the version
    // check itself (not the checksum) is what fires.
    let mut mutated = bytes[..bytes.len() - 8].to_vec();
    mutated[4..8].copy_from_slice(&99u32.to_le_bytes());
    mutated.extend_from_slice(&fnv1a64_words(&mutated).to_le_bytes());
    fs::write(&newest, &mutated).unwrap();
    let err = load_checkpoint(&newest).expect_err("future version must not load");
    assert!(
        matches!(err, CkptError::UnsupportedVersion(99)),
        "got {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_foreign_files_are_rejected() {
    let (dir, newest, _bytes) = golden("foreign");
    fs::write(&newest, b"").unwrap();
    assert!(matches!(
        load_checkpoint(&newest).unwrap_err(),
        CkptError::Truncated
    ));
    fs::write(&newest, b"not a checkpoint at all, just prose\n").unwrap();
    assert!(matches!(
        load_checkpoint(&newest).unwrap_err(),
        CkptError::BadMagic
    ));
    fs::write(&newest, vec![0u8; 4096]).unwrap();
    assert!(matches!(
        load_checkpoint(&newest).unwrap_err(),
        CkptError::BadMagic
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fallback_skips_every_corrupt_file_to_the_newest_valid_one() {
    let (dir, newest, bytes) = golden("fallback");
    let files = checkpoint_files(&dir).unwrap();
    let second = files[1].clone();
    let second_ckpt = load_checkpoint(&second).unwrap();

    // Corrupt the newest file: fallback lands on the second.
    fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();
    let (path, ckpt) = latest_valid_checkpoint(&dir).unwrap().expect("fallback");
    assert_eq!(path, second);
    assert_eq!(ckpt.frame(), second_ckpt.frame());

    // Corrupt every checkpoint: no valid candidate remains, and that is
    // an orderly `None`, not a panic.
    for f in checkpoint_files(&dir).unwrap() {
        fs::write(&f, b"O2OCgarbage").unwrap();
    }
    assert!(latest_valid_checkpoint(&dir).unwrap().is_none());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_stray_tmp_file_is_invisible_to_the_loader() {
    let (dir, _newest, bytes) = golden("tmp");
    // A crash between `File::create` and `rename` leaves a .tmp around;
    // it must never be considered a checkpoint candidate.
    let stray = dir.join("ckpt-999999999999.o2oc.tmp");
    fs::write(&stray, &bytes[..bytes.len() / 2]).unwrap();
    let files = checkpoint_files(&dir).unwrap();
    assert!(files.iter().all(|f| f != &stray));
    assert!(latest_valid_checkpoint(&dir).unwrap().is_some());
    let _ = fs::remove_dir_all(&dir);
}
