//! Kill-and-resume bit-identity.
//!
//! A checkpointed run is killed at arbitrary frame boundaries (the
//! `stop_after_frames` crash hook — the in-process equivalent of
//! SIGKILL), mid-checkpoint-write (a torn `.tmp`/truncated newest file),
//! and by byte-level WAL corruption. Each resumed run must finish with a
//! [`SimReport`] whose `deterministic_digest` — every result field —
//! equals the uninterrupted run's, across kill points × thread counts ×
//! shard modes × fault plans × warm/cold incremental modes.

use o2o_core::{IncrementalMode, NonSharingDispatcher, PreferenceParams, ShardMode, ShardSpec};
use o2o_geo::Euclidean;
use o2o_par::Parallelism;
use o2o_sim::{
    latest_valid_checkpoint, policy, wal_frames, CheckpointSpec, CkptError, DispatchPolicy,
    FaultPlan, RunOutcome, SimConfig, SimReport, Simulator,
};
use o2o_trace::{boston_september_2012, Trace};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("o2o-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs to completion while "dying" at each frame count in `kills`.
/// Every death spawns a fresh policy (a real restarted process has no
/// warm state) and resumes from the directory.
fn run_with_kills<P: DispatchPolicy>(
    sim: &Simulator,
    trace: &Trace,
    make_policy: impl Fn() -> P,
    spec: &CheckpointSpec,
    kills: &[u64],
) -> SimReport {
    for &k in kills {
        let mut p = make_policy();
        let spec_k = spec.clone().with_stop_after_frames(k);
        match sim
            .run_checkpointed(trace, &mut p, &spec_k)
            .expect("killed run segment")
        {
            RunOutcome::Stopped { .. } => {}
            // The kill point can land past the natural end; that is a
            // legitimate sweep draw, the run just finishes early.
            RunOutcome::Completed(r) => return *r,
        }
    }
    let mut p = make_policy();
    sim.run_checkpointed(trace, &mut p, spec)
        .expect("final resumed segment")
        .report()
        .expect("runs to completion")
}

fn assert_result_identical(uninterrupted: &SimReport, resumed: &SimReport) {
    assert_eq!(
        uninterrupted.deterministic_digest(),
        resumed.deterministic_digest(),
        "resumed run must be bit-identical on result fields"
    );
    // Digest equality should mean field equality; spot-check the fields
    // directly so a digest bug cannot mask a real divergence.
    assert_eq!(uninterrupted.served, resumed.served);
    assert_eq!(uninterrupted.frames, resumed.frames);
    assert_eq!(uninterrupted.delays_min, resumed.delays_min);
    assert_eq!(
        uninterrupted.passenger_dissatisfaction,
        resumed.passenger_dissatisfaction
    );
    assert_eq!(
        uninterrupted.taxi_dissatisfaction,
        resumed.taxi_dissatisfaction
    );
    assert_eq!(uninterrupted.total_drive_km, resumed.total_drive_km);
    assert_eq!(uninterrupted.queue_by_frame, resumed.queue_by_frame);
    assert_eq!(uninterrupted.idle_by_frame, resumed.idle_by_frame);
    assert_eq!(
        uninterrupted.faults.taxi_dropouts,
        resumed.faults.taxi_dropouts
    );
    assert_eq!(
        uninterrupted.faults.request_cancellations,
        resumed.faults.request_cancellations
    );
    assert_eq!(uninterrupted.degradations.len(), resumed.degradations.len());
}

#[test]
fn single_kill_and_resume_is_bit_identical() {
    let trace = boston_september_2012(0.002).generate(11);
    let params = PreferenceParams::default();
    let sim = Simulator::new(SimConfig::default());
    let mut plain = policy::nstd_p(Euclidean, params);
    let baseline = sim.run(&trace, &mut plain);

    let dir = tmp_dir("single");
    let spec = CheckpointSpec::new(&dir).with_interval(16);
    let resumed = run_with_kills(
        &sim,
        &trace,
        || policy::nstd_p(Euclidean, params),
        &spec,
        &[40],
    );
    assert_result_identical(&baseline, &resumed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn repeated_kills_every_few_frames_still_converge() {
    let trace = boston_september_2012(0.002).generate(23);
    let params = PreferenceParams::default();
    let sim = Simulator::new(SimConfig::default()).with_fault_plan(FaultPlan::uniform(5, 0.08));
    let mut plain = policy::nstd_p(Euclidean, params);
    let baseline = sim.run(&trace, &mut plain);

    // Die after 3 frames of progress, 40 times in a row: forward
    // progress must come from the checkpoint+WAL, not process longevity.
    let dir = tmp_dir("repeated");
    let spec = CheckpointSpec::new(&dir).with_interval(8);
    let kills: Vec<u64> = vec![3; 40];
    let resumed = run_with_kills(
        &sim,
        &trace,
        || policy::nstd_p(Euclidean, params),
        &spec,
        &kills,
    );
    assert_result_identical(&baseline, &resumed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_write_falls_back_to_previous_valid() {
    let trace = boston_september_2012(0.002).generate(31);
    let params = PreferenceParams::default();
    let sim = Simulator::new(SimConfig::default());
    let mut plain = policy::nstd_p(Euclidean, params);
    let baseline = sim.run(&trace, &mut plain);

    let dir = tmp_dir("torn");
    let spec = CheckpointSpec::new(&dir).with_interval(8).with_keep(3);
    let mut p = policy::nstd_p(Euclidean, params);
    let out = sim
        .run_checkpointed(&trace, &mut p, &spec.clone().with_stop_after_frames(30))
        .unwrap();
    assert!(matches!(out, RunOutcome::Stopped { .. }));

    // Simulate a crash mid-checkpoint-write: truncate the newest file to
    // half its length. The loader must fall back to the previous one.
    let mut files = o2o_sim::checkpoint_files(&dir).unwrap();
    assert!(files.len() >= 2, "expected several retained checkpoints");
    let newest = files.remove(0);
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
    let (fallback_path, fallback) = latest_valid_checkpoint(&dir).unwrap().expect("fallback");
    assert_ne!(fallback_path, newest);
    assert!(fallback.frame() < 24, "fell back to an older frame");

    let mut p = policy::nstd_p(Euclidean, params);
    let resumed = sim
        .run_checkpointed(&trace, &mut p, &spec)
        .unwrap()
        .report()
        .unwrap();
    assert_result_identical(&baseline, &resumed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_resumes_identically() {
    let trace = boston_september_2012(0.002).generate(37);
    let params = PreferenceParams::default();
    let sim = Simulator::new(SimConfig::default()).with_fault_plan(FaultPlan::uniform(2, 0.05));
    let mut plain = policy::nstd_p(Euclidean, params);
    let baseline = sim.run(&trace, &mut plain);

    let dir = tmp_dir("torn-wal");
    let spec = CheckpointSpec::new(&dir).with_interval(16);
    let mut p = policy::nstd_p(Euclidean, params);
    let out = sim
        .run_checkpointed(&trace, &mut p, &spec.clone().with_stop_after_frames(27))
        .unwrap();
    assert!(matches!(out, RunOutcome::Stopped { .. }));
    let walled = wal_frames(&dir).unwrap();
    assert!(!walled.is_empty(), "frames past the checkpoint are WALed");

    // Crash landed mid-append: chop 7 bytes off the WAL tail.
    let wal = dir.join("frames.o2ow");
    let bytes = fs::read(&wal).unwrap();
    fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();
    assert_eq!(wal_frames(&dir).unwrap().len(), walled.len() - 1);

    let mut p = policy::nstd_p(Euclidean, params);
    let resumed = sim
        .run_checkpointed(&trace, &mut p, &spec)
        .unwrap()
        .report()
        .unwrap();
    assert_result_identical(&baseline, &resumed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_under_a_different_run_identity_is_refused() {
    let trace = boston_september_2012(0.002).generate(41);
    let params = PreferenceParams::default();
    let sim = Simulator::new(SimConfig::default());
    let dir = tmp_dir("mismatch");
    let spec = CheckpointSpec::new(&dir).with_interval(8);
    let mut p = policy::nstd_p(Euclidean, params);
    let out = sim
        .run_checkpointed(&trace, &mut p, &spec.clone().with_stop_after_frames(20))
        .unwrap();
    assert!(matches!(out, RunOutcome::Stopped { .. }));

    // Same directory, different policy: the fingerprint must refuse it.
    let mut other = policy::nstd_t(Euclidean, params);
    let err = sim.run_checkpointed(&trace, &mut other, &spec).unwrap_err();
    assert!(matches!(err, CkptError::Mismatch(_)), "got {err}");

    // And a different fault plan, same policy, is a different run too.
    let sim2 = Simulator::new(SimConfig::default()).with_fault_plan(FaultPlan::none(1));
    let mut p = policy::nstd_p(Euclidean, params);
    let err = sim2.run_checkpointed(&trace, &mut p, &spec).unwrap_err();
    assert!(matches!(err, CkptError::Mismatch(_)), "got {err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sharded_cold_policy_resumes_identically() {
    let params = PreferenceParams::default();
    let make = || {
        policy::NstdPPolicy::from_dispatcher(
            NonSharingDispatcher::new(Euclidean, params)
                .with_shard_mode(ShardMode::Sharded(ShardSpec::new(8))),
        )
        .with_incremental_mode(IncrementalMode::Cold)
    };
    let trace = boston_september_2012(0.002).generate(9);
    let sim = Simulator::new(SimConfig::default());
    let mut plain = make();
    let baseline = sim.run(&trace, &mut plain);

    let dir = tmp_dir("sharded");
    let spec = CheckpointSpec::new(&dir).with_interval(8);
    let resumed = run_with_kills(&sim, &trace, make, &spec, &[13, 11, 7]);
    assert_result_identical(&baseline, &resumed);
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full sweep: random kill points, thread counts, fault plans,
    /// checkpoint intervals and warm/cold incremental modes. Resume is
    /// always bit-identical on result fields.
    #[test]
    fn kill_resume_sweep_is_bit_identical(
        trace_seed in 0u64..500,
        fault_seed in 0u64..500,
        rate in 0.0f64..0.2,
        threads in 1usize..4,
        interval in 1u64..24,
        cold in any::<bool>(),
        kills in proptest::collection::vec(1u64..30, 1..4usize),
        case_tag in 0u32..u32::MAX,
    ) {
        let trace = boston_september_2012(0.001).generate(trace_seed);
        let params = PreferenceParams::default();
        let mode = if cold { IncrementalMode::Cold } else { IncrementalMode::Warm };
        let make = || policy::nstd_p(Euclidean, params).with_incremental_mode(mode);
        let sim = Simulator::new(SimConfig::default())
            .with_parallelism(Parallelism::fixed(threads))
            .with_fault_plan(FaultPlan::uniform(fault_seed, rate));

        let mut plain = make();
        let baseline = sim.run(&trace, &mut plain);

        let dir = tmp_dir(&format!("sweep-{case_tag}"));
        let spec = CheckpointSpec::new(&dir).with_interval(interval);
        let resumed = run_with_kills(&sim, &trace, make, &spec, &kills);
        prop_assert_eq!(
            baseline.deterministic_digest(),
            resumed.deterministic_digest(),
            "kill/resume diverged (seed {}, kills {:?}, interval {}, cold {})",
            trace_seed, &kills, interval, cold
        );
        prop_assert_eq!(baseline.served, resumed.served);
        prop_assert_eq!(baseline.delays_min, resumed.delays_min);
        prop_assert_eq!(baseline.total_drive_km, resumed.total_drive_km);
        let _ = fs::remove_dir_all(&dir);
    }
}
