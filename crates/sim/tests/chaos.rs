//! Chaos suite: the engine survives arbitrary fault sequences.
//!
//! Property-based end-to-end runs under randomized fault plans, thread
//! counts and compute budgets. The engine must never panic, every
//! request must be accounted for exactly once, and — with an unlimited
//! budget — every frame's dispatch must still be a stable matching on
//! the passengers and drivers that survived the faults.

use o2o_core::{NonSharingDispatcher, PreferenceParams};
use o2o_geo::Euclidean;
use o2o_par::Parallelism;
use o2o_sim::{policy, DispatchPolicy, FrameAssignment, FrameContext, SimConfig, Simulator};
use o2o_trace::{boston_september_2012, Request, RequestId, Taxi, TaxiId};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One dispatched frame as the policy saw it: the (possibly jittered)
/// idle fleet, the pending batch, and the pairs the policy returned.
struct FrameCapture {
    idle: Vec<Taxi>,
    pending: Vec<Request>,
    pairs: Vec<(RequestId, TaxiId)>,
}

/// Wraps a policy, recording every dispatched frame's inputs and
/// outputs while forwarding everything (including budget degradations)
/// to the inner policy.
struct CapturePolicy<P> {
    inner: P,
    frames: Rc<RefCell<Vec<FrameCapture>>>,
}

impl<P: DispatchPolicy> DispatchPolicy for CapturePolicy<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn dispatch(&mut self, ctx: &FrameContext<'_>) -> Vec<FrameAssignment> {
        let out = self.inner.dispatch(ctx);
        self.frames.borrow_mut().push(FrameCapture {
            idle: ctx.idle_taxis.to_vec(),
            pending: ctx.pending.to_vec(),
            pairs: out
                .iter()
                .flat_map(|a| a.members.iter().map(|&m| (m, a.taxi)))
                .collect(),
        });
        out
    }

    fn wants_pickup_distances(&self) -> bool {
        self.inner.wants_pickup_distances()
    }

    fn wants_taxi_grid(&self) -> bool {
        self.inner.wants_taxi_grid()
    }

    fn take_degradation(&mut self) -> Option<o2o_core::Degraded> {
        self.inner.take_degradation()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Unlimited budget: whatever the fault stream does, the run
    /// completes, the request ledger balances, and every frame's output
    /// is a stable matching on the survivors the policy saw.
    #[test]
    fn chaos_run_stays_stable_on_survivors(
        trace_seed in 0u64..1000,
        fault_seed in 0u64..1000,
        rate in 0.0f64..0.3,
        threads in 1usize..4,
    ) {
        let trace = boston_september_2012(0.001).generate(trace_seed);
        let params = PreferenceParams::default();
        let frames: Rc<RefCell<Vec<FrameCapture>>> = Rc::new(RefCell::new(Vec::new()));
        let mut p = CapturePolicy {
            inner: policy::nstd_p(Euclidean, params),
            frames: Rc::clone(&frames),
        };
        let plan = o2o_sim::FaultPlan::uniform(fault_seed, rate);
        let report = Simulator::new(SimConfig::default())
            .with_parallelism(Parallelism::fixed(threads))
            .with_fault_plan(plan)
            .run(&trace, &mut p);

        prop_assert_eq!(
            trace.requests.len() as u64,
            report.served as u64
                + report.unserved_at_end as u64
                + report.faults.request_cancellations
                + report.faults.mid_dispatch_cancellations,
            "request ledger must balance"
        );
        prop_assert!(report.degradations.is_empty(), "unlimited budget never degrades");

        let checker = NonSharingDispatcher::new(Euclidean, params);
        for f in frames.borrow().iter() {
            prop_assert!(
                checker.is_stable_assignment(&f.idle, &f.pending, &f.pairs),
                "frame output must be stable on the surviving passengers/drivers"
            );
        }
        prop_assert!(!frames.borrow().is_empty(), "some frames dispatched");
    }

    /// Finite budgets on top of faults: the ladder may step down (greedy
    /// output is not stable, so no stability assert here), but the run
    /// still completes, never panics, and the ledger still balances.
    #[test]
    fn chaos_run_survives_finite_budgets(
        trace_seed in 0u64..1000,
        fault_seed in 0u64..1000,
        rate in 0.0f64..0.3,
        deadline_us in 0u64..2000,
    ) {
        use o2o_core::TimeBudgetSpec;
        let trace = boston_september_2012(0.001).generate(trace_seed);
        let params = PreferenceParams::default();
        let mut p = policy::nstd_t(Euclidean, params);
        let cfg = SimConfig {
            frame_budget: TimeBudgetSpec::default()
                .with_deadline(std::time::Duration::from_micros(deadline_us)),
            ..SimConfig::default()
        };
        let report = Simulator::new(cfg)
            .with_fault_plan(o2o_sim::FaultPlan::uniform(fault_seed, rate))
            .run(&trace, &mut p);
        prop_assert_eq!(
            trace.requests.len() as u64,
            report.served as u64
                + report.unserved_at_end as u64
                + report.faults.request_cancellations
                + report.faults.mid_dispatch_cancellations
        );
        // Every recorded degradation names a real ladder step.
        for e in &report.degradations {
            prop_assert!(e.degraded.from != e.degraded.to);
        }
    }
}

/// A zero-fault plan and an unlimited budget leave the engine on the
/// exact code path of a plain run: outputs are bit-identical.
#[test]
fn zero_fault_unlimited_budget_run_is_bit_identical_to_plain() {
    let trace = boston_september_2012(0.002).generate(17);
    let params = PreferenceParams::default();
    let mut plain = policy::nstd_t(Euclidean, params);
    let mut guarded = policy::nstd_t(Euclidean, params);
    let a = Simulator::new(SimConfig::default()).run(&trace, &mut plain);
    let b = Simulator::new(SimConfig::default())
        .with_fault_plan(o2o_sim::FaultPlan::none(123))
        .run(&trace, &mut guarded);
    assert_eq!(a.delays_min, b.delays_min);
    assert_eq!(a.passenger_dissatisfaction, b.passenger_dissatisfaction);
    assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
    assert_eq!(a.total_drive_km, b.total_drive_km);
    assert_eq!(a.queue_by_frame, b.queue_by_frame);
    assert_eq!(a.idle_by_frame, b.idle_by_frame);
    assert_eq!(b.faults.total_injected(), 0);
}
