//! The observability layer's core contract: enabling a recorder — with
//! or without sinks — never changes dispatch results, only produces
//! telemetry. These tests run the same trace through the engine with a
//! disabled recorder, the default collecting recorder, and a
//! sink-bearing recorder, and require the dispatch-facing report fields
//! to be bit-identical; the telemetry side is then checked for internal
//! consistency (stage self-times bounded by frame wall-clock, balanced
//! span events, counters matching the report's derived views).

use o2o_core::PreferenceParams;
use o2o_geo::Euclidean;
use o2o_obs::Event;
use o2o_sim::{policy, MemorySink, Recorder, SimConfig, SimReport, Simulator, SloMetric, SloSpec};
use o2o_trace::boston_september_2012;

/// Asserts every dispatch-facing field matches exactly. Telemetry
/// fields (`stage_breakdown`) are intentionally excluded — they are the
/// one thing allowed to differ.
fn assert_dispatch_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.served, b.served);
    assert_eq!(a.unserved_at_end, b.unserved_at_end);
    assert_eq!(a.frames, b.frames);
    assert_eq!(a.delays_min, b.delays_min);
    assert_eq!(a.passenger_dissatisfaction, b.passenger_dissatisfaction);
    assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
    assert_eq!(a.shared_requests, b.shared_requests);
    assert_eq!(a.total_drive_km, b.total_drive_km);
    assert_eq!(a.queue_by_frame, b.queue_by_frame);
    assert_eq!(a.idle_by_frame, b.idle_by_frame);
    assert_eq!(a.dispatch_errors, b.dispatch_errors);
    assert_eq!(a.degradations.len(), b.degradations.len());
}

#[test]
fn recorder_configurations_are_bit_identical_across_policies() {
    let trace = boston_september_2012(0.002).generate(17);
    let params = PreferenceParams::default();
    type PolicyFactory = fn(Euclidean, PreferenceParams) -> Box<dyn o2o_sim::DispatchPolicy>;
    let factories: Vec<(&str, PolicyFactory)> = vec![
        ("NSTD-P", |m, p| Box::new(policy::nstd_p(m, p))),
        ("STD-P", |m, p| Box::new(policy::std_p(m, p))),
        ("Near", |m, p| Box::new(policy::near(m, p))),
        ("RAII", |m, p| Box::new(policy::raii(m, p))),
    ];
    for (name, make) in factories {
        let mut p_disabled = make(Euclidean, params);
        let mut p_default = make(Euclidean, params);
        let mut p_sink = make(Euclidean, params);

        let disabled = Simulator::new(SimConfig::default())
            .with_recorder(Recorder::disabled())
            .run(&trace, &mut p_disabled);
        let default = Simulator::new(SimConfig::default()).run(&trace, &mut p_default);
        let (sink, handle) = MemorySink::new();
        let streamed = Simulator::new(SimConfig::default())
            .with_recorder(Recorder::with_sink(Box::new(sink)))
            .run(&trace, &mut p_sink);

        assert_dispatch_identical(&disabled, &default);
        assert_dispatch_identical(&disabled, &streamed);

        // The disabled arm really recorded nothing; the enabled arms
        // recorded one FrameStats per dispatched frame.
        assert!(disabled.stage_breakdown.is_empty(), "{name}");
        assert!(!default.stage_breakdown.is_empty(), "{name}");
        assert_eq!(
            default.stage_breakdown.frames.len(),
            streamed.stage_breakdown.frames.len(),
            "{name}"
        );
        assert!(!handle.is_empty(), "{name}: sink saw events");
    }
}

#[test]
fn slo_monitoring_never_changes_dispatch_results() {
    // Specs chosen to actually fire on this workload: a p50 latency
    // ceiling of 0 ms breaches on the first window, and a served-ratio
    // floor of 1.0 breaches whenever any window leaves a request
    // waiting. The monitor must observe, never steer.
    let specs = || {
        vec![
            SloSpec::max("frame-p50", SloMetric::FrameP50Ms, 0.0, 8),
            SloSpec::min("served", SloMetric::ServedRatio, 1.0, 8),
            SloSpec::max("degrade", SloMetric::DegradationRate, 0.0, 8),
        ]
    };
    let trace = boston_september_2012(0.002).generate(29);
    let params = PreferenceParams::default();
    let mut p_plain = policy::nstd_p(Euclidean, params);
    let mut p_slo = policy::nstd_p(Euclidean, params);
    let mut p_slo_disabled = policy::nstd_p(Euclidean, params);

    let plain = Simulator::new(SimConfig::default()).run(&trace, &mut p_plain);
    let monitored = Simulator::new(SimConfig::default())
        .with_slo(specs())
        .run(&trace, &mut p_slo);
    // SLO specs with a *disabled* recorder still populate the report's
    // event list (the monitor is engine-side, not recorder-side).
    let monitored_dark = Simulator::new(SimConfig::default())
        .with_slo(specs())
        .with_recorder(Recorder::disabled())
        .run(&trace, &mut p_slo_disabled);

    assert_dispatch_identical(&plain, &monitored);
    assert_dispatch_identical(&plain, &monitored_dark);
    assert!(plain.slo_events.is_empty(), "no specs, no events");
    assert!(
        !monitored.slo_events.is_empty(),
        "a 0 ms p50 ceiling must breach"
    );
    assert_eq!(
        monitored.slo_events.len(),
        monitored_dark.slo_events.len(),
        "recorder enablement must not change what the monitor sees"
    );
    for (a, b) in monitored.slo_events.iter().zip(&monitored_dark.slo_events) {
        assert_eq!(a.spec(), b.spec());
        assert_eq!(a.frame(), b.frame());
        assert_eq!(a.is_breach(), b.is_breach());
    }
}

#[test]
fn stage_self_times_are_bounded_by_frame_wall_clock() {
    let trace = boston_september_2012(0.003).generate(5);
    let mut p = policy::nstd_p(Euclidean, PreferenceParams::default());
    let report = Simulator::new(SimConfig::default()).run(&trace, &mut p);
    assert!(!report.stage_breakdown.is_empty());
    for fs in &report.stage_breakdown.frames {
        let total = fs.total_stage_ms();
        // Self-times are exclusive (child time subtracted), so their sum
        // can never exceed the frame's wall-clock. Allow a whisker of
        // float/rounding slack.
        assert!(
            total <= fs.wall_ms * 1.01 + 0.5,
            "frame {}: stage self-times {total} ms exceed wall {} ms",
            fs.frame,
            fs.wall_ms
        );
        // The frame recorded at least the policy_dispatch stage.
        assert!(
            fs.stage_self_ms("policy_dispatch") >= 0.0
                && fs.stages.iter().any(|(name, _)| name == "policy_dispatch"),
            "frame {} missing policy_dispatch span",
            fs.frame
        );
    }
}

#[test]
fn span_events_balance_and_counters_match_the_report() {
    let trace = boston_september_2012(0.002).generate(23);
    let params = PreferenceParams::default();
    let mut wrapped = policy::cached(Euclidean, |metric| {
        policy::StdPPolicy::from_dispatcher(o2o_core::SharingDispatcher::new(metric, params))
    });
    let (sink, handle) = MemorySink::new();
    let recorder = Recorder::with_sink(Box::new(sink));
    let report = Simulator::new(SimConfig::default())
        .with_recorder(recorder.clone())
        .run(&trace, &mut wrapped);

    // Every span that opened also closed, in stack order per id.
    let events = handle.events();
    let mut open: Vec<u64> = Vec::new();
    let (mut frame_starts, mut frame_ends) = (0u64, 0u64);
    for e in &events {
        match e {
            Event::SpanStart { id, .. } => open.push(*id),
            Event::SpanEnd { id, .. } => {
                assert_eq!(open.pop(), Some(*id), "spans close innermost-first");
            }
            Event::FrameStart { .. } => frame_starts += 1,
            Event::FrameEnd { .. } => frame_ends += 1,
            _ => {}
        }
    }
    assert!(open.is_empty(), "all spans closed by the end of the run");
    assert_eq!(frame_starts, frame_ends);
    assert_eq!(frame_starts as usize, report.stage_breakdown.frames.len());

    // The recorder's cumulative counters agree with the report's
    // derived per-frame views.
    assert_eq!(recorder.counter("cache.hits"), report.total_cache_hits());
    assert_eq!(
        recorder.counter("cache.misses"),
        report.total_cache_misses()
    );
    assert!(report.total_cache_misses() > 0);
    // The matching substrate recorded through the engine's scope.
    assert!(recorder.counter("match.proposals") > 0);
    // Every counter increment happened inside a frame window, so the
    // cumulative totals equal the per-frame deltas summed.
    for (name, total) in recorder.counters() {
        assert_eq!(
            total,
            report.stage_breakdown.counter_total(&name),
            "counter {name} splits exactly across frames"
        );
    }
}
