//! A road network as a weighted graph with shortest-path queries.
//!
//! The paper defines `D(·,·)` as "the shortest path distance between
//! different locations". The default experiments use the Euclidean plane,
//! but this module provides a real graph metric so that every algorithm can
//! also be exercised on a street-like topology: queries snap their endpoints
//! to the nearest road node and run A* (with the Euclidean lower bound as
//! heuristic) over the graph.

use crate::{BBox, Metric, Point};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Mutex;

/// Identifier of a node (intersection) in a [`RoadNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of an edge (road segment) in a [`RoadNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// Errors from building or querying a [`RoadNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoadNetworkError {
    /// An edge referenced a node index that does not exist.
    UnknownNode(usize),
    /// An edge was given a negative or non-finite length.
    BadEdgeLength {
        /// Index of the offending edge in insertion order.
        edge: usize,
    },
    /// The network has no nodes, so no query can be answered.
    Empty,
}

impl fmt::Display for RoadNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetworkError::UnknownNode(n) => write!(f, "edge references unknown node {n}"),
            RoadNetworkError::BadEdgeLength { edge } => {
                write!(f, "edge {edge} has a negative or non-finite length")
            }
            RoadNetworkError::Empty => write!(f, "road network has no nodes"),
        }
    }
}

impl std::error::Error for RoadNetworkError {}

#[derive(Debug, Clone, Copy)]
struct HalfEdge {
    to: usize,
    length: f64,
}

/// A weighted undirected road graph with shortest-path distance queries.
///
/// Build one with [`RoadNetworkBuilder`] or generate a synthetic street grid
/// with [`RoadNetwork::grid`]. The network implements [`Metric`]: arbitrary
/// [`Point`]s are snapped to their nearest node and the distance is the
/// graph shortest path between the snapped nodes (a reasonable model when
/// node spacing is small relative to trip lengths).
///
/// # Examples
///
/// ```
/// use o2o_geo::{Metric, Point, RoadNetwork};
///
/// // A 4×4 street grid over a 3 km square: rectilinear routes only.
/// let net = RoadNetwork::grid(4, 4, 1.0);
/// let d = net.distance(Point::new(0.0, 0.0), Point::new(3.0, 3.0));
/// assert!((d - 6.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct RoadNetwork {
    positions: Vec<Point>,
    adjacency: Vec<Vec<HalfEdge>>,
    edge_count: usize,
    bbox: BBox,
    // Snap-acceleration grid: cell -> node indices.
    snap_cells: Vec<Vec<usize>>,
    snap_cols: usize,
    snap_rows: usize,
    snap_cell_size: f64,
    // Small shortest-path cache keyed by snapped node pair.
    cache: Mutex<std::collections::HashMap<(usize, usize), f64>>,
}

impl RoadNetwork {
    /// Generates a rectangular street grid with `cols × rows` intersections
    /// spaced `spacing` kilometres apart, with the south-west corner at the
    /// origin.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero or `spacing` is not positive.
    #[must_use]
    pub fn grid(cols: usize, rows: usize, spacing: f64) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one node");
        assert!(
            spacing > 0.0 && spacing.is_finite(),
            "spacing must be positive and finite"
        );
        let mut b = RoadNetworkBuilder::new();
        for r in 0..rows {
            for c in 0..cols {
                b.add_node(Point::new(c as f64 * spacing, r as f64 * spacing));
            }
        }
        let idx = |c: usize, r: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.add_edge(idx(c, r), idx(c + 1, r), spacing);
                }
                if r + 1 < rows {
                    b.add_edge(idx(c, r), idx(c, r + 1), spacing);
                }
            }
        }
        b.build().expect("grid construction is always valid")
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Position of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn position(&self, id: NodeId) -> Point {
        self.positions[id.0]
    }

    /// Bounding box of all node positions.
    #[must_use]
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// The node nearest to `p` in Euclidean distance.
    #[must_use]
    pub fn snap(&self, p: Point) -> NodeId {
        debug_assert!(!self.positions.is_empty());
        let p = self.bbox.clamp(p);
        let col = (((p.x - self.bbox.min().x) / self.snap_cell_size) as usize)
            .min(self.snap_cols.saturating_sub(1));
        let row = (((p.y - self.bbox.min().y) / self.snap_cell_size) as usize)
            .min(self.snap_rows.saturating_sub(1));
        // Search outward ring by ring until a candidate is found, then one
        // more ring to guarantee correctness.
        let mut best: Option<(f64, usize)> = None;
        let max_ring = self.snap_cols.max(self.snap_rows);
        let mut found_ring = None;
        for ring in 0..=max_ring {
            if let Some(fr) = found_ring {
                if ring > fr + 1 {
                    break;
                }
            }
            let mut any_cell = false;
            for (c, r) in ring_cells(col, row, ring, self.snap_cols, self.snap_rows) {
                any_cell = true;
                for &n in &self.snap_cells[r * self.snap_cols + c] {
                    let d = self.positions[n].euclidean_sq(p);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, n));
                    }
                }
            }
            if best.is_some() && found_ring.is_none() {
                found_ring = Some(ring);
            }
            if !any_cell && ring > 0 {
                break;
            }
        }
        NodeId(best.expect("non-empty network always snaps").1)
    }

    /// Graph shortest-path distance between two nodes, in kilometres.
    ///
    /// Runs A* with the straight-line lower bound. Returns `f64::INFINITY`
    /// when the nodes are disconnected.
    #[must_use]
    pub fn node_distance(&self, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            return 0.0;
        }
        let key = (from.0.min(to.0), from.0.max(to.0));
        if let Some(&d) = self.cache.lock().expect("cache poisoned").get(&key) {
            return d;
        }
        let d = self.astar(from.0, to.0);
        let mut cache = self.cache.lock().expect("cache poisoned");
        if cache.len() > 1_000_000 {
            cache.clear();
        }
        cache.insert(key, d);
        d
    }

    /// The shortest path between two nodes as a node sequence plus its
    /// length, or `None` when they are disconnected.
    ///
    /// Runs Dijkstra with parent tracking; for distance-only queries
    /// prefer [`RoadNetwork::node_distance`] (A*, cached).
    ///
    /// # Examples
    ///
    /// ```
    /// use o2o_geo::{NodeId, RoadNetwork};
    ///
    /// let net = RoadNetwork::grid(3, 3, 1.0);
    /// let (path, len) = net.shortest_path(NodeId(0), NodeId(8)).unwrap();
    /// assert_eq!(len, 4.0);
    /// assert_eq!(path.first(), Some(&NodeId(0)));
    /// assert_eq!(path.last(), Some(&NodeId(8)));
    /// assert_eq!(path.len(), 5); // four 1 km legs
    /// ```
    #[must_use]
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<(Vec<NodeId>, f64)> {
        let n = self.positions.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![usize::MAX; n];
        dist[from.0] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            cost: 0.0,
            node: from.0,
        });
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if node == to.0 {
                break;
            }
            if cost > dist[node] {
                continue;
            }
            for he in &self.adjacency[node] {
                let nd = cost + he.length;
                if nd < dist[he.to] {
                    dist[he.to] = nd;
                    parent[he.to] = node;
                    heap.push(HeapEntry {
                        cost: nd,
                        node: he.to,
                    });
                }
            }
        }
        if dist[to.0].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to.0;
        while cur != from.0 {
            cur = parent[cur];
            path.push(NodeId(cur));
        }
        path.reverse();
        Some((path, dist[to.0]))
    }

    /// Shortest-path distances from `from` to every node (Dijkstra).
    ///
    /// Disconnected nodes get `f64::INFINITY`.
    #[must_use]
    pub fn distances_from(&self, from: NodeId) -> Vec<f64> {
        let n = self.positions.len();
        let mut dist = vec![f64::INFINITY; n];
        dist[from.0] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            cost: 0.0,
            node: from.0,
        });
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if cost > dist[node] {
                continue;
            }
            for he in &self.adjacency[node] {
                let nd = cost + he.length;
                if nd < dist[he.to] {
                    dist[he.to] = nd;
                    heap.push(HeapEntry {
                        cost: nd,
                        node: he.to,
                    });
                }
            }
        }
        dist
    }

    fn astar(&self, from: usize, to: usize) -> f64 {
        let n = self.positions.len();
        let goal = self.positions[to];
        let mut dist = vec![f64::INFINITY; n];
        dist[from] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            cost: self.positions[from].euclidean(goal),
            node: from,
        });
        while let Some(HeapEntry { cost: _, node }) = heap.pop() {
            if node == to {
                return dist[to];
            }
            let g = dist[node];
            for he in &self.adjacency[node] {
                let nd = g + he.length;
                if nd < dist[he.to] {
                    dist[he.to] = nd;
                    heap.push(HeapEntry {
                        cost: nd + self.positions[he.to].euclidean(goal),
                        node: he.to,
                    });
                }
            }
        }
        f64::INFINITY
    }
}

/// Cells on the boundary of the square ring at Chebyshev radius `ring`.
fn ring_cells(
    col: usize,
    row: usize,
    ring: usize,
    cols: usize,
    rows: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let c0 = col as isize - ring as isize;
    let c1 = col as isize + ring as isize;
    let r0 = row as isize - ring as isize;
    let r1 = row as isize + ring as isize;
    let mut cells = Vec::new();
    for c in c0..=c1 {
        for r in [r0, r1] {
            if c >= 0 && r >= 0 && (c as usize) < cols && (r as usize) < rows {
                cells.push((c as usize, r as usize));
            }
        }
    }
    if ring > 0 {
        for r in (r0 + 1)..r1 {
            for c in [c0, c1] {
                if c >= 0 && r >= 0 && (c as usize) < cols && (r as usize) < rows {
                    cells.push((c as usize, r as usize));
                }
            }
        }
    }
    cells.into_iter()
}

impl Metric for RoadNetwork {
    fn distance(&self, a: Point, b: Point) -> f64 {
        self.node_distance(self.snap(a), self.snap(b))
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Incremental builder for [`RoadNetwork`].
///
/// # Examples
///
/// ```
/// use o2o_geo::{Point, RoadNetworkBuilder};
///
/// let mut b = RoadNetworkBuilder::new();
/// let a = b.add_node(Point::new(0.0, 0.0));
/// let c = b.add_node(Point::new(1.0, 0.0));
/// b.add_edge(a.0, c.0, 1.0);
/// let net = b.build()?;
/// assert_eq!(net.node_count(), 2);
/// # Ok::<(), o2o_geo::RoadNetworkError>(())
/// ```
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    positions: Vec<Point>,
    edges: Vec<(usize, usize, f64)>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection at `p`, returning its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        self.positions.push(p);
        NodeId(self.positions.len() - 1)
    }

    /// Adds an undirected road of the given `length` (km) between node
    /// indices `a` and `b`. Validation happens in [`Self::build`].
    pub fn add_edge(&mut self, a: usize, b: usize, length: f64) -> &mut Self {
        self.edges.push((a, b, length));
        self
    }

    /// Adds an undirected road whose length is the straight-line distance
    /// between the two endpoints.
    pub fn add_straight_edge(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        let len = self.positions[a.0].euclidean(self.positions[b.0]);
        self.edges.push((a.0, b.0, len));
        self
    }

    /// Validates and builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`RoadNetworkError::Empty`] if no nodes were added,
    /// [`RoadNetworkError::UnknownNode`] for edges referencing missing
    /// nodes, and [`RoadNetworkError::BadEdgeLength`] for negative or
    /// non-finite lengths.
    pub fn build(&self) -> Result<RoadNetwork, RoadNetworkError> {
        if self.positions.is_empty() {
            return Err(RoadNetworkError::Empty);
        }
        let n = self.positions.len();
        let mut adjacency = vec![Vec::new(); n];
        for (i, &(a, b, len)) in self.edges.iter().enumerate() {
            if a >= n {
                return Err(RoadNetworkError::UnknownNode(a));
            }
            if b >= n {
                return Err(RoadNetworkError::UnknownNode(b));
            }
            if !(len.is_finite() && len >= 0.0) {
                return Err(RoadNetworkError::BadEdgeLength { edge: i });
            }
            adjacency[a].push(HalfEdge { to: b, length: len });
            adjacency[b].push(HalfEdge { to: a, length: len });
        }
        let bbox = BBox::from_points(self.positions.iter().copied()).expect("non-empty");
        // Aim for ~1 node per cell on average, clamped to a sane range.
        let target_cells = (n as f64).sqrt().ceil().max(1.0);
        let cell_size = (bbox.width().max(bbox.height()) / target_cells).max(1e-9);
        let cols = ((bbox.width() / cell_size).ceil() as usize).max(1);
        let rows = ((bbox.height() / cell_size).ceil() as usize).max(1);
        let mut snap_cells = vec![Vec::new(); cols * rows];
        for (i, p) in self.positions.iter().enumerate() {
            let c = (((p.x - bbox.min().x) / cell_size) as usize).min(cols - 1);
            let r = (((p.y - bbox.min().y) / cell_size) as usize).min(rows - 1);
            snap_cells[r * cols + c].push(i);
        }
        Ok(RoadNetwork {
            positions: self.positions.clone(),
            adjacency,
            edge_count: self.edges.len(),
            bbox,
            snap_cells,
            snap_cols: cols,
            snap_rows: rows,
            snap_cell_size: cell_size,
            cache: Mutex::new(std::collections::HashMap::new()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grid_distance_is_rectilinear() {
        let net = RoadNetwork::grid(5, 5, 1.0);
        assert_eq!(net.node_count(), 25);
        assert_eq!(net.edge_count(), 40);
        let d = net.distance(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        assert!((d - 8.0).abs() < 1e-9);
    }

    #[test]
    fn snap_finds_nearest_node() {
        let net = RoadNetwork::grid(3, 3, 1.0);
        let id = net.snap(Point::new(1.1, 1.9));
        assert_eq!(net.position(id), Point::new(1.0, 2.0));
    }

    #[test]
    fn snap_far_outside_bbox() {
        let net = RoadNetwork::grid(3, 3, 1.0);
        let id = net.snap(Point::new(100.0, -100.0));
        assert_eq!(net.position(id), Point::new(2.0, 0.0));
    }

    #[test]
    fn node_distance_zero_on_same_node() {
        let net = RoadNetwork::grid(2, 2, 1.0);
        assert_eq!(net.node_distance(NodeId(0), NodeId(0)), 0.0);
    }

    #[test]
    fn disconnected_components_are_infinite() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(10.0, 0.0));
        let net = b.build().unwrap();
        assert!(net.node_distance(NodeId(0), NodeId(1)).is_infinite());
    }

    #[test]
    fn builder_rejects_unknown_node() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::ORIGIN);
        b.add_edge(0, 7, 1.0);
        assert_eq!(b.build().unwrap_err(), RoadNetworkError::UnknownNode(7));
    }

    #[test]
    fn builder_rejects_bad_length() {
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::ORIGIN);
        b.add_node(Point::new(1.0, 0.0));
        b.add_edge(0, 1, f64::NAN);
        assert_eq!(
            b.build().unwrap_err(),
            RoadNetworkError::BadEdgeLength { edge: 0 }
        );
    }

    #[test]
    fn builder_rejects_empty() {
        assert_eq!(
            RoadNetworkBuilder::new().build().unwrap_err(),
            RoadNetworkError::Empty
        );
    }

    #[test]
    fn straight_edge_uses_euclidean_length() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(3.0, 4.0));
        b.add_straight_edge(a, c);
        let net = b.build().unwrap();
        assert!((net.node_distance(a, c) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distances_from_matches_pairwise() {
        let net = RoadNetwork::grid(4, 3, 0.5);
        let all = net.distances_from(NodeId(0));
        for (i, &got) in all.iter().enumerate() {
            let d = net.node_distance(NodeId(0), NodeId(i));
            assert!((got - d).abs() < 1e-9, "node {i}: {got} vs {d}");
        }
    }

    #[test]
    fn astar_takes_shortcut_when_available() {
        // Square with a diagonal: 0-1-2-3 around plus 0-2 diagonal.
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let n2 = b.add_node(Point::new(1.0, 1.0));
        let n3 = b.add_node(Point::new(0.0, 1.0));
        b.add_straight_edge(n0, n1);
        b.add_straight_edge(n1, n2);
        b.add_straight_edge(n2, n3);
        b.add_straight_edge(n3, n0);
        b.add_straight_edge(n0, n2);
        let net = b.build().unwrap();
        assert!((net.node_distance(n0, n2) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_walks_edges() {
        let net = RoadNetwork::grid(4, 4, 0.5);
        let (path, len) = net.shortest_path(NodeId(0), NodeId(15)).unwrap();
        assert!((len - 3.0).abs() < 1e-12);
        assert_eq!(path.len(), 7);
        // Every consecutive pair must be an edge; lengths must sum up.
        let mut total = 0.0;
        for w in path.windows(2) {
            let d = net.node_distance(w[0], w[1]);
            assert!((d - 0.5).abs() < 1e-12, "non-adjacent hop");
            total += d;
        }
        assert!((total - len).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_trivial_and_disconnected() {
        let net = RoadNetwork::grid(2, 2, 1.0);
        let (path, len) = net.shortest_path(NodeId(0), NodeId(0)).unwrap();
        assert_eq!(path, vec![NodeId(0)]);
        assert_eq!(len, 0.0);
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::ORIGIN);
        b.add_node(Point::new(5.0, 0.0));
        let net = b.build().unwrap();
        assert!(net.shortest_path(NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(RoadNetworkError::UnknownNode(3).to_string().contains('3'));
        assert!(RoadNetworkError::Empty.to_string().contains("no nodes"));
        assert!(RoadNetworkError::BadEdgeLength { edge: 1 }
            .to_string()
            .contains("edge 1"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Grid metric equals the Manhattan distance between snapped nodes.
        #[test]
        fn grid_metric_is_manhattan_on_nodes(
            ax in 0usize..6, ay in 0usize..6, bx in 0usize..6, by in 0usize..6,
        ) {
            let net = RoadNetwork::grid(6, 6, 1.0);
            let a = Point::new(ax as f64, ay as f64);
            let b = Point::new(bx as f64, by as f64);
            let expect = a.manhattan(b);
            prop_assert!((net.distance(a, b) - expect).abs() < 1e-9);
        }

        /// Graph metric axioms hold on arbitrary snapped pairs.
        #[test]
        fn road_metric_axioms(
            ax in 0.0..5.0f64, ay in 0.0..5.0f64,
            bx in 0.0..5.0f64, by in 0.0..5.0f64,
            cx in 0.0..5.0f64, cy in 0.0..5.0f64,
        ) {
            let net = RoadNetwork::grid(6, 6, 1.0);
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            let dab = net.distance(a, b);
            let dba = net.distance(b, a);
            prop_assert!((dab - dba).abs() < 1e-9);
            prop_assert!(net.distance(a, c) <= dab + net.distance(b, c) + 1e-9);
        }
    }
}
