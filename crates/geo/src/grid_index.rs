//! Uniform-grid spatial index for nearest-neighbour queries over taxis.
//!
//! The greedy baseline ("Near") and the RAII baseline both need fast
//! "nearest idle taxi" queries; preference-list construction benefits from
//! "all taxis within radius" queries. A uniform grid over the city bounding
//! box answers both in roughly `O(k)` for `k` results, which is far better
//! than linear scans across a 700-taxi fleet every frame.

use crate::{BBox, Point};
use o2o_par::{par_map, Parallelism};

/// Cell side (km) that works well for per-frame taxi indices: the city's
/// larger extent split into 32 cells, but never below 250 m so tiny boxes
/// do not degenerate into thousands of near-empty cells.
///
/// This is the sizing already used by the `near`/`raii` baselines; the
/// sparse preference-list builder shares it so one grid per frame serves
/// every consumer.
#[must_use]
pub fn heuristic_cell_size(bbox: BBox) -> f64 {
    (bbox.width().max(bbox.height()) / 32.0).max(0.25)
}

/// An item returned from a proximity query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor<T> {
    /// The stored payload (e.g. a taxi id).
    pub item: T,
    /// Straight-line distance from the query point, in kilometres.
    pub distance: f64,
}

/// A uniform-grid index over payloads located at [`Point`]s.
///
/// Distances used by the index are Euclidean. When the dispatch metric is a
/// road network, the index still serves as a candidate generator (Euclidean
/// distance lower-bounds any reasonable road metric), and callers re-rank
/// candidates with the true metric.
///
/// # Examples
///
/// ```
/// use o2o_geo::{BBox, GridIndex, Point};
///
/// let city = BBox::square(Point::new(0.0, 0.0), 10.0);
/// let mut idx = GridIndex::new(city, 1.0);
/// idx.insert("taxi-a", Point::new(1.0, 1.0));
/// idx.insert("taxi-b", Point::new(-3.0, 2.0));
/// let nearest = idx.nearest(Point::new(0.5, 0.5)).unwrap();
/// assert_eq!(nearest.item, "taxi-a");
/// ```
/// Two indices compare equal only when they have the same geometry *and*
/// the same items in the same per-cell order — i.e. when they are
/// query-indistinguishable, tie-breaking included. This is what the
/// incremental maintenance layer's debug checks assert against a fresh
/// [`GridIndex::bulk_build`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridIndex<T> {
    bbox: BBox,
    cell_size: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<(T, Point)>>,
    len: usize,
}

impl<T: Clone + PartialEq> GridIndex<T> {
    /// Creates an index covering `bbox` with square cells of side
    /// `cell_size` kilometres. Points outside the box are clamped onto it.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    #[must_use]
    pub fn new(bbox: BBox, cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell_size must be positive and finite, got {cell_size}"
        );
        let cols = ((bbox.width() / cell_size).ceil() as usize).max(1);
        let rows = ((bbox.height() / cell_size).ceil() as usize).max(1);
        GridIndex {
            bbox,
            cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    /// Builds an index from a batch of items in one pass, pre-sizing every
    /// cell so construction does no per-insert reallocation.
    ///
    /// Equivalent to [`GridIndex::new`] followed by [`GridIndex::insert`]
    /// for each item in order (so per-cell item order — and therefore
    /// query tie-breaking — is identical), but O(n) with exactly one
    /// allocation per non-empty cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    #[must_use]
    pub fn bulk_build(bbox: BBox, cell_size: f64, items: Vec<(T, Point)>) -> Self {
        let mut idx = GridIndex::new(bbox, cell_size);
        let ids: Vec<usize> = items
            .iter()
            .map(|&(_, p)| {
                let (c, r) = idx.cell_of(p);
                r * idx.cols + c
            })
            .collect();
        let mut counts = vec![0usize; idx.cells.len()];
        for &id in &ids {
            counts[id] += 1;
        }
        for (cell, &n) in idx.cells.iter_mut().zip(&counts) {
            if n > 0 {
                cell.reserve_exact(n);
            }
        }
        idx.len = items.len();
        for ((item, p), id) in items.into_iter().zip(ids) {
            idx.cells[id].push((item, p));
        }
        idx
    }

    /// Number of stored items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no items are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The covered bounding box.
    #[must_use]
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// The cell side length, in kilometres.
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let p = self.bbox.clamp(p);
        let c = (((p.x - self.bbox.min().x) / self.cell_size) as usize).min(self.cols - 1);
        let r = (((p.y - self.bbox.min().y) / self.cell_size) as usize).min(self.rows - 1);
        (c, r)
    }

    /// The rectangle of the covered bbox owned by cell `(col, row)`.
    ///
    /// Intersected with the covered bbox, because the last column/row can
    /// overhang it (`cols·cell_size ≥ width`) and hull cells also key
    /// points stored *outside* the bbox — for those, only the clamped
    /// position is guaranteed to lie in this rectangle. Degenerate bboxes
    /// (zero width/height) yield zero-area cell boxes, which the `BBox`
    /// distance helpers handle exactly.
    fn cell_bbox(&self, col: usize, row: usize) -> BBox {
        let min = self.bbox.min();
        let lo = Point::new(
            min.x + col as f64 * self.cell_size,
            min.y + row as f64 * self.cell_size,
        );
        let hi = Point::new(lo.x + self.cell_size, lo.y + self.cell_size);
        BBox::new(self.bbox.clamp(lo), self.bbox.clamp(hi))
    }

    /// Lower bound on the distance from `query` to any point stored in
    /// cell `(col, row)`.
    ///
    /// Valid even for points stored outside the covered bbox (they are
    /// keyed by their clamped position): clamping is a contraction, so
    /// `‖q − p‖ ≥ ‖clamp(q) − clamp(p)‖ ≥ dist(clamp(q), cell_bbox)`.
    /// Shared edges/corners give a bound of exactly `0`, never a spurious
    /// positive value that could prune a touching cell.
    fn cell_lower_bound(&self, query: Point, col: usize, row: usize) -> f64 {
        self.cell_bbox(col, row)
            .distance_to_point(self.bbox.clamp(query))
    }

    /// Inserts `item` at `location`. Duplicate items are allowed; `remove`
    /// removes one occurrence.
    pub fn insert(&mut self, item: T, location: Point) {
        let (c, r) = self.cell_of(location);
        self.cells[r * self.cols + c].push((item, location));
        self.len += 1;
    }

    /// Removes one occurrence of `item` previously inserted at `location`.
    ///
    /// Returns `true` if an occurrence was found and removed. The location
    /// must match the insertion location (it determines the cell searched).
    ///
    /// Removal preserves the relative order of the remaining items in the
    /// cell, so later queries tie-break exactly as if the removed item had
    /// never been inserted — the property the delta-maintained frame grid
    /// relies on to stay query-identical to a fresh [`Self::bulk_build`].
    pub fn remove(&mut self, item: &T, location: Point) -> bool {
        let (c, r) = self.cell_of(location);
        let cell = &mut self.cells[r * self.cols + c];
        if let Some(pos) = cell.iter().position(|(i, _)| i == item) {
            cell.remove(pos);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Moves one occurrence of `item` from `old` to `new`.
    ///
    /// Returns `false` (and inserts nothing) when the item was not found at
    /// `old`.
    pub fn relocate(&mut self, item: &T, old: Point, new: Point) -> bool {
        if self.remove(item, old) {
            self.insert(item.clone(), new);
            true
        } else {
            false
        }
    }

    /// Removes every stored item.
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            cell.clear();
        }
        self.len = 0;
    }

    /// A structure-preserving copy with every payload passed through `f`:
    /// same geometry, same per-cell item order, same locations.
    ///
    /// When `f` is strictly monotone in the payload order (e.g. mapping
    /// fleet indices to their ranks within a subset), the copy's per-cell
    /// payload order is ascending iff the original's was — which keeps a
    /// payload-remapped grid bit-identical to a fresh
    /// [`Self::bulk_build`] over the remapped items.
    #[must_use]
    pub fn map_payloads<U: Clone + PartialEq>(&self, mut f: impl FnMut(&T) -> U) -> GridIndex<U> {
        GridIndex {
            bbox: self.bbox,
            cell_size: self.cell_size,
            cols: self.cols,
            rows: self.rows,
            cells: self
                .cells
                .iter()
                .map(|cell| cell.iter().map(|(t, p)| (f(t), *p)).collect())
                .collect(),
            len: self.len,
        }
    }

    /// Asserts the internal invariants: the item count matches the cell
    /// contents and every item sits in the cell its location maps to.
    /// Debug builds only — release builds compile this to nothing.
    pub fn debug_check_invariants(&self) {
        if cfg!(debug_assertions) {
            let counted: usize = self.cells.iter().map(Vec::len).sum();
            assert_eq!(counted, self.len, "grid len out of sync with cells");
            for (id, cell) in self.cells.iter().enumerate() {
                for (_, p) in cell {
                    let (c, r) = self.cell_of(*p);
                    assert_eq!(r * self.cols + c, id, "item stored in wrong cell");
                }
            }
        }
    }

    /// The stored item nearest to `query`, or `None` when empty.
    ///
    /// Exact: expands the cell ring until the best candidate provably beats
    /// anything in unexplored rings.
    #[must_use]
    pub fn nearest(&self, query: Point) -> Option<Neighbor<T>> {
        self.k_nearest(query, 1).into_iter().next()
    }

    /// The `k` stored items nearest to `query`, closest first.
    ///
    /// Returns fewer than `k` when fewer are stored. Ties in distance are
    /// broken deterministically by discovery order: outer rings after
    /// inner rings, and insertion order within a cell.
    #[must_use]
    pub fn k_nearest(&self, query: Point, k: usize) -> Vec<Neighbor<T>> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let (qc, qr) = self.cell_of(query);
        let mut best: Vec<Neighbor<T>> = Vec::with_capacity(k + 1);
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Once we hold k results, stop when even the nearest possible
            // point of this ring cannot beat the current worst.
            if best.len() == k {
                let ring_min_dist = (ring as f64 - 1.0).max(0.0) * self.cell_size;
                if ring_min_dist > best[k - 1].distance {
                    break;
                }
            }
            for (c, r) in self.ring(qc, qr, ring) {
                // Exact per-cell prune: anything stored here is at least
                // the cell-bbox lower bound away, so a full result set
                // whose worst entry beats that bound cannot change. The
                // strict `>` keeps cells whose bound ties the worst, so
                // tie-breaking by discovery order is unchanged.
                if best.len() == k && self.cell_lower_bound(query, c, r) > best[k - 1].distance {
                    continue;
                }
                for (item, loc) in &self.cells[r * self.cols + c] {
                    let d = loc.euclidean(query);
                    // Upper-bound insertion point: equal distances keep
                    // discovery order (ring scan, then insertion order
                    // within a cell), making tie-breaking deterministic.
                    let pos = best.partition_point(|n| n.distance <= d);
                    if pos < k {
                        best.insert(
                            pos,
                            Neighbor {
                                item: item.clone(),
                                distance: d,
                            },
                        );
                        best.truncate(k);
                    }
                }
            }
        }
        best
    }

    /// All stored items within `radius` kilometres of `query` (inclusive:
    /// points at exactly `radius` are returned), closest first.
    ///
    /// Ties in distance keep discovery order (the sort is stable), so the
    /// result order is fully deterministic. An infinite radius returns
    /// every stored item.
    #[must_use]
    pub fn within(&self, query: Point, radius: f64) -> Vec<Neighbor<T>> {
        if radius < 0.0 || radius.is_nan() || self.len == 0 {
            return Vec::new();
        }
        let (qc, qr) = self.cell_of(query);
        // `radius / cell_size` can overflow usize for huge or infinite
        // radii (`as usize` saturates to usize::MAX, and a plain `+ 1`
        // would wrap); saturate and let the `min` below cap the scan at
        // the whole grid.
        let rings = (radius / self.cell_size).ceil();
        let max_ring = if rings < usize::MAX as f64 {
            (rings as usize).saturating_add(1)
        } else {
            usize::MAX
        };
        let mut out = Vec::new();
        for ring in 0..=max_ring.min(self.cols.max(self.rows)) {
            for (c, r) in self.ring(qc, qr, ring) {
                // Skip cells provably outside the disk. Strict `>` keeps
                // cells touching the radius exactly (membership below is
                // inclusive: `d ≤ radius`).
                if self.cell_lower_bound(query, c, r) > radius {
                    continue;
                }
                for (item, loc) in &self.cells[r * self.cols + c] {
                    let d = loc.euclidean(query);
                    if d <= radius {
                        out.push(Neighbor {
                            item: item.clone(),
                            distance: d,
                        });
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Iterates over all stored `(item, location)` pairs in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, Point)> {
        self.cells
            .iter()
            .flat_map(|cell| cell.iter().map(|(i, p)| (i, *p)))
    }

    fn ring(&self, col: usize, row: usize, ring: usize) -> Vec<(usize, usize)> {
        let mut cells = Vec::new();
        let c0 = col as isize - ring as isize;
        let c1 = col as isize + ring as isize;
        let r0 = row as isize - ring as isize;
        let r1 = row as isize + ring as isize;
        let valid = |c: isize, r: isize| {
            c >= 0 && r >= 0 && (c as usize) < self.cols && (r as usize) < self.rows
        };
        if ring == 0 {
            if valid(col as isize, row as isize) {
                cells.push((col, row));
            }
            return cells;
        }
        for c in c0..=c1 {
            for r in [r0, r1] {
                if valid(c, r) {
                    cells.push((c as usize, r as usize));
                }
            }
        }
        for r in (r0 + 1)..r1 {
            for c in [c0, c1] {
                if valid(c, r) {
                    cells.push((c as usize, r as usize));
                }
            }
        }
        cells
    }
}

impl<T: Clone + Ord> GridIndex<T> {
    /// Inserts `item` at `location`, placing it *by payload order* within
    /// its cell instead of appending.
    ///
    /// When every cell already holds its items in ascending payload order
    /// — true for any grid built by [`Self::bulk_build`] from an
    /// ascending item list, like the engine's fleet-ordered taxi grid —
    /// this keeps that order, so the maintained grid stays equal to a
    /// fresh `bulk_build` of the ascending current item set. Plain
    /// [`Self::insert`] (append) would put a re-idled taxi behind taxis
    /// with larger indices and change query tie-breaking.
    pub fn insert_sorted(&mut self, item: T, location: Point) {
        let (c, r) = self.cell_of(location);
        let cell = &mut self.cells[r * self.cols + c];
        let pos = cell.partition_point(|(i, _)| *i < item);
        cell.insert(pos, (item, location));
        self.len += 1;
    }
}

impl<T: Clone + PartialEq + Send + Sync> GridIndex<T> {
    /// Answers many radius queries against one immutable index, in
    /// parallel, preserving query order.
    ///
    /// Element `i` of the result is exactly `self.within(queries[i].0,
    /// queries[i].1)` for every thread count — the parallel map is
    /// order-preserving — so batched callers (the sparse preference-list
    /// builder) stay bit-identical to the sequential path.
    #[must_use]
    pub fn within_batch(
        &self,
        queries: &[(Point, f64)],
        par: Parallelism,
    ) -> Vec<Vec<Neighbor<T>>> {
        par_map(par, queries.to_vec(), |(q, radius)| self.within(q, radius))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn city() -> BBox {
        BBox::square(Point::ORIGIN, 20.0)
    }

    #[test]
    fn empty_index_has_no_neighbors() {
        let idx: GridIndex<u32> = GridIndex::new(city(), 1.0);
        assert!(idx.is_empty());
        assert!(idx.nearest(Point::ORIGIN).is_none());
        assert!(idx.k_nearest(Point::ORIGIN, 3).is_empty());
        assert!(idx.within(Point::ORIGIN, 5.0).is_empty());
    }

    #[test]
    fn nearest_returns_closest() {
        let mut idx = GridIndex::new(city(), 1.0);
        idx.insert(1u32, Point::new(5.0, 5.0));
        idx.insert(2u32, Point::new(-1.0, -1.0));
        idx.insert(3u32, Point::new(0.5, 0.0));
        let n = idx.nearest(Point::ORIGIN).unwrap();
        assert_eq!(n.item, 3);
        assert!((n.distance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_nearest_is_sorted_and_bounded() {
        let mut idx = GridIndex::new(city(), 2.0);
        for i in 0..10 {
            idx.insert(i, Point::new(i as f64, 0.0));
        }
        let got = idx.k_nearest(Point::new(0.2, 0.0), 4);
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|n| n.item).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        for w in got.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn within_respects_radius() {
        let mut idx = GridIndex::new(city(), 1.0);
        for i in 0..20 {
            idx.insert(i, Point::new(i as f64 - 10.0, 0.0));
        }
        let got = idx.within(Point::ORIGIN, 2.5);
        assert_eq!(got.len(), 5); // -2, -1, 0, 1, 2
        assert!(got.iter().all(|n| n.distance <= 2.5));
    }

    #[test]
    fn remove_then_query() {
        let mut idx = GridIndex::new(city(), 1.0);
        let p = Point::new(1.0, 1.0);
        idx.insert(7u32, p);
        assert!(idx.remove(&7, p));
        assert!(!idx.remove(&7, p));
        assert!(idx.nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn relocate_moves_item() {
        let mut idx = GridIndex::new(city(), 1.0);
        let a = Point::new(-8.0, -8.0);
        let b = Point::new(8.0, 8.0);
        idx.insert(1u32, a);
        assert!(idx.relocate(&1, a, b));
        let n = idx.nearest(Point::new(7.0, 7.0)).unwrap();
        assert_eq!(n.item, 1);
        assert!(n.distance < 2.0);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn relocate_missing_item_is_noop() {
        let mut idx: GridIndex<u32> = GridIndex::new(city(), 1.0);
        assert!(!idx.relocate(&9, Point::ORIGIN, Point::new(1.0, 1.0)));
        assert!(idx.is_empty());
    }

    #[test]
    fn points_outside_bbox_are_clamped_but_exact() {
        let mut idx = GridIndex::new(city(), 1.0);
        let far = Point::new(100.0, 100.0); // clamped to cell (10,10) corner
        idx.insert(42u32, far);
        let n = idx.nearest(far).unwrap();
        assert_eq!(n.item, 42);
        assert_eq!(n.distance, 0.0);
    }

    #[test]
    fn clear_empties() {
        let mut idx = GridIndex::new(city(), 1.0);
        idx.insert(1u32, Point::ORIGIN);
        idx.insert(2u32, Point::new(3.0, 3.0));
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::<u32>::new(city(), 0.0);
    }

    #[test]
    fn within_includes_points_exactly_on_radius() {
        let mut idx = GridIndex::new(city(), 1.0);
        idx.insert(1u32, Point::new(2.5, 0.0)); // exactly on the radius
        idx.insert(2u32, Point::new(0.0, 2.5)); // exactly on the radius
        idx.insert(3u32, Point::new(2.6, 0.0)); // just outside
        let got = idx.within(Point::ORIGIN, 2.5);
        let mut items: Vec<_> = got.iter().map(|n| n.item).collect();
        items.sort_unstable();
        assert_eq!(
            items,
            vec![1, 2],
            "boundary points must be included, just-outside excluded"
        );
    }

    #[test]
    fn queries_on_and_outside_bbox_boundary_are_exact() {
        let mut idx = GridIndex::new(city(), 1.0);
        // Corner of the 20 km box centred on the origin.
        let corner = Point::new(10.0, 10.0);
        idx.insert(1u32, Point::new(9.0, 9.0));
        idx.insert(2u32, Point::new(-9.0, -9.0));
        // Query exactly on the boundary corner.
        let n = idx.nearest(corner).unwrap();
        assert_eq!(n.item, 1);
        // Query far outside: clamping only shrinks per-axis offsets for
        // stored (in-box) points, so ring lower bounds stay valid and the
        // true distances are still measured from the raw query point.
        let outside = Point::new(50.0, 50.0);
        let n = idx.nearest(outside).unwrap();
        assert_eq!(n.item, 1);
        assert!((n.distance - outside.euclidean(Point::new(9.0, 9.0))).abs() < 1e-12);
        let got = idx.within(outside, 60.0);
        assert_eq!(got.iter().map(|n| n.item).collect::<Vec<_>>(), vec![1]);
        let got = idx.within(outside, 100.0);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn k_nearest_breaks_ties_by_discovery_order() {
        // Four items equidistant from the query, all in one cell: ties
        // must resolve to insertion order, every time.
        let mut idx = GridIndex::new(city(), 40.0);
        idx.insert(10u32, Point::new(1.0, 0.0));
        idx.insert(11u32, Point::new(-1.0, 0.0));
        idx.insert(12u32, Point::new(0.0, 1.0));
        idx.insert(13u32, Point::new(0.0, -1.0));
        for _ in 0..3 {
            let got = idx.k_nearest(Point::ORIGIN, 2);
            assert_eq!(got.iter().map(|n| n.item).collect::<Vec<_>>(), vec![10, 11]);
            let all = idx.k_nearest(Point::ORIGIN, 4);
            assert_eq!(
                all.iter().map(|n| n.item).collect::<Vec<_>>(),
                vec![10, 11, 12, 13]
            );
        }
    }

    #[test]
    fn within_infinite_radius_returns_everything() {
        // Regression: `(radius / cell_size).ceil() as usize + 1` used to
        // overflow for radius = +inf (saturating cast to usize::MAX).
        let mut idx = GridIndex::new(city(), 1.0);
        for i in 0..7 {
            idx.insert(i, Point::new(i as f64 - 3.0, 2.0));
        }
        let got = idx.within(Point::ORIGIN, f64::INFINITY);
        assert_eq!(got.len(), 7);
        assert!(idx.within(Point::ORIGIN, f64::NAN).is_empty());
        assert_eq!(idx.within(Point::ORIGIN, f64::MAX).len(), 7);
    }

    #[test]
    fn bulk_build_matches_incremental_inserts() {
        let pts: Vec<(u32, Point)> = (0..50)
            .map(|i| {
                (
                    i,
                    Point::new((i as f64 * 7.3) % 19.0 - 9.5, (i as f64 * 3.1) % 18.0 - 9.0),
                )
            })
            .collect();
        let bulk = GridIndex::bulk_build(city(), 1.5, pts.clone());
        let mut incr = GridIndex::new(city(), 1.5);
        for (i, p) in pts {
            incr.insert(i, p);
        }
        assert_eq!(bulk.len(), incr.len());
        let q = Point::new(0.3, -0.7);
        for radius in [0.5, 2.0, 7.0, f64::INFINITY] {
            let a: Vec<_> = bulk.within(q, radius).iter().map(|n| n.item).collect();
            let b: Vec<_> = incr.within(q, radius).iter().map(|n| n.item).collect();
            assert_eq!(a, b, "radius = {radius}");
        }
        assert_eq!(
            bulk.k_nearest(q, 9)
                .iter()
                .map(|n| n.item)
                .collect::<Vec<_>>(),
            incr.k_nearest(q, 9)
                .iter()
                .map(|n| n.item)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn remove_preserves_cell_order_for_ties() {
        // Four equidistant items in one cell; removing the second must
        // leave the others tie-breaking as if it was never there.
        let mut idx = GridIndex::new(city(), 40.0);
        idx.insert(10u32, Point::new(1.0, 0.0));
        idx.insert(11u32, Point::new(-1.0, 0.0));
        idx.insert(12u32, Point::new(0.0, 1.0));
        idx.insert(13u32, Point::new(0.0, -1.0));
        assert!(idx.remove(&11, Point::new(-1.0, 0.0)));
        let got: Vec<u32> = idx
            .k_nearest(Point::ORIGIN, 3)
            .iter()
            .map(|n| n.item)
            .collect();
        assert_eq!(got, vec![10, 12, 13]);
        let mut fresh = GridIndex::new(city(), 40.0);
        fresh.insert(10u32, Point::new(1.0, 0.0));
        fresh.insert(12u32, Point::new(0.0, 1.0));
        fresh.insert(13u32, Point::new(0.0, -1.0));
        assert_eq!(idx, fresh);
    }

    #[test]
    fn insert_sorted_restores_bulk_build_order() {
        // Build from the ascending item set minus one, then insert_sorted
        // the missing item: the result must equal the full bulk build,
        // wherever the item falls in its cell.
        let pts: Vec<(u32, Point)> = (0..30)
            .map(|i| {
                (
                    i,
                    Point::new((i as f64 * 5.1) % 18.0 - 9.0, (i as f64 * 2.3) % 18.0 - 9.0),
                )
            })
            .collect();
        let full = GridIndex::bulk_build(city(), 6.0, pts.clone());
        for missing in [0usize, 7, 29] {
            let partial: Vec<(u32, Point)> = pts
                .iter()
                .copied()
                .filter(|&(i, _)| i as usize != missing)
                .collect();
            let mut idx = GridIndex::bulk_build(city(), 6.0, partial);
            idx.insert_sorted(pts[missing].0, pts[missing].1);
            assert_eq!(idx, full, "missing = {missing}");
        }
    }

    #[test]
    fn map_payloads_preserves_structure() {
        let pts: Vec<(u32, Point)> = (0..20)
            .map(|i| (i * 2, Point::new((i as f64 * 3.7) % 16.0 - 8.0, 0.5)))
            .collect();
        let idx = GridIndex::bulk_build(city(), 2.0, pts.clone());
        // A strictly monotone remap (halving) must equal the bulk build
        // of the remapped items.
        let mapped = idx.map_payloads(|&i| i / 2);
        let expect =
            GridIndex::bulk_build(city(), 2.0, pts.iter().map(|&(i, p)| (i / 2, p)).collect());
        assert_eq!(mapped, expect);
        assert_eq!(mapped.len(), idx.len());
        mapped.debug_check_invariants();
    }

    #[test]
    fn within_batch_matches_single_queries_for_every_thread_count() {
        let pts: Vec<(u32, Point)> = (0..120)
            .map(|i| {
                (
                    i,
                    Point::new((i as f64 * 1.7) % 18.0 - 9.0, (i as f64 * 2.9) % 17.0 - 8.5),
                )
            })
            .collect();
        let idx = GridIndex::bulk_build(city(), heuristic_cell_size(city()), pts);
        let queries: Vec<(Point, f64)> = (0..40)
            .map(|j| {
                (
                    Point::new(
                        (j as f64 * 3.3) % 20.0 - 10.0,
                        (j as f64 * 1.1) % 20.0 - 10.0,
                    ),
                    (j as f64 * 0.37) % 6.0,
                )
            })
            .collect();
        let expect: Vec<Vec<u32>> = queries
            .iter()
            .map(|&(q, r)| idx.within(q, r).iter().map(|n| n.item).collect())
            .collect();
        for threads in [1, 2, 4, 7] {
            let got = idx.within_batch(&queries, Parallelism::fixed(threads));
            let got: Vec<Vec<u32>> = got
                .iter()
                .map(|ns| ns.iter().map(|n| n.item).collect())
                .collect();
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The grid's nearest always matches a brute-force scan.
        #[test]
        fn nearest_matches_brute_force(
            pts in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..60),
            qx in -12.0..12.0f64, qy in -12.0..12.0f64,
        ) {
            let mut idx = GridIndex::new(city(), 1.5);
            for (i, &(x, y)) in pts.iter().enumerate() {
                idx.insert(i, Point::new(x, y));
            }
            let q = Point::new(qx, qy);
            let got = idx.nearest(q).unwrap();
            let best = pts
                .iter()
                .map(|&(x, y)| Point::new(x, y).euclidean(q))
                .fold(f64::INFINITY, f64::min);
            prop_assert!((got.distance - best).abs() < 1e-9);
        }

        /// `k_nearest` returns exactly the k brute-force-closest distances.
        #[test]
        fn k_nearest_matches_brute_force(
            pts in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..40),
            k in 1usize..8,
        ) {
            let mut idx = GridIndex::new(city(), 2.0);
            for (i, &(x, y)) in pts.iter().enumerate() {
                idx.insert(i, Point::new(x, y));
            }
            let q = Point::new(0.0, 0.0);
            let got: Vec<f64> = idx.k_nearest(q, k).iter().map(|n| n.distance).collect();
            let mut brute: Vec<f64> = pts
                .iter()
                .map(|&(x, y)| Point::new(x, y).euclidean(q))
                .collect();
            brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
            brute.truncate(k);
            prop_assert_eq!(got.len(), brute.len());
            for (g, b) in got.iter().zip(brute.iter()) {
                prop_assert!((g - b).abs() < 1e-9);
            }
        }

        /// `within` finds exactly the brute-force in-radius set.
        #[test]
        fn within_matches_brute_force(
            pts in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 0..40),
            radius in 0.0..15.0f64,
        ) {
            let mut idx = GridIndex::new(city(), 1.0);
            for (i, &(x, y)) in pts.iter().enumerate() {
                idx.insert(i, Point::new(x, y));
            }
            let q = Point::new(1.0, -1.0);
            let got = idx.within(q, radius);
            let expect = pts
                .iter()
                .filter(|&&(x, y)| Point::new(x, y).euclidean(q) <= radius)
                .count();
            prop_assert_eq!(got.len(), expect);
        }
    }
}
