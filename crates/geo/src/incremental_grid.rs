//! Cross-frame delta maintenance for [`GridIndex`].
//!
//! The simulation engine rebuilt the per-frame taxi grid from the full
//! idle set every frame, even though consecutive frames share most of it:
//! only taxis that were dispatched, finished a trip, or moved change.
//! [`IncrementalGrid`] keeps a persistent grid in sync with a desired
//! item set by applying exactly those transitions — and falls back to a
//! bulk rebuild when the geometry changed or the delta is so large that
//! patching would cost more than rebuilding.
//!
//! The maintained grid is **bit-identical** to
//! `GridIndex::bulk_build(bbox, cell_size, desired)` after every
//! [`IncrementalGrid::sync`], per-cell item order (and therefore query
//! tie-breaking) included. Three properties make that exact:
//!
//! * [`GridIndex::remove`] preserves the relative order of the remaining
//!   items in a cell,
//! * [`GridIndex::insert_sorted`] places an item at its payload-ordered
//!   position, and
//! * `sync` requires the desired set to be strictly ascending by payload,
//!   so "ascending within every cell" is both the bulk-build order and
//!   the maintained invariant.
//!
//! Debug builds verify the equivalence against a fresh `bulk_build` after
//! every sync; release builds trust the proof and skip the check.

use crate::{BBox, GridIndex, Point};
use std::collections::HashMap;
use std::hash::Hash;

/// How a [`IncrementalGrid::sync`] call brought the grid up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// The grid was rebuilt from scratch (first sync, geometry change, or
    /// delta above the rebuild threshold).
    Rebuilt,
    /// The grid was patched in place with the counted operations.
    Delta {
        /// Items newly inserted.
        inserted: usize,
        /// Items removed.
        removed: usize,
        /// Items whose location changed.
        relocated: usize,
    },
}

/// A persistent [`GridIndex`] kept in sync with a per-frame item set by
/// delta operations, with a bulk-rebuild fallback.
///
/// # Examples
///
/// ```
/// use o2o_geo::{BBox, GridIndex, IncrementalGrid, Point};
///
/// let bbox = BBox::square(Point::ORIGIN, 10.0);
/// let mut inc = IncrementalGrid::new(0.5);
/// let frame1 = vec![(0usize, Point::new(1.0, 1.0)), (1, Point::new(-2.0, 3.0))];
/// inc.sync(bbox, 1.0, &frame1);
/// // One taxi moved; the next sync patches instead of rebuilding.
/// let frame2 = vec![(0usize, Point::new(1.5, 1.0)), (1, Point::new(-2.0, 3.0))];
/// inc.sync(bbox, 1.0, &frame2);
/// assert_eq!(inc.grid().unwrap(), &GridIndex::bulk_build(bbox, 1.0, frame2));
/// ```
#[derive(Debug)]
pub struct IncrementalGrid<T> {
    grid: Option<GridIndex<T>>,
    members: HashMap<T, Point>,
    rebuild_threshold: f64,
    rebuilds: u64,
    delta_syncs: u64,
}

impl<T: Clone + Ord + Hash + std::fmt::Debug> IncrementalGrid<T> {
    /// Creates an empty maintainer. `rebuild_threshold` is the delta
    /// fraction above which a sync rebuilds instead of patching: a sync
    /// whose insert+remove+relocate count exceeds
    /// `rebuild_threshold * desired.len()` falls back to
    /// [`GridIndex::bulk_build`]. `0.0` always rebuilds; `f64::INFINITY`
    /// always patches.
    ///
    /// # Panics
    ///
    /// Panics if `rebuild_threshold` is negative or NaN.
    #[must_use]
    pub fn new(rebuild_threshold: f64) -> Self {
        assert!(
            rebuild_threshold >= 0.0,
            "rebuild_threshold must be non-negative, got {rebuild_threshold}"
        );
        IncrementalGrid {
            grid: None,
            members: HashMap::new(),
            rebuild_threshold,
            rebuilds: 0,
            delta_syncs: 0,
        }
    }

    /// The maintained grid, or `None` before the first sync.
    #[must_use]
    pub fn grid(&self) -> Option<&GridIndex<T>> {
        self.grid.as_ref()
    }

    /// Bulk rebuilds performed so far (including the first sync).
    #[must_use]
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Syncs that were satisfied by delta patching.
    #[must_use]
    pub fn delta_syncs(&self) -> u64 {
        self.delta_syncs
    }

    /// Brings the grid in sync with `desired` over the given geometry and
    /// returns it, reporting how.
    ///
    /// `desired` must be strictly ascending by payload (duplicates
    /// included in the ban); the engine's fleet-ordered idle sets satisfy
    /// this for free. After the call the grid equals
    /// `GridIndex::bulk_build(bbox, cell_size, desired.to_vec())` exactly
    /// — including query tie-breaking — whichever path ran.
    ///
    /// A bulk rebuild happens on the first sync, whenever `bbox` or
    /// `cell_size` differ from the current grid's (any change remaps
    /// cells wholesale, so patching would be wrong), and whenever the
    /// delta exceeds the rebuild threshold.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `desired` is not strictly ascending by
    /// payload, or if the patched grid fails to match a fresh bulk build.
    pub fn sync(&mut self, bbox: BBox, cell_size: f64, desired: &[(T, Point)]) -> SyncOutcome {
        debug_assert!(
            desired.windows(2).all(|w| w[0].0 < w[1].0),
            "desired items must be strictly ascending by payload"
        );
        let geometry_matches = self
            .grid
            .as_ref()
            .is_some_and(|g| g.bbox() == bbox && g.cell_size() == cell_size);
        let outcome = if geometry_matches {
            self.sync_delta(desired)
        } else {
            None
        };
        let outcome = match outcome {
            Some(delta) => {
                self.delta_syncs += 1;
                delta
            }
            None => {
                self.rebuild(bbox, cell_size, desired);
                SyncOutcome::Rebuilt
            }
        };
        #[cfg(debug_assertions)]
        {
            let grid = self.grid.as_ref().expect("synced");
            grid.debug_check_invariants();
            assert_eq!(
                grid,
                &GridIndex::bulk_build(bbox, cell_size, desired.to_vec()),
                "incremental grid diverged from bulk build"
            );
        }
        outcome
    }

    /// Computes and applies the delta, or returns `None` when it exceeds
    /// the rebuild threshold.
    fn sync_delta(&mut self, desired: &[(T, Point)]) -> Option<SyncOutcome> {
        let mut inserts: Vec<(T, Point)> = Vec::new();
        let mut relocates: Vec<(T, Point, Point)> = Vec::new();
        for (t, p) in desired {
            match self.members.get(t) {
                None => inserts.push((t.clone(), *p)),
                Some(&old) if old != *p => relocates.push((t.clone(), old, *p)),
                Some(_) => {}
            }
        }
        let removes: Vec<(T, Point)> = self
            .members
            .iter()
            .filter(|(t, _)| desired.binary_search_by(|(d, _)| d.cmp(t)).is_err())
            .map(|(t, p)| (t.clone(), *p))
            .collect();
        let churn = inserts.len() + relocates.len() + removes.len();
        if churn as f64 > self.rebuild_threshold * desired.len() as f64 {
            return None;
        }
        let grid = self.grid.as_mut().expect("geometry matched");
        for (t, p) in &removes {
            let found = grid.remove(t, *p);
            debug_assert!(found, "member map out of sync on remove");
            self.members.remove(t);
        }
        for (t, old, new) in &relocates {
            let found = grid.remove(t, *old);
            debug_assert!(found, "member map out of sync on relocate");
            grid.insert_sorted(t.clone(), *new);
            self.members.insert(t.clone(), *new);
        }
        for (t, p) in &inserts {
            grid.insert_sorted(t.clone(), *p);
            self.members.insert(t.clone(), *p);
        }
        Some(SyncOutcome::Delta {
            inserted: inserts.len(),
            removed: removes.len(),
            relocated: relocates.len(),
        })
    }

    fn rebuild(&mut self, bbox: BBox, cell_size: f64, desired: &[(T, Point)]) {
        self.grid = Some(GridIndex::bulk_build(bbox, cell_size, desired.to_vec()));
        self.members = desired.iter().cloned().collect();
        self.rebuilds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bbox() -> BBox {
        BBox::square(Point::ORIGIN, 20.0)
    }

    fn expect_grid(items: &[(usize, Point)]) -> GridIndex<usize> {
        GridIndex::bulk_build(bbox(), 1.5, items.to_vec())
    }

    #[test]
    fn first_sync_rebuilds() {
        let mut inc = IncrementalGrid::new(0.5);
        let items = vec![(0usize, Point::new(1.0, 2.0)), (3, Point::new(-4.0, 0.5))];
        assert_eq!(inc.sync(bbox(), 1.5, &items), SyncOutcome::Rebuilt);
        assert_eq!(inc.grid().unwrap(), &expect_grid(&items));
        assert_eq!(inc.rebuilds(), 1);
    }

    #[test]
    fn small_delta_patches_large_delta_rebuilds() {
        let mut inc = IncrementalGrid::new(0.5);
        let items: Vec<(usize, Point)> = (0..10)
            .map(|i| (i, Point::new(i as f64 - 5.0, 0.0)))
            .collect();
        inc.sync(bbox(), 1.5, &items);
        // One relocate + one remove + one insert out of 10: patch.
        let mut next = items.clone();
        next[2].1 = Point::new(4.5, 4.5);
        next.remove(7);
        next.push((12, Point::new(0.0, -3.0)));
        assert_eq!(
            inc.sync(bbox(), 1.5, &next),
            SyncOutcome::Delta {
                inserted: 1,
                removed: 1,
                relocated: 1
            }
        );
        assert_eq!(inc.grid().unwrap(), &expect_grid(&next));
        // Replace most of the set: rebuild.
        let moved: Vec<(usize, Point)> = next.iter().map(|&(i, p)| (i + 100, p)).collect();
        assert_eq!(inc.sync(bbox(), 1.5, &moved), SyncOutcome::Rebuilt);
        assert_eq!(inc.grid().unwrap(), &expect_grid(&moved));
        assert_eq!(inc.delta_syncs(), 1);
        assert_eq!(inc.rebuilds(), 2);
    }

    #[test]
    fn geometry_change_forces_rebuild() {
        let mut inc = IncrementalGrid::new(f64::INFINITY);
        let items = vec![(1usize, Point::new(0.0, 0.0))];
        inc.sync(bbox(), 1.5, &items);
        assert_eq!(inc.sync(bbox(), 2.0, &items), SyncOutcome::Rebuilt);
        let other = BBox::square(Point::new(1.0, 1.0), 18.0);
        assert_eq!(inc.sync(other, 2.0, &items), SyncOutcome::Rebuilt);
        assert_eq!(
            inc.grid().unwrap(),
            &GridIndex::bulk_build(other, 2.0, items)
        );
    }

    #[test]
    fn zero_threshold_always_rebuilds_on_change() {
        let mut inc = IncrementalGrid::new(0.0);
        let items = vec![(0usize, Point::ORIGIN), (1, Point::new(2.0, 2.0))];
        inc.sync(bbox(), 1.5, &items);
        // Unchanged set: a zero-op delta is within any threshold.
        assert_eq!(
            inc.sync(bbox(), 1.5, &items),
            SyncOutcome::Delta {
                inserted: 0,
                removed: 0,
                relocated: 0
            }
        );
        let mut next = items.clone();
        next[0].1 = Point::new(0.5, 0.5);
        assert_eq!(inc.sync(bbox(), 1.5, &next), SyncOutcome::Rebuilt);
    }

    #[test]
    fn empty_desired_set_is_fine() {
        let mut inc = IncrementalGrid::<usize>::new(0.5);
        inc.sync(bbox(), 1.5, &[]);
        assert_eq!(inc.grid().unwrap().len(), 0);
        inc.sync(bbox(), 1.5, &[(4, Point::new(1.0, 1.0))]);
        assert_eq!(inc.grid().unwrap().len(), 1);
    }

    /// Random churn trajectories: after every sync the maintained grid
    /// must equal a fresh bulk build of the frame's item set — per-cell
    /// order included (`GridIndex: PartialEq` compares cell vectors).
    #[test]
    fn random_trajectories_match_bulk_build_exactly() {
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut inc = IncrementalGrid::new(0.25);
            // Fleet of 40; membership and positions evolve per frame.
            let mut present: Vec<bool> = (0..40).map(|_| rng.gen_bool(0.6)).collect();
            let mut pos: Vec<Point> = (0..40)
                .map(|_| Point::new(rng.gen_range(-9.0..9.0), rng.gen_range(-9.0..9.0)))
                .collect();
            for _frame in 0..30 {
                for i in 0..40 {
                    if rng.gen_bool(0.1) {
                        present[i] = !present[i];
                    }
                    if present[i] && rng.gen_bool(0.15) {
                        pos[i] = Point::new(rng.gen_range(-9.0..9.0), rng.gen_range(-9.0..9.0));
                    }
                }
                let desired: Vec<(usize, Point)> = (0..40)
                    .filter(|&i| present[i])
                    .map(|i| (i, pos[i]))
                    .collect();
                inc.sync(bbox(), 1.5, &desired);
                assert_eq!(inc.grid().unwrap(), &expect_grid(&desired), "seed {seed}");
            }
            // Both paths must actually have been exercised.
            assert!(inc.rebuilds() >= 1);
            assert!(
                inc.delta_syncs() >= 1,
                "seed {seed} never took the delta path"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Delta maintenance equals bulk build for arbitrary consecutive
        /// frames, across rebuild thresholds (0 = always rebuild,
        /// inf = always patch, and a middle setting).
        #[test]
        fn sync_equals_bulk_build(
            seed in any::<u64>(),
            frames in 1usize..8,
            n in 1usize..25,
            threshold_idx in 0usize..3,
        ) {
            let threshold = [0.0, 0.3, f64::INFINITY][threshold_idx];
            let mut rng = StdRng::seed_from_u64(seed);
            let mut inc = IncrementalGrid::new(threshold);
            for _ in 0..frames {
                let mut desired: Vec<(usize, Point)> = Vec::new();
                for i in 0..n {
                    if rng.gen_bool(0.7) {
                        let p = Point::new(rng.gen_range(-9.5..9.5), rng.gen_range(-9.5..9.5));
                        desired.push((i, p));
                    }
                }
                inc.sync(bbox(), 1.5, &desired);
                prop_assert_eq!(inc.grid().unwrap(), &expect_grid(&desired));
            }
        }

        /// Remove-re-add id churn over a *recurring* position pool: ids
        /// drop out and re-enter on exactly the bit patterns other ids
        /// (or their own past selves) occupied — the aliasing pattern a
        /// stale delta map would corrupt silently. The delta-maintained
        /// grid must stay exactly equal to a fresh bulk build through
        /// every frame.
        #[test]
        fn id_churn_with_recurring_position_bits_stays_exact(
            seed in any::<u64>(),
            frames in 2usize..10,
            n in 2usize..20,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pool: Vec<Point> = (0..6)
                .map(|_| Point::new(rng.gen_range(-9.0..9.0), rng.gen_range(-9.0..9.0)))
                .collect();
            let mut inc = IncrementalGrid::new(0.5);
            let mut present = vec![false; n];
            for _ in 0..frames {
                for slot in present.iter_mut() {
                    // Churn: each id flips between absent and present.
                    if rng.gen_bool(0.35) {
                        *slot = !*slot;
                    }
                }
                let desired: Vec<(usize, Point)> = (0..n)
                    .filter(|&i| present[i])
                    .map(|i| (i, pool[rng.gen_range(0..pool.len())]))
                    .collect();
                inc.sync(bbox(), 1.5, &desired);
                prop_assert_eq!(inc.grid().unwrap(), &expect_grid(&desired));
            }
        }
    }
}
