//! Planar locations measured in kilometres.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A location on the city plane, in kilometres.
///
/// The paper's scenario is "a three-dimensional Euclidean surface that
/// represents the city"; operationally every quantity it uses is a planar
/// shortest-path distance, so a 2-D point in kilometres is the natural
/// representation. Coordinates are `f64` and all arithmetic is plain IEEE
/// floating point.
///
/// # Examples
///
/// ```
/// use o2o_geo::Point;
///
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, 6.0);
/// assert_eq!(a.euclidean(b), 5.0);
/// assert_eq!((a + b).x, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East–west coordinate in kilometres.
    pub x: f64,
    /// North–south coordinate in kilometres.
    pub y: f64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from kilometre coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// use o2o_geo::Point;
    /// let p = Point::new(2.5, -1.0);
    /// assert_eq!(p.y, -1.0);
    /// ```
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Straight-line (L2) distance to `other`, in kilometres.
    #[must_use]
    pub fn euclidean(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Rectilinear (L1) distance to `other`, in kilometres.
    #[must_use]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Squared Euclidean distance; cheaper than [`Point::euclidean`] when
    /// only comparisons are needed.
    #[must_use]
    pub fn euclidean_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The point a fraction `t` of the way from `self` to `other`
    /// (`t = 0` gives `self`, `t = 1` gives `other`; `t` outside `[0, 1]`
    /// extrapolates).
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Moves from `self` towards `target` by at most `step` kilometres,
    /// stopping exactly at `target` if it is closer than `step`.
    ///
    /// This is the primitive the simulator uses to advance taxis each frame.
    ///
    /// # Examples
    ///
    /// ```
    /// use o2o_geo::Point;
    /// let here = Point::new(0.0, 0.0);
    /// let there = Point::new(10.0, 0.0);
    /// assert_eq!(here.step_towards(there, 3.0), Point::new(3.0, 0.0));
    /// assert_eq!(here.step_towards(there, 30.0), there);
    /// ```
    #[must_use]
    pub fn step_towards(self, target: Point, step: f64) -> Point {
        let dist = self.euclidean(target);
        if dist <= step || dist == 0.0 {
            target
        } else {
            self.lerp(target, step / dist)
        }
    }

    /// Euclidean norm of the point treated as a vector from the origin.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// `true` when both coordinates are finite (not NaN or infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_345_triangle() {
        assert_eq!(Point::new(0.0, 0.0).euclidean(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn euclidean_is_symmetric() {
        let a = Point::new(1.5, -2.5);
        let b = Point::new(-4.0, 9.0);
        assert_eq!(a.euclidean(b), b.euclidean(a));
    }

    #[test]
    fn manhattan_dominates_euclidean() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(-2.0, 5.0);
        assert!(a.manhattan(b) >= a.euclidean(b));
    }

    #[test]
    fn euclidean_sq_matches_euclidean() {
        let a = Point::new(0.3, 0.7);
        let b = Point::new(-1.1, 2.2);
        let d = a.euclidean(b);
        assert!((a.euclidean_sq(b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(2.0, 3.0);
        let b = Point::new(10.0, -1.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(6.0, 1.0));
    }

    #[test]
    fn step_towards_never_overshoots() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(a.step_towards(b, 5.0), b);
        let mid = a.step_towards(b, 0.25);
        assert!((mid.x - 0.25).abs() < 1e-12);
    }

    #[test]
    fn step_towards_zero_distance_is_target() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(a.step_towards(a, 0.0), a);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a + b, Point::new(4.0, 6.0));
        assert_eq!(b - a, Point::new(2.0, 2.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, 2.0));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1.000, 2.000)");
    }

    #[test]
    fn conversion_round_trip() {
        let p: Point = (3.0, 4.0).into();
        let back: (f64, f64) = p.into();
        assert_eq!(back, (3.0, 4.0));
    }

    #[test]
    fn is_finite_rejects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
