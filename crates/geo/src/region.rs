//! Spatial region partitioner for sharded dispatch.
//!
//! A [`RegionGrid`] tiles the city bounding box into a coarse `cols × rows`
//! grid of rectangular regions. Every point belongs to **exactly one**
//! region (ties on internal partition lines go to the higher-index cell,
//! matching [`GridIndex`](crate::GridIndex) cell keying), and a point's
//! *interaction disk* of radius `r` can be classified as interior (provably
//! unable to reach any point owned by another region) or boundary (its disk
//! crosses an internal partition line).
//!
//! Region cells are sized so that each side is at least a caller-supplied
//! minimum (the dispatch interaction radius), which keeps the boundary band
//! a thin fraction of the city at realistic densities. Degenerate inputs —
//! an empty box, an infinite or non-finite minimum side, or a request for a
//! single region — collapse to one region covering everything, for which
//! every disk is interior.

use crate::{BBox, Point};

/// A coarse rectangular partition of a bounding box into spatial regions.
///
/// # Examples
///
/// ```
/// use o2o_geo::{BBox, Point, RegionGrid};
///
/// let city = BBox::square(Point::ORIGIN, 40.0);
/// let grid = RegionGrid::new(city, 16, 5.0);
/// assert!(grid.regions() <= 16);
/// let p = Point::new(1.0, 1.0);
/// let region = grid.region_of(p);
/// assert!(grid.region_bbox(region).contains(p));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegionGrid {
    bbox: BBox,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
}

impl RegionGrid {
    /// Partitions `bbox` into at most `target_regions` rectangular regions
    /// whose sides are all at least `min_side` kilometres (except where the
    /// bbox itself is smaller, which yields a single column/row on that
    /// axis).
    ///
    /// Among all shapes `cols × rows` with `cols·rows ≤ target_regions`
    /// and each axis at most `floor(extent / min_side)` cells, the grid
    /// picks the one with the most regions, breaking ties toward square
    /// cells. `target_regions == 0` is treated as `1`. A `min_side` that is
    /// non-finite, negative, or `NaN` disables splitting entirely (one
    /// region) — the conservative answer when the interaction radius is
    /// unbounded.
    #[must_use]
    pub fn new(bbox: BBox, target_regions: usize, min_side: f64) -> Self {
        let target = target_regions.max(1);
        let degenerate = !min_side.is_finite() || min_side < 0.0;
        let axis_cap = |extent: f64| -> usize {
            if degenerate || extent <= 0.0 {
                1
            } else if min_side == 0.0 {
                // No geometric constraint on this axis; the region budget
                // is the only cap.
                target
            } else {
                ((extent / min_side).floor() as usize).clamp(1, target)
            }
        };
        let cap_c = axis_cap(bbox.width());
        let cap_r = axis_cap(bbox.height());
        // Exhaustive scan over column counts (cheap: cap_c ≤ target, and
        // realistic targets are tens to hundreds), picking the shape with
        // the most regions; ties prefer the squarest cells.
        let (mut cols, mut rows) = (1usize, 1usize);
        let mut best_key = (0usize, f64::INFINITY);
        for c in 1..=cap_c {
            let r = cap_r.min(target / c);
            if r == 0 {
                break;
            }
            let cell_w = bbox.width() / c as f64;
            let cell_h = bbox.height() / r as f64;
            let skew = (cell_w - cell_h).abs();
            if c * r > best_key.0 || (c * r == best_key.0 && skew < best_key.1) {
                best_key = (c * r, skew);
                cols = c;
                rows = r;
            }
        }
        RegionGrid {
            bbox,
            cols,
            rows,
            cell_w: bbox.width() / cols as f64,
            cell_h: bbox.height() / rows as f64,
        }
    }

    /// The partitioned bounding box.
    #[must_use]
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Number of region columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of region rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of regions (`cols × rows`).
    #[must_use]
    pub fn regions(&self) -> usize {
        self.cols * self.rows
    }

    /// The region owning `p`.
    ///
    /// Points outside the bbox are clamped onto it first, so every point
    /// maps to exactly one region. Points exactly on an internal partition
    /// line belong to the higher-index cell (the flooring convention), so
    /// ownership is a true partition, never double-counted.
    #[must_use]
    pub fn region_of(&self, p: Point) -> usize {
        let (c, r) = self.cell_of(p);
        r * self.cols + c
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let p = self.bbox.clamp(p);
        let c = if self.cell_w > 0.0 {
            (((p.x - self.bbox.min().x) / self.cell_w) as usize).min(self.cols - 1)
        } else {
            0
        };
        let r = if self.cell_h > 0.0 {
            (((p.y - self.bbox.min().y) / self.cell_h) as usize).min(self.rows - 1)
        } else {
            0
        };
        (c, r)
    }

    /// The rectangle owned by `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region ≥ self.regions()`.
    #[must_use]
    pub fn region_bbox(&self, region: usize) -> BBox {
        assert!(region < self.regions(), "region {region} out of range");
        let c = region % self.cols;
        let r = region / self.cols;
        let min = self.bbox.min();
        let lo = Point::new(
            min.x + c as f64 * self.cell_w,
            min.y + r as f64 * self.cell_h,
        );
        let hi = Point::new(
            if c + 1 == self.cols {
                self.bbox.max().x
            } else {
                min.x + (c + 1) as f64 * self.cell_w
            },
            if r + 1 == self.rows {
                self.bbox.max().y
            } else {
                min.y + (r + 1) as f64 * self.cell_h
            },
        );
        BBox::new(lo, hi)
    }

    /// `true` when the disk of radius `radius` around `p` provably cannot
    /// reach any point owned by a *different* region — i.e. `p` is in the
    /// interior band of its region.
    ///
    /// Conservative on purpose: the test requires the distance from `p` to
    /// every internal partition line bordering its region to be *strictly*
    /// greater than `radius` (a partner exactly on the line across the
    /// border is at exactly `radius` and would interact, since dispatch
    /// acceptance tests are inclusive). Sides of the region on the hull of
    /// the partitioned bbox don't count — there is nothing beyond them
    /// (points outside the bbox are clamped in by [`Self::region_of`], so
    /// hull regions own everything beyond the hull too). Non-finite or
    /// negative radii classify as boundary (`false`), the conservative
    /// answer.
    #[must_use]
    pub fn disk_is_interior(&self, p: Point, radius: f64) -> bool {
        if !radius.is_finite() || radius < 0.0 {
            return false;
        }
        if self.regions() == 1 {
            return true;
        }
        let (c, r) = self.cell_of(p);
        let q = self.bbox.clamp(p);
        // A point outside the bbox is owned by a hull region but sits at
        // distance > 0 from it; measure from the clamped position, which
        // is what ownership is keyed by, and require the original point to
        // be inside (otherwise its disk geometry vs. the partition lines
        // is not the clamped one) — conservative: classify as boundary.
        if q != p {
            return false;
        }
        let min = self.bbox.min();
        // Distances to the four partition lines bordering cell (c, r);
        // hull sides are skipped.
        if c > 0 && (p.x - (min.x + c as f64 * self.cell_w)) <= radius {
            return false;
        }
        if c + 1 < self.cols && ((min.x + (c + 1) as f64 * self.cell_w) - p.x) <= radius {
            return false;
        }
        if r > 0 && (p.y - (min.y + r as f64 * self.cell_h)) <= radius {
            return false;
        }
        if r + 1 < self.rows && ((min.y + (r + 1) as f64 * self.cell_h) - p.y) <= radius {
            return false;
        }
        true
    }

    /// The region bbox inflated by `margin` on every side and intersected
    /// with nothing — the *padded* region used to collect entities whose
    /// disks may cross into `region`. For hull regions the padding still
    /// extends outward, which is harmless: clamped ownership means no
    /// entity lives there.
    #[must_use]
    pub fn padded_region_bbox(&self, region: usize, margin: f64) -> BBox {
        self.region_bbox(region).inflated(margin.max(0.0))
    }

    /// Every region whose rectangle is within `margin` kilometres of `p`
    /// (inclusive — a region exactly `margin` away still interacts, since
    /// dispatch acceptance tests are inclusive), ascending region index.
    ///
    /// Equivalently: the regions whose [`Self::padded_region_bbox`] with
    /// this margin contains `p`. An infinite margin returns every region;
    /// a negative or `NaN` margin returns only the owner of `p`.
    #[must_use]
    pub fn regions_near(&self, p: Point, margin: f64) -> Vec<usize> {
        if margin.is_nan() || margin < 0.0 {
            return vec![self.region_of(p)];
        }
        if margin.is_infinite() {
            return (0..self.regions()).collect();
        }
        // Cell cover of the margin square, widened by one cell per side:
        // a region touching the square only along a shared partition line
        // is owned by the neighbouring cell, so the raw cover could miss
        // it by exactly one column/row. The exact bbox-distance filter
        // below discards any over-included corner regions.
        let (c0, r0) = self.cell_of(Point::new(p.x - margin, p.y - margin));
        let (c1, r1) = self.cell_of(Point::new(p.x + margin, p.y + margin));
        let (c0, r0) = (c0.saturating_sub(1), r0.saturating_sub(1));
        let (c1, r1) = ((c1 + 1).min(self.cols - 1), (r1 + 1).min(self.rows - 1));
        let mut out = Vec::new();
        for r in r0..=r1 {
            for c in c0..=c1 {
                let region = r * self.cols + c;
                // The square cover over-includes corner regions; keep only
                // those genuinely within the (inclusive) margin.
                if self.region_bbox(region).distance_to_point(p) <= margin {
                    out.push(region);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn city() -> BBox {
        BBox::square(Point::ORIGIN, 40.0)
    }

    #[test]
    fn respects_target_and_min_side() {
        let g = RegionGrid::new(city(), 16, 5.0);
        assert!(g.regions() <= 16);
        assert!(g.regions() > 1);
        for region in 0..g.regions() {
            let b = g.region_bbox(region);
            assert!(b.width() >= 5.0 - 1e-9);
            assert!(b.height() >= 5.0 - 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs_collapse_to_one_region() {
        assert_eq!(RegionGrid::new(city(), 16, f64::INFINITY).regions(), 1);
        assert_eq!(RegionGrid::new(city(), 16, f64::NAN).regions(), 1);
        assert_eq!(RegionGrid::new(city(), 16, -1.0).regions(), 1);
        assert_eq!(RegionGrid::new(city(), 1, 1.0).regions(), 1);
        assert_eq!(RegionGrid::new(city(), 0, 1.0).regions(), 1);
        let point_box = BBox::new(Point::ORIGIN, Point::ORIGIN);
        assert_eq!(RegionGrid::new(point_box, 16, 1.0).regions(), 1);
    }

    #[test]
    fn min_side_larger_than_city_means_one_region() {
        assert_eq!(RegionGrid::new(city(), 64, 100.0).regions(), 1);
    }

    #[test]
    fn region_bboxes_tile_the_city() {
        let g = RegionGrid::new(city(), 16, 5.0);
        let mut area = 0.0;
        for region in 0..g.regions() {
            area += g.region_bbox(region).area();
        }
        assert!((area - city().area()).abs() < 1e-6);
    }

    #[test]
    fn ownership_matches_region_bbox() {
        let g = RegionGrid::new(city(), 16, 5.0);
        for i in 0..200 {
            let p = Point::new(
                (i as f64 * 1.37) % 40.0 - 20.0,
                (i as f64 * 2.11) % 40.0 - 20.0,
            );
            let region = g.region_of(p);
            assert!(
                g.region_bbox(region).contains(p),
                "{p:?} not in its region bbox"
            );
        }
    }

    #[test]
    fn partition_line_points_have_one_owner() {
        let g = RegionGrid::new(city(), 4, 5.0);
        assert_eq!(g.cols(), 2);
        assert_eq!(g.rows(), 2);
        // Exactly on the vertical partition line: owned by the right cell.
        let on_line = Point::new(0.0, -10.0);
        assert_eq!(g.region_of(on_line), 1);
        // The shared center corner: owned by the top-right cell.
        assert_eq!(g.region_of(Point::ORIGIN), 3);
    }

    #[test]
    fn interior_test_is_strict_at_the_radius() {
        let g = RegionGrid::new(city(), 4, 5.0);
        // Vertical partition line at x = 0. A point 2 km west of it:
        let p = Point::new(-2.0, -10.0);
        assert!(g.disk_is_interior(p, 1.9));
        assert!(
            !g.disk_is_interior(p, 2.0),
            "distance exactly the radius must be boundary"
        );
        assert!(!g.disk_is_interior(p, 2.1));
        // Hull sides don't count: a point near the west hull, far from the
        // internal line, is interior.
        let near_hull = Point::new(-19.9, -10.0);
        assert!(g.disk_is_interior(near_hull, 1.0));
        // Non-finite radii are conservatively boundary.
        assert!(!g.disk_is_interior(p, f64::INFINITY));
        assert!(!g.disk_is_interior(p, f64::NAN));
        // Single region: everything is interior.
        let one = RegionGrid::new(city(), 1, 5.0);
        assert!(one.disk_is_interior(p, f64::INFINITY.min(1.0e18)));
    }

    #[test]
    fn clamped_points_are_boundary() {
        let g = RegionGrid::new(city(), 4, 5.0);
        let outside = Point::new(25.0, 0.0);
        let region = g.region_of(outside);
        assert!(g.region_bbox(region).contains(city().clamp(outside)));
        assert!(!g.disk_is_interior(outside, 0.5));
    }

    #[test]
    fn padded_bbox_contains_nearby_points() {
        let g = RegionGrid::new(city(), 16, 5.0);
        let region = g.region_of(Point::new(-18.0, -18.0));
        let padded = g.padded_region_bbox(region, 3.0);
        let b = g.region_bbox(region);
        assert!(padded.width() >= b.width() + 6.0 - 1e-9);
        assert!(padded.contains(Point::new(b.max().x + 2.9, b.min().y)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every point is owned by exactly one region, and that region's
        /// bbox contains its clamped position.
        #[test]
        fn every_point_has_exactly_one_region(
            pts in proptest::collection::vec((-25.0..25.0f64, -25.0..25.0f64), 1..80),
            target in 1usize..32,
            min_side in 0.5..30.0f64,
        ) {
            let g = RegionGrid::new(city(), target, min_side);
            prop_assert!(g.regions() >= 1 && g.regions() <= target.max(1));
            for (x, y) in pts {
                let p = Point::new(x, y);
                let region = g.region_of(p);
                prop_assert!(region < g.regions());
                prop_assert!(g.region_bbox(region).contains(city().clamp(p)));
                // Ownership is consistent: membership by bbox scan finds
                // at least the owner (shared edges may admit neighbours,
                // which is why ownership is by `region_of`, not bboxes).
                let holders = (0..g.regions())
                    .filter(|&s| g.region_bbox(s).contains(city().clamp(p)))
                    .count();
                prop_assert!(holders >= 1);
            }
        }

        /// Interior classification is sound: an interior disk contains no
        /// point owned by a different region.
        #[test]
        fn interior_disks_do_not_cross_ownership(
            pts in proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 2..60),
            target in 1usize..32,
            min_side in 1.0..20.0f64,
            radius in 0.0..8.0f64,
        ) {
            let g = RegionGrid::new(city(), target, min_side);
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            for &p in &pts {
                if !g.disk_is_interior(p, radius) {
                    continue;
                }
                let home = g.region_of(p);
                for &q in &pts {
                    if p.euclidean(q) <= radius {
                        prop_assert_eq!(
                            g.region_of(q), home,
                            "interior disk at {:?} (r={}) reaches a foreign point {:?}", p, radius, q
                        );
                    }
                }
            }
        }

        /// `regions_near` equals the brute-force inclusive bbox-distance
        /// scan over all regions.
        #[test]
        fn regions_near_matches_brute_force(
            pts in proptest::collection::vec((-25.0..25.0f64, -25.0..25.0f64), 1..40),
            target in 1usize..32,
            min_side in 1.0..20.0f64,
            margin in 0.0..12.0f64,
        ) {
            let g = RegionGrid::new(city(), target, min_side);
            for (x, y) in pts {
                let p = Point::new(x, y);
                let expect: Vec<usize> = (0..g.regions())
                    .filter(|&s| g.region_bbox(s).distance_to_point(p) <= margin)
                    .collect();
                prop_assert_eq!(g.regions_near(p, margin), expect);
            }
        }

        /// Boundary-band membership is symmetric across an edge: if `p`'s
        /// disk reaches `q` and they live in different regions, *both* are
        /// classified as boundary for that radius.
        #[test]
        fn boundary_band_is_symmetric(
            pts in proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 2..60),
            target in 2usize..32,
            min_side in 1.0..15.0f64,
            radius in 0.0..8.0f64,
        ) {
            let g = RegionGrid::new(city(), target, min_side);
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            for &p in &pts {
                for &q in &pts {
                    if p.euclidean(q) <= radius && g.region_of(p) != g.region_of(q) {
                        prop_assert!(!g.disk_is_interior(p, radius));
                        prop_assert!(!g.disk_is_interior(q, radius));
                    }
                }
            }
        }
    }
}
