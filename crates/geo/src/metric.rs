//! Pluggable distance functions — the paper's `D(·,·)`.

use crate::Point;
use std::fmt::Debug;

/// A distance function over city locations — the `D(·,·)` of the paper.
///
/// Every dispatch algorithm in this workspace is generic over the metric, so
/// the paper's Euclidean model, a rectilinear street grid, or a full
/// [`RoadNetwork`](crate::RoadNetwork) shortest-path metric can be swapped in
/// without touching the algorithms.
///
/// Implementations must be symmetric (`d(a, b) == d(b, a)`), non-negative,
/// and satisfy `d(a, a) == 0`. The triangle inequality is assumed by the
/// routing code (shared-route search prunes with it) but small violations
/// only cost optimality, never correctness.
///
/// # Examples
///
/// ```
/// use o2o_geo::{Manhattan, Metric, Point};
///
/// let d = Manhattan.distance(Point::new(0.0, 0.0), Point::new(2.0, 3.0));
/// assert_eq!(d, 5.0);
/// ```
pub trait Metric: Debug + Send + Sync {
    /// Shortest-path distance between `a` and `b`, in kilometres.
    fn distance(&self, a: Point, b: Point) -> f64;

    /// Total length of a polyline through `stops`, in kilometres.
    ///
    /// Returns `0.0` for zero or one stop.
    fn path_length(&self, stops: &[Point]) -> f64 {
        stops.windows(2).map(|w| self.distance(w[0], w[1])).sum()
    }

    /// One-to-many batched distances: fills `out[i]` with
    /// `distance(origin, targets[i])`.
    ///
    /// The default body is exactly that per-element loop, so every
    /// implementation is bit-identical to repeated [`Metric::distance`]
    /// calls by construction. Concrete metrics may override it with a
    /// chunked kernel (see [`Euclidean`]) to expose independent distance
    /// computations to the optimizer — overrides **must** keep the
    /// per-element arithmetic unchanged, batching only the loop
    /// structure, so results stay bit-identical. Since metrics are
    /// symmetric, hot paths that need many-origins-to-one-destination
    /// rows (the pickup matrices) call this with the shared destination
    /// as `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` and `out` have different lengths.
    fn distances_into(&self, origin: Point, targets: &[Point], out: &mut [f64]) {
        assert_eq!(
            targets.len(),
            out.len(),
            "distances_into: targets and out must have equal lengths"
        );
        for (o, &t) in out.iter_mut().zip(targets) {
            *o = self.distance(origin, t);
        }
    }
}

/// Chunk width for the batched distance kernels. Eight pairs per
/// iteration keeps the working set in registers and lets the compiler
/// unroll/pipeline the independent per-pair computations.
const BATCH_CHUNK: usize = 8;

/// Straight-line distance — the paper's default city model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Euclidean;

impl Metric for Euclidean {
    fn distance(&self, a: Point, b: Point) -> f64 {
        a.euclidean(b)
    }

    /// Chunked one-to-many kernel. Each element is still exactly
    /// `origin.euclidean(target)` — bit-identical to the default body —
    /// but processing fixed-width chunks of independent pairs lets the
    /// compiler unroll and pipeline the loop instead of serialising on
    /// one pair at a time.
    fn distances_into(&self, origin: Point, targets: &[Point], out: &mut [f64]) {
        assert_eq!(
            targets.len(),
            out.len(),
            "distances_into: targets and out must have equal lengths"
        );
        let mut t_chunks = targets.chunks_exact(BATCH_CHUNK);
        let mut o_chunks = out.chunks_exact_mut(BATCH_CHUNK);
        for (ts, os) in (&mut t_chunks).zip(&mut o_chunks) {
            for k in 0..BATCH_CHUNK {
                os[k] = origin.euclidean(ts[k]);
            }
        }
        for (o, &t) in o_chunks
            .into_remainder()
            .iter_mut()
            .zip(t_chunks.remainder())
        {
            *o = origin.euclidean(t);
        }
    }
}

/// Rectilinear (L1) distance — an approximation of a gridded street plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Manhattan;

impl Metric for Manhattan {
    fn distance(&self, a: Point, b: Point) -> f64 {
        a.manhattan(b)
    }

    /// Chunked one-to-many kernel; same contract as
    /// [`Euclidean::distances_into`](Metric::distances_into). The L1
    /// arithmetic has no library calls at all, so these chunks
    /// auto-vectorize outright.
    fn distances_into(&self, origin: Point, targets: &[Point], out: &mut [f64]) {
        assert_eq!(
            targets.len(),
            out.len(),
            "distances_into: targets and out must have equal lengths"
        );
        let mut t_chunks = targets.chunks_exact(BATCH_CHUNK);
        let mut o_chunks = out.chunks_exact_mut(BATCH_CHUNK);
        for (ts, os) in (&mut t_chunks).zip(&mut o_chunks) {
            for k in 0..BATCH_CHUNK {
                os[k] = origin.manhattan(ts[k]);
            }
        }
        for (o, &t) in o_chunks
            .into_remainder()
            .iter_mut()
            .zip(t_chunks.remainder())
        {
            *o = origin.manhattan(t);
        }
    }
}

/// Wraps a metric, multiplying every distance by a constant factor.
///
/// Useful for modelling a detour ratio (road distance ≈ 1.3 × straight-line
/// distance is a common urban rule of thumb) without building a road graph.
///
/// # Examples
///
/// ```
/// use o2o_geo::{Euclidean, Metric, Point, ScaledMetric};
///
/// let road_ish = ScaledMetric::new(Euclidean, 1.3);
/// let d = road_ish.distance(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
/// assert!((d - 6.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledMetric<M> {
    inner: M,
    factor: f64,
}

impl<M: Metric> ScaledMetric<M> {
    /// Wraps `inner`, scaling all its distances by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn new(inner: M, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        ScaledMetric { inner, factor }
    }

    /// The wrapped metric.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The scale factor.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl<M: Metric> Metric for ScaledMetric<M> {
    fn distance(&self, a: Point, b: Point) -> f64 {
        self.inner.distance(a, b) * self.factor
    }

    /// Batches through the inner metric's kernel, then scales in place —
    /// the same `inner * factor` per element as [`Metric::distance`].
    fn distances_into(&self, origin: Point, targets: &[Point], out: &mut [f64]) {
        self.inner.distances_into(origin, targets, out);
        for o in out {
            *o *= self.factor;
        }
    }
}

// The wrapper impls forward `distances_into` explicitly: the default body
// would still be bit-identical (it loops the forwarded `distance`), but
// forwarding keeps the wrapped metric's chunked kernel on the hot path.

impl<M: Metric + ?Sized> Metric for &M {
    fn distance(&self, a: Point, b: Point) -> f64 {
        (**self).distance(a, b)
    }

    fn distances_into(&self, origin: Point, targets: &[Point], out: &mut [f64]) {
        (**self).distances_into(origin, targets, out);
    }
}

impl<M: Metric + ?Sized> Metric for Box<M> {
    fn distance(&self, a: Point, b: Point) -> f64 {
        (**self).distance(a, b)
    }

    fn distances_into(&self, origin: Point, targets: &[Point], out: &mut [f64]) {
        (**self).distances_into(origin, targets, out);
    }
}

impl<M: Metric + ?Sized> Metric for std::sync::Arc<M> {
    fn distance(&self, a: Point, b: Point) -> f64 {
        (**self).distance(a, b)
    }

    fn distances_into(&self, origin: Point, targets: &[Point], out: &mut [f64]) {
        (**self).distances_into(origin, targets, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn euclidean_matches_point_method() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(Euclidean.distance(a, b), a.euclidean(b));
    }

    #[test]
    fn path_length_sums_segments() {
        let stops = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ];
        assert_eq!(Euclidean.path_length(&stops), 7.0);
        assert_eq!(Manhattan.path_length(&stops), 7.0);
    }

    #[test]
    fn path_length_degenerate_cases() {
        assert_eq!(Euclidean.path_length(&[]), 0.0);
        assert_eq!(Euclidean.path_length(&[Point::new(9.0, 9.0)]), 0.0);
    }

    #[test]
    fn scaled_metric_scales() {
        let m = ScaledMetric::new(Manhattan, 2.0);
        assert_eq!(m.distance(Point::ORIGIN, Point::new(1.0, 1.0)), 4.0);
        assert_eq!(m.factor(), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn scaled_metric_rejects_negative() {
        let _ = ScaledMetric::new(Euclidean, -1.0);
    }

    #[test]
    // The borrow is the point: this test exercises the `impl Metric for &M`.
    #[allow(clippy::needless_borrows_for_generic_args)]
    fn metric_usable_through_references() {
        fn takes_metric<M: Metric>(m: M) -> f64 {
            m.distance(Point::ORIGIN, Point::new(1.0, 0.0))
        }
        assert_eq!(takes_metric(&Euclidean), 1.0);
        assert_eq!(takes_metric(Box::new(Euclidean) as Box<dyn Metric>), 1.0);
        assert_eq!(
            takes_metric(std::sync::Arc::new(Euclidean) as std::sync::Arc<dyn Metric>),
            1.0
        );
    }

    #[test]
    fn batched_distances_match_per_pair_calls_exactly() {
        // Lengths straddling the chunk width: empty, sub-chunk, exact
        // multiples, and ragged remainders.
        for n in [0usize, 1, 3, 7, 8, 9, 16, 23] {
            let origin = Point::new(0.37, -1.91);
            let targets: Vec<Point> = (0..n)
                .map(|i| Point::new((i as f64).sin() * 40.0, (i as f64).cos() * 25.0 - 3.0))
                .collect();
            let mut out = vec![f64::NAN; n];
            let scaled = ScaledMetric::new(Euclidean, 1.3);
            let boxed: Box<dyn Metric> = Box::new(Euclidean);
            let arced: std::sync::Arc<dyn Metric> = std::sync::Arc::new(Manhattan);
            let metrics: Vec<(&str, &dyn Metric)> = vec![
                ("euclidean", &Euclidean),
                ("manhattan", &Manhattan),
                ("scaled", &scaled),
                ("ref", &&Euclidean),
                ("boxed", &boxed),
                ("arced", &arced),
            ];
            for (name, m) in metrics {
                m.distances_into(origin, &targets, &mut out);
                for (i, &t) in targets.iter().enumerate() {
                    assert_eq!(
                        out[i].to_bits(),
                        m.distance(origin, t).to_bits(),
                        "{name} diverges at n={n}, i={i}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn batched_distances_reject_mismatched_buffers() {
        let mut out = vec![0.0; 2];
        Euclidean.distances_into(Point::ORIGIN, &[Point::ORIGIN], &mut out);
    }

    proptest! {
        #[test]
        fn euclidean_metric_axioms(ax in -50.0..50.0f64, ay in -50.0..50.0f64,
                                   bx in -50.0..50.0f64, by in -50.0..50.0f64,
                                   cx in -50.0..50.0f64, cy in -50.0..50.0f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            let m = Euclidean;
            prop_assert!(m.distance(a, b) >= 0.0);
            prop_assert!((m.distance(a, b) - m.distance(b, a)).abs() < 1e-9);
            prop_assert!(m.distance(a, a) == 0.0);
            // Triangle inequality with an epsilon for rounding.
            prop_assert!(m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-9);
        }

        #[test]
        fn manhattan_metric_axioms(ax in -50.0..50.0f64, ay in -50.0..50.0f64,
                                   bx in -50.0..50.0f64, by in -50.0..50.0f64,
                                   cx in -50.0..50.0f64, cy in -50.0..50.0f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            let m = Manhattan;
            prop_assert!((m.distance(a, b) - m.distance(b, a)).abs() < 1e-9);
            prop_assert!(m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-9);
            // L1 dominates L2.
            prop_assert!(m.distance(a, b) + 1e-9 >= Euclidean.distance(a, b));
        }
    }
}
