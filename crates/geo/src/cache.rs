//! A memoizing [`Metric`] wrapper for repeated distance queries.
//!
//! One dispatch frame asks for the same distances many times: the
//! preference matrices, stage-1 pair/triple routing and stage-3 group
//! evaluation all touch `D(t, r^s)` and `D(r^s, r^d)` for overlapping
//! `(point, point)` pairs. For cheap closed-form metrics that barely
//! matters, but for a [`RoadNetwork`](crate::RoadNetwork) each query is a
//! shortest-path search, so memoizing within a frame is a large win.
//!
//! [`DistanceCache`] wraps any inner metric and memoizes `distance`
//! queries in a sharded hash map. Because a cached value is always the
//! number the inner metric returned for that exact pair of points,
//! wrapping a metric never changes any computed result — only how often
//! the inner metric runs. The cache is keyed per frame in spirit: call
//! [`DistanceCache::clear`] at a frame boundary so stale geometry (e.g.
//! after a road-network update) cannot leak across frames and the map
//! cannot grow without bound over a long simulation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{Metric, Point};

/// One cache shard: distances keyed by the two endpoints' raw bits.
type Shard = Mutex<HashMap<(u64, u64, u64, u64), f64>>;

/// Number of independently locked shards. A power of two so shard
/// selection is a mask; 16 keeps contention low at the thread counts the
/// dispatch pipeline uses without wasting memory on empty maps.
const SHARDS: usize = 16;

/// Cache hit/miss counters of a [`DistanceCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that ran the inner metric.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the cache (0 when empty).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A [`Metric`] that memoizes `distance` queries of an inner metric.
///
/// Thread-safe: shards its map across [`SHARDS`] mutexes so parallel
/// pipeline stages can share one cache. Deterministic: a hit returns
/// exactly the value the inner metric produced for that ordered pair of
/// points, so results are bit-identical with and without the cache.
#[derive(Debug)]
pub struct DistanceCache<M> {
    inner: M,
    shards: [Shard; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<M: Metric> DistanceCache<M> {
    /// Wraps `inner` with an empty cache.
    #[must_use]
    pub fn new(inner: M) -> Self {
        DistanceCache {
            inner,
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped metric.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Drops every memoized distance (call at frame boundaries).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    /// Number of memoized distances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters since construction (they survive [`clear`]).
    ///
    /// [`clear`]: DistanceCache::clear
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The key is the exact bit pattern of both points, ordered, so two
    /// queries collide only when they are bitwise-identical queries.
    fn key(a: Point, b: Point) -> (u64, u64, u64, u64) {
        (a.x.to_bits(), a.y.to_bits(), b.x.to_bits(), b.y.to_bits())
    }

    fn shard_of(key: &(u64, u64, u64, u64)) -> usize {
        // Cheap mix of the low point bits; the mantissa low bits of real
        // coordinates are close to uniform.
        let h = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.2.rotate_left(32))
            .wrapping_add(key.1 ^ key.3);
        (h >> 56) as usize & (SHARDS - 1)
    }
}

impl<M: Metric> Metric for DistanceCache<M> {
    fn distance(&self, a: Point, b: Point) -> f64 {
        let key = Self::key(a, b);
        let shard = &self.shards[Self::shard_of(&key)];
        if let Some(&d) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        // Compute outside the lock: shortest-path queries can be slow and
        // holding the shard would serialize exactly the work we are
        // parallelizing. Two threads may race to compute the same pair;
        // both compute the same value, so last-write-wins is still
        // deterministic.
        let d = self.inner.distance(a, b);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.lock().expect("cache shard poisoned").insert(key, d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Euclidean;

    /// A metric that counts how often it runs.
    #[derive(Debug)]
    struct Counting {
        calls: AtomicU64,
    }

    impl Metric for Counting {
        fn distance(&self, a: Point, b: Point) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Euclidean.distance(a, b)
        }
    }

    #[test]
    fn caches_and_matches_inner() {
        let cache = DistanceCache::new(Counting {
            calls: AtomicU64::new(0),
        });
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(cache.distance(a, b), 5.0);
        assert_eq!(cache.distance(a, b), 5.0);
        assert_eq!(cache.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn directed_pairs_are_distinct_keys() {
        let cache = DistanceCache::new(Euclidean);
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(cache.distance(a, b), cache.distance(b, a));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_resets_entries_but_not_stats() {
        let cache = DistanceCache::new(Euclidean);
        cache.distance(Point::ORIGIN, Point::new(1.0, 0.0));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn zero_and_negative_zero_do_not_collide() {
        // -0.0 == 0.0 numerically but has a different bit pattern; the
        // bitwise key must treat them as different queries (both still
        // return correct distances).
        let cache = DistanceCache::new(Euclidean);
        let d1 = cache.distance(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let d2 = cache.distance(Point::new(-0.0, 0.0), Point::new(1.0, 0.0));
        assert_eq!(d1, d2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let cache = DistanceCache::new(Counting {
            calls: AtomicU64::new(0),
        });
        let points: Vec<(Point, Point)> = (0..64)
            .map(|i| {
                (
                    Point::new(f64::from(i % 8), 0.0),
                    Point::new(0.0, f64::from(i % 8)),
                )
            })
            .collect();
        let cache = &cache;
        std::thread::scope(|scope| {
            for chunk in points.chunks(16) {
                scope.spawn(move || {
                    for &(a, b) in chunk {
                        assert_eq!(cache.distance(a, b), Euclidean.distance(a, b));
                    }
                });
            }
        });
        // 8 distinct pairs; racing threads may each compute a pair once,
        // but far fewer than the 64 queries.
        assert!(cache.len() == 8);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert!(stats.misses >= 8);
    }
}
