//! A memoizing [`Metric`] wrapper for repeated distance queries.
//!
//! One dispatch frame asks for the same distances many times: the
//! preference matrices, stage-1 pair/triple routing and stage-3 group
//! evaluation all touch `D(t, r^s)` and `D(r^s, r^d)` for overlapping
//! `(point, point)` pairs. For cheap closed-form metrics that barely
//! matters, but for a [`RoadNetwork`](crate::RoadNetwork) each query is a
//! shortest-path search, so memoizing within a frame is a large win.
//!
//! [`DistanceCache`] wraps any inner metric and memoizes `distance`
//! queries in a sharded hash map. Because a cached value is always the
//! number the inner metric returned for that exact pair of points,
//! wrapping a metric never changes any computed result — only how often
//! the inner metric runs. Two lifetimes are supported:
//!
//! * **Per frame**: call [`DistanceCache::clear`] at every frame boundary
//!   so stale geometry (e.g. after a road-network update) cannot leak
//!   across frames and the map cannot grow without bound.
//! * **Cross frame** (the incremental dispatch pipeline): keep entries
//!   alive across frames and bound memory with
//!   [`DistanceCache::sweep_stale`] instead. Entries are keyed by the
//!   exact bit patterns of both endpoints, which *is* a generation key:
//!   a query for `(taxi, request)` hits only while the taxi's position
//!   bits are unchanged, and the moment the taxi moves its old entries
//!   become unreachable — the sweep reclaims exactly those by dropping
//!   every entry whose origin point is no longer live. Stationary idle
//!   taxis and carried-over pending requests therefore hit the cache
//!   across frames, and a hit can never return a pre-move distance.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{Metric, Point};

/// Cheap fixed-width hasher for the point-bits keys: one rotate-xor-
/// multiply round per `u64` (fx-hash style). The keys are raw `f64` bit
/// patterns of city coordinates — high-entropy in the mantissa bits — so
/// a full SipHash pass per lookup is wasted work on the hottest path of
/// the frame loop (a cache *hit* costs little more than this hash).
#[derive(Default, Clone, Copy)]
struct BitsHasher(u64);

impl std::hash::Hasher for BitsHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517C_C1B7_2722_0A95);
    }
}

/// One cache shard: distances keyed by the two endpoints' raw bits.
type Shard = Mutex<HashMap<(u64, u64, u64, u64), f64, std::hash::BuildHasherDefault<BitsHasher>>>;

/// Number of independently locked shards. A power of two so shard
/// selection is a mask; 16 keeps contention low at the thread counts the
/// dispatch pipeline uses without wasting memory on empty maps.
const SHARDS: usize = 16;

/// Cache hit/miss counters of a [`DistanceCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that ran the inner metric.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the cache (0 when empty).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A [`Metric`] that memoizes `distance` queries of an inner metric.
///
/// Thread-safe: shards its map across [`SHARDS`] mutexes so parallel
/// pipeline stages can share one cache. Deterministic: a hit returns
/// exactly the value the inner metric produced for that ordered pair of
/// points, so results are bit-identical with and without the cache.
#[derive(Debug)]
pub struct DistanceCache<M> {
    inner: M,
    shards: [Shard; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<M: Metric> DistanceCache<M> {
    /// Wraps `inner` with an empty cache.
    #[must_use]
    pub fn new(inner: M) -> Self {
        DistanceCache {
            inner,
            shards: std::array::from_fn(|_| Mutex::new(HashMap::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped metric.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Drops every memoized distance (call at frame boundaries).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    /// The sweep key of a query origin: the exact bit pattern of the
    /// point a cached distance was measured *from*. Build the live set
    /// for [`Self::sweep_stale`] with this.
    #[must_use]
    pub fn origin_key(p: Point) -> (u64, u64) {
        (p.x.to_bits(), p.y.to_bits())
    }

    /// Drops every entry whose origin point (the first argument of the
    /// memoized `distance` call) is not in `live`, returning how many
    /// entries were dropped. Hit/miss counters are untouched, so
    /// [`Self::stats`] stays cumulative and monotone across sweeps.
    ///
    /// This is the stale-generation sweep of the cross-frame lifetime:
    /// position bits are the generation, so an entry keyed by a position
    /// nobody occupies any more can never be queried again and is safe to
    /// reclaim. Callers pass the current frame's live origins — idle-taxi
    /// locations plus pending-request pickups (trip distances are keyed
    /// with the pickup as origin).
    pub fn sweep_stale(&self, live: &std::collections::HashSet<(u64, u64)>) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut map = shard.lock().expect("cache shard poisoned");
            let before = map.len();
            map.retain(|key, _| live.contains(&(key.0, key.1)));
            dropped += before - map.len();
        }
        dropped
    }

    /// Number of memoized distances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters since construction (they survive [`clear`]).
    ///
    /// [`clear`]: DistanceCache::clear
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The key is the exact bit pattern of both points, ordered, so two
    /// queries collide only when they are bitwise-identical queries.
    fn key(a: Point, b: Point) -> (u64, u64, u64, u64) {
        (a.x.to_bits(), a.y.to_bits(), b.x.to_bits(), b.y.to_bits())
    }

    fn shard_of(key: &(u64, u64, u64, u64)) -> usize {
        // Cheap mix of the low point bits; the mantissa low bits of real
        // coordinates are close to uniform.
        let h = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.2.rotate_left(32))
            .wrapping_add(key.1 ^ key.3);
        (h >> 56) as usize & (SHARDS - 1)
    }
}

impl<M: Metric> Metric for DistanceCache<M> {
    fn distance(&self, a: Point, b: Point) -> f64 {
        let key = Self::key(a, b);
        let shard = &self.shards[Self::shard_of(&key)];
        if let Some(&d) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        // Compute outside the lock: shortest-path queries can be slow and
        // holding the shard would serialize exactly the work we are
        // parallelizing. Two threads may race to compute the same pair;
        // both compute the same value, so last-write-wins is still
        // deterministic.
        let d = self.inner.distance(a, b);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.lock().expect("cache shard poisoned").insert(key, d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Euclidean;

    /// A metric that counts how often it runs.
    #[derive(Debug)]
    struct Counting {
        calls: AtomicU64,
    }

    impl Metric for Counting {
        fn distance(&self, a: Point, b: Point) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Euclidean.distance(a, b)
        }
    }

    #[test]
    fn caches_and_matches_inner() {
        let cache = DistanceCache::new(Counting {
            calls: AtomicU64::new(0),
        });
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(cache.distance(a, b), 5.0);
        assert_eq!(cache.distance(a, b), 5.0);
        assert_eq!(cache.inner().calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn directed_pairs_are_distinct_keys() {
        let cache = DistanceCache::new(Euclidean);
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(cache.distance(a, b), cache.distance(b, a));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_resets_entries_but_not_stats() {
        let cache = DistanceCache::new(Euclidean);
        cache.distance(Point::ORIGIN, Point::new(1.0, 0.0));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn zero_and_negative_zero_do_not_collide() {
        // -0.0 == 0.0 numerically but has a different bit pattern; the
        // bitwise key must treat them as different queries (both still
        // return correct distances).
        let cache = DistanceCache::new(Euclidean);
        let d1 = cache.distance(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let d2 = cache.distance(Point::new(-0.0, 0.0), Point::new(1.0, 0.0));
        assert_eq!(d1, d2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sweep_drops_only_stale_origins_and_keeps_stats() {
        let cache = DistanceCache::new(Counting {
            calls: AtomicU64::new(0),
        });
        let alive = Point::new(1.0, 2.0);
        let moved = Point::new(-3.0, 0.5);
        let dest = Point::new(4.0, 4.0);
        cache.distance(alive, dest);
        cache.distance(moved, dest);
        cache.distance(moved, alive);
        assert_eq!(cache.len(), 3);
        let live = std::collections::HashSet::from([DistanceCache::<Counting>::origin_key(alive)]);
        assert_eq!(cache.sweep_stale(&live), 2);
        assert_eq!(cache.len(), 1);
        // The surviving entry still hits; the swept origin recomputes.
        cache.distance(alive, dest);
        cache.distance(moved, dest);
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 1, misses: 4 });
        assert_eq!(cache.inner().calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn shared_across_threads() {
        let cache = DistanceCache::new(Counting {
            calls: AtomicU64::new(0),
        });
        let points: Vec<(Point, Point)> = (0..64)
            .map(|i| {
                (
                    Point::new(f64::from(i % 8), 0.0),
                    Point::new(0.0, f64::from(i % 8)),
                )
            })
            .collect();
        let cache = &cache;
        std::thread::scope(|scope| {
            for chunk in points.chunks(16) {
                scope.spawn(move || {
                    for &(a, b) in chunk {
                        assert_eq!(cache.distance(a, b), Euclidean.distance(a, b));
                    }
                });
            }
        });
        // 8 distinct pairs; racing threads may each compute a pair once,
        // but far fewer than the 64 queries.
        assert!(cache.len() == 8);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert!(stats.misses >= 8);
    }

    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Model-based check of the persistent lifetime: interleaved
        /// queries and stale-origin sweeps over a small recurring point
        /// pool (the cross-frame pattern — stationary taxis re-query the
        /// exact same position bits). Every answer must equal the bare
        /// metric's, every query must hit or miss exactly as a
        /// shadow-model map predicts, and after each sweep the cache must
        /// hold exactly the model's surviving entries.
        #[test]
        fn persistent_sweep_matches_a_shadow_model(
            seed in any::<u64>(),
            ops in 10usize..120,
            pool_size in 2usize..8,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let points: Vec<Point> = (0..pool_size)
                .map(|_| Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                .collect();
            let cache = DistanceCache::new(Counting {
                calls: AtomicU64::new(0),
            });
            let mut model: std::collections::HashMap<(u64, u64, u64, u64), f64> =
                std::collections::HashMap::new();
            for _ in 0..ops {
                if rng.gen_bool(0.2) {
                    // Sweep with a random subset of the pool live.
                    let live: std::collections::HashSet<(u64, u64)> = points
                        .iter()
                        .filter(|_| rng.gen_bool(0.5))
                        .map(|&p| DistanceCache::<Counting>::origin_key(p))
                        .collect();
                    cache.sweep_stale(&live);
                    model.retain(|k, _| live.contains(&(k.0, k.1)));
                    prop_assert_eq!(cache.len(), model.len());
                } else {
                    let a = points[rng.gen_range(0..points.len())];
                    let b = points[rng.gen_range(0..points.len())];
                    let key = (a.x.to_bits(), a.y.to_bits(), b.x.to_bits(), b.y.to_bits());
                    let expect_hit = model.contains_key(&key);
                    let before = cache.stats();
                    let d = cache.distance(a, b);
                    prop_assert_eq!(d, Euclidean.distance(a, b));
                    let after = cache.stats();
                    if expect_hit {
                        prop_assert_eq!(after.hits, before.hits + 1);
                        prop_assert_eq!(after.misses, before.misses);
                    } else {
                        prop_assert_eq!(after.misses, before.misses + 1);
                        model.insert(key, d);
                    }
                }
            }
            // Every recorded miss is backed by exactly one inner call.
            prop_assert_eq!(
                cache.stats().misses,
                cache.inner().calls.load(Ordering::Relaxed)
            );
        }
    }
}
