//! Axis-aligned bounding boxes describing a city's extent.

use crate::Point;
use std::fmt;

/// An axis-aligned rectangle on the city plane, in kilometres.
///
/// Used to describe the service area of a trace (e.g. the ~60×60 km New York
/// state-scale area vs the ~15×15 km Boston area) and to configure spatial
/// indices.
///
/// # Examples
///
/// ```
/// use o2o_geo::{BBox, Point};
///
/// let city = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 8.0));
/// assert!(city.contains(Point::new(5.0, 5.0)));
/// assert_eq!(city.width(), 10.0);
/// assert_eq!(city.center(), Point::new(5.0, 4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    min: Point,
    max: Point,
}

impl BBox {
    /// Creates a bounding box from two opposite corners.
    ///
    /// The corners may be given in any order; they are normalised so that
    /// `min() ≤ max()` component-wise.
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square box of side `side` kilometres centred on `center`.
    ///
    /// # Panics
    ///
    /// Panics if `side` is negative.
    #[must_use]
    pub fn square(center: Point, side: f64) -> Self {
        assert!(side >= 0.0, "side must be non-negative, got {side}");
        let h = side / 2.0;
        BBox::new(
            Point::new(center.x - h, center.y - h),
            Point::new(center.x + h, center.y + h),
        )
    }

    /// The smallest box containing every point of the iterator, or `None`
    /// for an empty iterator.
    #[must_use]
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BBox::new(first, first);
        for p in it {
            bb = bb.expanded_to(p);
        }
        Some(bb)
    }

    /// Lower-left corner.
    #[must_use]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    #[must_use]
    pub fn max(&self) -> Point {
        self.max
    }

    /// East–west extent in kilometres.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// North–south extent in kilometres.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square kilometres.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    #[must_use]
    pub fn center(&self) -> Point {
        self.min.lerp(self.max, 0.5)
    }

    /// Length of the diagonal — an upper bound on any intra-city distance.
    #[must_use]
    pub fn diagonal(&self) -> f64 {
        self.min.euclidean(self.max)
    }

    /// `true` when `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The nearest point inside the box to `p` (identity when `p` is inside).
    #[must_use]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// A copy grown (or shrunk, for negative `margin`) by `margin` km on
    /// every side. Shrinking never inverts the box: it stops at the centre.
    #[must_use]
    pub fn inflated(&self, margin: f64) -> BBox {
        let c = self.center();
        let half_w = (self.width() / 2.0 + margin).max(0.0);
        let half_h = (self.height() / 2.0 + margin).max(0.0);
        BBox::new(
            Point::new(c.x - half_w, c.y - half_h),
            Point::new(c.x + half_w, c.y + half_h),
        )
    }

    /// The smallest box containing both `self` and `p`.
    #[must_use]
    pub fn expanded_to(&self, p: Point) -> BBox {
        BBox {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_are_normalised() {
        let b = BBox::new(Point::new(5.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(b.min(), Point::new(1.0, 1.0));
        assert_eq!(b.max(), Point::new(5.0, 5.0));
    }

    #[test]
    fn square_has_expected_extent() {
        let b = BBox::square(Point::new(0.0, 0.0), 10.0);
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 10.0);
        assert_eq!(b.center(), Point::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn square_rejects_negative_side() {
        let _ = BBox::square(Point::ORIGIN, -1.0);
    }

    #[test]
    fn contains_boundary() {
        let b = BBox::square(Point::ORIGIN, 2.0);
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(b.contains(Point::new(-1.0, 0.0)));
        assert!(!b.contains(Point::new(1.0001, 0.0)));
    }

    #[test]
    fn clamp_projects_outside_points() {
        let b = BBox::square(Point::ORIGIN, 2.0);
        assert_eq!(b.clamp(Point::new(5.0, 0.5)), Point::new(1.0, 0.5));
        assert_eq!(b.clamp(Point::new(0.2, 0.2)), Point::new(0.2, 0.2));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 4.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, -1.0),
        ];
        let b = BBox::from_points(pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min(), Point::new(-2.0, -1.0));
        assert_eq!(b.max(), Point::new(3.0, 4.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn inflate_and_area() {
        let b = BBox::square(Point::ORIGIN, 2.0);
        assert_eq!(b.area(), 4.0);
        let big = b.inflated(1.0);
        assert_eq!(big.width(), 4.0);
        let tiny = b.inflated(-5.0);
        assert_eq!(tiny.width(), 0.0);
    }

    #[test]
    fn diagonal_bounds_distances() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(b.diagonal(), 5.0);
    }
}
