//! Axis-aligned bounding boxes describing a city's extent.

use crate::Point;
use std::fmt;

/// An axis-aligned rectangle on the city plane, in kilometres.
///
/// Used to describe the service area of a trace (e.g. the ~60×60 km New York
/// state-scale area vs the ~15×15 km Boston area) and to configure spatial
/// indices.
///
/// # Examples
///
/// ```
/// use o2o_geo::{BBox, Point};
///
/// let city = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 8.0));
/// assert!(city.contains(Point::new(5.0, 5.0)));
/// assert_eq!(city.width(), 10.0);
/// assert_eq!(city.center(), Point::new(5.0, 4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    min: Point,
    max: Point,
}

impl BBox {
    /// Creates a bounding box from two opposite corners.
    ///
    /// The corners may be given in any order; they are normalised so that
    /// `min() ≤ max()` component-wise.
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square box of side `side` kilometres centred on `center`.
    ///
    /// # Panics
    ///
    /// Panics if `side` is negative.
    #[must_use]
    pub fn square(center: Point, side: f64) -> Self {
        assert!(side >= 0.0, "side must be non-negative, got {side}");
        let h = side / 2.0;
        BBox::new(
            Point::new(center.x - h, center.y - h),
            Point::new(center.x + h, center.y + h),
        )
    }

    /// The smallest box containing every point of the iterator, or `None`
    /// for an empty iterator.
    #[must_use]
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BBox::new(first, first);
        for p in it {
            bb = bb.expanded_to(p);
        }
        Some(bb)
    }

    /// Lower-left corner.
    #[must_use]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    #[must_use]
    pub fn max(&self) -> Point {
        self.max
    }

    /// East–west extent in kilometres.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// North–south extent in kilometres.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square kilometres.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    #[must_use]
    pub fn center(&self) -> Point {
        self.min.lerp(self.max, 0.5)
    }

    /// Length of the diagonal — an upper bound on any intra-city distance.
    #[must_use]
    pub fn diagonal(&self) -> f64 {
        self.min.euclidean(self.max)
    }

    /// `true` when `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The nearest point inside the box to `p` (identity when `p` is inside).
    #[must_use]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// A copy grown (or shrunk, for negative `margin`) by `margin` km on
    /// every side. Shrinking never inverts the box: it stops at the centre.
    #[must_use]
    pub fn inflated(&self, margin: f64) -> BBox {
        let c = self.center();
        let half_w = (self.width() / 2.0 + margin).max(0.0);
        let half_h = (self.height() / 2.0 + margin).max(0.0);
        BBox::new(
            Point::new(c.x - half_w, c.y - half_h),
            Point::new(c.x + half_w, c.y + half_h),
        )
    }

    /// The smallest box containing both `self` and `p`.
    #[must_use]
    pub fn expanded_to(&self, p: Point) -> BBox {
        BBox {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// Euclidean distance from `p` to the nearest point of the box
    /// (`0.0` when `p` is inside or on the boundary).
    ///
    /// Works for degenerate boxes too: a zero-area box (a point or a
    /// segment) is still a valid set of points, so the distance to it is
    /// the distance to that point/segment, never `NaN`.
    #[must_use]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        p.euclidean(self.clamp(p))
    }

    /// Euclidean distance between the closest pair of points of `self` and
    /// `other` — a lower bound on the distance between *any* point of one
    /// and any point of the other.
    ///
    /// Returns `0.0` when the boxes overlap, share an edge, or share only a
    /// corner (touching sets have distance zero). Zero-area boxes behave as
    /// the points/segments they are.
    #[must_use]
    pub fn min_distance_to(&self, other: &BBox) -> f64 {
        // Per-axis gap between the intervals; 0 when they overlap or touch.
        let dx = (other.min.x - self.max.x)
            .max(self.min.x - other.max.x)
            .max(0.0);
        let dy = (other.min.y - self.max.y)
            .max(self.min.y - other.max.y)
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn corners_are_normalised() {
        let b = BBox::new(Point::new(5.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(b.min(), Point::new(1.0, 1.0));
        assert_eq!(b.max(), Point::new(5.0, 5.0));
    }

    #[test]
    fn square_has_expected_extent() {
        let b = BBox::square(Point::new(0.0, 0.0), 10.0);
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 10.0);
        assert_eq!(b.center(), Point::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn square_rejects_negative_side() {
        let _ = BBox::square(Point::ORIGIN, -1.0);
    }

    #[test]
    fn contains_boundary() {
        let b = BBox::square(Point::ORIGIN, 2.0);
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(b.contains(Point::new(-1.0, 0.0)));
        assert!(!b.contains(Point::new(1.0001, 0.0)));
    }

    #[test]
    fn clamp_projects_outside_points() {
        let b = BBox::square(Point::ORIGIN, 2.0);
        assert_eq!(b.clamp(Point::new(5.0, 0.5)), Point::new(1.0, 0.5));
        assert_eq!(b.clamp(Point::new(0.2, 0.2)), Point::new(0.2, 0.2));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 4.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, -1.0),
        ];
        let b = BBox::from_points(pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min(), Point::new(-2.0, -1.0));
        assert_eq!(b.max(), Point::new(3.0, 4.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn inflate_and_area() {
        let b = BBox::square(Point::ORIGIN, 2.0);
        assert_eq!(b.area(), 4.0);
        let big = b.inflated(1.0);
        assert_eq!(big.width(), 4.0);
        let tiny = b.inflated(-5.0);
        assert_eq!(tiny.width(), 0.0);
    }

    #[test]
    fn diagonal_bounds_distances() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(b.diagonal(), 5.0);
    }

    #[test]
    fn point_distance_inside_and_outside() {
        let b = BBox::square(Point::ORIGIN, 2.0);
        assert_eq!(b.distance_to_point(Point::new(0.5, -0.5)), 0.0);
        assert_eq!(b.distance_to_point(Point::new(1.0, 1.0)), 0.0); // corner
        assert_eq!(b.distance_to_point(Point::new(4.0, 0.0)), 3.0);
        assert_eq!(b.distance_to_point(Point::new(4.0, 5.0)), 5.0); // diagonal 3-4-5
    }

    #[test]
    fn box_distance_disjoint_axis_and_diagonal() {
        let a = BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let right = BBox::new(Point::new(3.0, 0.0), Point::new(4.0, 1.0));
        assert_eq!(a.min_distance_to(&right), 2.0);
        assert_eq!(right.min_distance_to(&a), 2.0);
        let diag = BBox::new(Point::new(4.0, 5.0), Point::new(6.0, 7.0));
        assert_eq!(a.min_distance_to(&diag), 5.0); // 3-4-5 between corners
    }

    #[test]
    fn box_distance_touching_is_zero() {
        let a = BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        // Shared edge.
        let edge = BBox::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert_eq!(a.min_distance_to(&edge), 0.0);
        // Shared corner only.
        let corner = BBox::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        assert_eq!(a.min_distance_to(&corner), 0.0);
        // Overlapping.
        let overlap = BBox::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        assert_eq!(a.min_distance_to(&overlap), 0.0);
    }

    #[test]
    fn zero_area_boxes_behave_as_points_and_segments() {
        // A point-box.
        let p = BBox::new(Point::new(2.0, 3.0), Point::new(2.0, 3.0));
        assert_eq!(p.distance_to_point(Point::new(2.0, 3.0)), 0.0);
        assert_eq!(p.distance_to_point(Point::new(5.0, 7.0)), 5.0);
        // A vertical segment-box.
        let seg = BBox::new(Point::new(0.0, 0.0), Point::new(0.0, 4.0));
        assert_eq!(seg.distance_to_point(Point::new(3.0, 2.0)), 3.0);
        // Point-box vs point-box: plain point distance.
        let q = BBox::new(Point::new(5.0, 7.0), Point::new(5.0, 7.0));
        assert_eq!(p.min_distance_to(&q), 5.0);
        // Segment touching a point-box at its endpoint.
        let end = BBox::new(Point::new(0.0, 4.0), Point::new(0.0, 4.0));
        assert_eq!(seg.min_distance_to(&end), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The bbox lower bound never exceeds the true minimum pairwise
        /// distance between points drawn from each box — including
        /// degenerate (zero-area) boxes and shared edges/corners.
        #[test]
        fn min_distance_lower_bounds_all_pairs(
            a_pts in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..12),
            b_pts in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..12),
        ) {
            let a_pts: Vec<Point> = a_pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let b_pts: Vec<Point> = b_pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let a = BBox::from_points(a_pts.iter().copied()).unwrap();
            let b = BBox::from_points(b_pts.iter().copied()).unwrap();
            let bound = a.min_distance_to(&b);
            prop_assert_eq!(bound, b.min_distance_to(&a));
            for &p in &a_pts {
                prop_assert!(a.distance_to_point(p) == 0.0);
                for &q in &b_pts {
                    let d = p.euclidean(q);
                    prop_assert!(
                        bound <= d,
                        "bbox bound {} exceeds pair distance {}", bound, d
                    );
                }
            }
        }

        /// `distance_to_point` lower-bounds the distance to every point the
        /// box contains, and is exact for the clamped projection.
        #[test]
        fn point_distance_lower_bounds_contents(
            pts in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..12),
            qx in -15.0..15.0f64,
            qy in -15.0..15.0f64,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let b = BBox::from_points(pts.iter().copied()).unwrap();
            let q = Point::new(qx, qy);
            let bound = b.distance_to_point(q);
            for &p in &pts {
                prop_assert!(bound <= p.euclidean(q) + 1e-12);
            }
        }
    }
}
