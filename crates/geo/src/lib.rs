//! Geometry substrate for the O2O taxi-dispatch reproduction.
//!
//! The paper models the city as a Euclidean surface with a shortest-path
//! distance function `D(·,·)`. This crate provides:
//!
//! * [`Point`] — a location in kilometres,
//! * [`Metric`] — pluggable distance functions ([`Euclidean`], [`Manhattan`],
//!   and the graph-based [`RoadNetwork`]),
//! * [`GridIndex`] — a uniform-grid spatial index for nearest-neighbour and
//!   range queries over taxis,
//! * [`BBox`] — axis-aligned bounding boxes describing a city's extent,
//! * [`RegionGrid`] — a coarse rectangular partition of the city into
//!   dispatch regions for sharded matching.
//!
//! # Examples
//!
//! ```
//! use o2o_geo::{Euclidean, Metric, Point};
//!
//! let taxi = Point::new(0.0, 0.0);
//! let pickup = Point::new(3.0, 4.0);
//! assert_eq!(Euclidean.distance(taxi, pickup), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod cache;
mod grid_index;
mod incremental_grid;
mod metric;
mod point;
mod region;
mod road_network;

pub use bbox::BBox;
pub use cache::{CacheStats, DistanceCache};
pub use grid_index::{heuristic_cell_size, GridIndex, Neighbor};
pub use incremental_grid::{IncrementalGrid, SyncOutcome};
pub use metric::{Euclidean, Manhattan, Metric, ScaledMetric};
pub use point::Point;
pub use region::RegionGrid;
pub use road_network::{EdgeId, NodeId, RoadNetwork, RoadNetworkBuilder, RoadNetworkError};
