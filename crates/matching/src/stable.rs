//! Stable marriage with incomplete preference lists (dummy entries) and
//! enumeration of all stable matchings.
//!
//! This is the engine behind the paper's Algorithms 1 and 2. The paper's
//! *dummy entry* ("no dispatch" / "no service") is modelled by *truncating*
//! each agent's preference list: everything an agent ranks below its dummy
//! is simply not in its list, so the agent would rather stay unmatched than
//! take it. Theorem 1 of the paper (a stable matching always exists, even
//! with `|R| ≠ |T|`) is the classical existence result for this model.
//!
//! Terminology: the proposing side ("passenger requests" in the paper) are
//! **proposers**; the reviewing side ("taxis") are **reviewers**.
//!
//! # Examples
//!
//! ```
//! use o2o_matching::StableInstance;
//!
//! // Two proposers, two reviewers; everyone accepts everyone.
//! let inst = StableInstance::new(
//!     vec![vec![0, 1], vec![0, 1]], // proposers' lists over reviewers
//!     vec![vec![1, 0], vec![0, 1]], // reviewers' lists over proposers
//! )?;
//! let m = inst.propose();
//! assert_eq!(m.proposer_partner(0), Some(1));
//! assert_eq!(m.proposer_partner(1), Some(0));
//! assert!(inst.is_stable(&m));
//! # Ok::<(), o2o_matching::PreferenceError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::budget::TimeBudget;
use o2o_obs as obs;

/// Errors from constructing a [`StableInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreferenceError {
    /// A preference list referenced a partner index out of range.
    IndexOutOfRange {
        /// `"proposer"` or `"reviewer"`.
        side: &'static str,
        /// The agent whose list is invalid.
        agent: usize,
        /// The out-of-range entry.
        entry: usize,
    },
    /// A preference list contained the same partner twice.
    DuplicateEntry {
        /// `"proposer"` or `"reviewer"`.
        side: &'static str,
        /// The agent whose list is invalid.
        agent: usize,
        /// The repeated entry.
        entry: usize,
    },
}

impl fmt::Display for PreferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreferenceError::IndexOutOfRange { side, agent, entry } => {
                write!(f, "{side} {agent} ranks out-of-range partner {entry}")
            }
            PreferenceError::DuplicateEntry { side, agent, entry } => {
                write!(f, "{side} {agent} ranks partner {entry} twice")
            }
        }
    }
}

impl std::error::Error for PreferenceError {}

/// A (possibly partial) matching between proposers and reviewers.
///
/// `None` means matched to the dummy (unserved request / undispatched
/// taxi).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matching {
    proposer_to_reviewer: Vec<Option<usize>>,
    reviewer_to_proposer: Vec<Option<usize>>,
}

impl Matching {
    /// An empty matching for the given side sizes.
    #[must_use]
    pub fn empty(proposers: usize, reviewers: usize) -> Self {
        Matching {
            proposer_to_reviewer: vec![None; proposers],
            reviewer_to_proposer: vec![None; reviewers],
        }
    }

    /// The reviewer matched to proposer `p`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn proposer_partner(&self, p: usize) -> Option<usize> {
        self.proposer_to_reviewer[p]
    }

    /// The proposer matched to reviewer `r`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn reviewer_partner(&self, r: usize) -> Option<usize> {
        self.reviewer_to_proposer[r]
    }

    /// Number of matched pairs.
    #[must_use]
    pub fn matched_pairs(&self) -> usize {
        self.proposer_to_reviewer.iter().flatten().count()
    }

    /// Iterates over matched `(proposer, reviewer)` pairs in proposer
    /// order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.proposer_to_reviewer
            .iter()
            .enumerate()
            .filter_map(|(p, r)| r.map(|r| (p, r)))
    }

    /// Links proposer `p` with reviewer `r`, unlinking any previous
    /// partners of both.
    pub fn link(&mut self, p: usize, r: usize) {
        if let Some(old_r) = self.proposer_to_reviewer[p] {
            self.reviewer_to_proposer[old_r] = None;
        }
        if let Some(old_p) = self.reviewer_to_proposer[r] {
            self.proposer_to_reviewer[old_p] = None;
        }
        self.proposer_to_reviewer[p] = Some(r);
        self.reviewer_to_proposer[r] = Some(p);
    }

    /// Unlinks proposer `p` from its partner, if any.
    pub fn unlink_proposer(&mut self, p: usize) {
        if let Some(r) = self.proposer_to_reviewer[p].take() {
            self.reviewer_to_proposer[r] = None;
        }
    }
}

/// Result of a budget-bounded enumeration
/// ([`StableInstance::enumerate_budgeted`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Enumeration {
    /// The stable matchings collected before the walk ended. Never empty:
    /// the proposer-optimal matching is always first, whatever the budget.
    pub matchings: Vec<Matching>,
    /// BreakDispatch nodes explored (attempted `break_dispatch` calls).
    pub nodes: u64,
    /// Whether the budget (node cap or deadline) stopped the walk before
    /// it finished. Reaching an explicit `limit` does not count.
    pub truncated: bool,
}

/// Ranks: `rank[a][b] = position of b in a's list`, or `NOT_RANKED`.
const NOT_RANKED: u32 = u32::MAX;

/// Rank table for one side: position of each partner in each agent's list.
///
/// The dense layout (`O(n·m)` memory, O(1) lookup with no hashing) suits
/// instances whose lists are long relative to the other side; the sparse
/// layout stores only ranked partners, so memory and construction are
/// `O(Σ list length)` — the point of threshold-pruned candidate
/// generation, where each list holds a handful of nearby partners out of
/// thousands. Both answer the same query: rank of `b` for agent `a`, or
/// [`NOT_RANKED`].
#[derive(Debug, Clone)]
enum Ranks {
    Dense(Vec<Vec<u32>>),
    Sparse(Vec<HashMap<usize, u32>>),
}

impl Ranks {
    #[inline]
    fn get(&self, a: usize, b: usize) -> u32 {
        match self {
            Ranks::Dense(rows) => rows[a][b],
            Ranks::Sparse(maps) => maps[a].get(&b).copied().unwrap_or(NOT_RANKED),
        }
    }
}

fn build_ranks(lists: &[Vec<usize>], other_side: usize) -> Vec<Vec<u32>> {
    lists
        .iter()
        .map(|list| {
            let mut ranks = vec![NOT_RANKED; other_side];
            for (pos, &b) in list.iter().enumerate() {
                ranks[b] = pos as u32;
            }
            ranks
        })
        .collect()
}

/// Builds sparse rank maps, validating as it goes (unlike the dense path,
/// which validates separately, this never allocates `other_side`-sized
/// scratch — construction stays `O(Σ list length)`).
fn build_sparse_ranks(
    lists: &[Vec<usize>],
    other_side: usize,
    side: &'static str,
) -> Result<Vec<HashMap<usize, u32>>, PreferenceError> {
    lists
        .iter()
        .enumerate()
        .map(|(agent, list)| {
            let mut ranks = HashMap::with_capacity(list.len());
            for (pos, &entry) in list.iter().enumerate() {
                if entry >= other_side {
                    return Err(PreferenceError::IndexOutOfRange { side, agent, entry });
                }
                if ranks.insert(entry, pos as u32).is_some() {
                    return Err(PreferenceError::DuplicateEntry { side, agent, entry });
                }
            }
            Ok(ranks)
        })
        .collect()
}

fn validate(
    lists: &[Vec<usize>],
    other_side: usize,
    side: &'static str,
) -> Result<(), PreferenceError> {
    for (agent, list) in lists.iter().enumerate() {
        let mut seen = vec![false; other_side];
        for &entry in list {
            if entry >= other_side {
                return Err(PreferenceError::IndexOutOfRange { side, agent, entry });
            }
            if seen[entry] {
                return Err(PreferenceError::DuplicateEntry { side, agent, entry });
            }
            seen[entry] = true;
        }
    }
    Ok(())
}

/// A stable-marriage instance with incomplete (dummy-truncated) lists.
///
/// Each proposer's list ranks the reviewers it would accept, most preferred
/// first; everything below the dummy is omitted. Reviewers' lists likewise.
/// A pair can match only if each appears in the other's list.
#[derive(Debug, Clone)]
pub struct StableInstance {
    proposer_lists: Vec<Vec<usize>>,
    reviewer_lists: Vec<Vec<usize>>,
    /// Rank of reviewer `r` for proposer `p` (dense or sparse layout).
    proposer_rank: Ranks,
    /// Rank of proposer `p` for reviewer `r` (dense or sparse layout).
    reviewer_rank: Ranks,
}

impl StableInstance {
    /// Builds an instance from truncated preference lists.
    ///
    /// `proposer_lists[p]` ranks reviewer indices; `reviewer_lists[r]`
    /// ranks proposer indices. The side sizes are inferred from the outer
    /// vector lengths.
    ///
    /// # Errors
    ///
    /// Returns [`PreferenceError`] when a list contains an out-of-range or
    /// duplicate index.
    pub fn new(
        proposer_lists: Vec<Vec<usize>>,
        reviewer_lists: Vec<Vec<usize>>,
    ) -> Result<Self, PreferenceError> {
        let n_reviewers = reviewer_lists.len();
        let n_proposers = proposer_lists.len();
        validate(&proposer_lists, n_reviewers, "proposer")?;
        validate(&reviewer_lists, n_proposers, "reviewer")?;
        let proposer_rank = Ranks::Dense(build_ranks(&proposer_lists, n_reviewers));
        let reviewer_rank = Ranks::Dense(build_ranks(&reviewer_lists, n_proposers));
        Ok(StableInstance {
            proposer_lists,
            reviewer_lists,
            proposer_rank,
            reviewer_rank,
        })
    }

    /// Builds an instance with **sparse** (hashmap) rank tables.
    ///
    /// Semantically identical to [`StableInstance::new`] — every algorithm
    /// on the instance produces the same result — but construction time and
    /// memory are `O(Σ list length)` instead of `O(|proposers|·|reviewers|)`.
    /// This is what makes threshold-pruned candidate generation pay off:
    /// with truncated lists of a few dozen entries, a 2000×2000 frame never
    /// materialises four million rank slots.
    ///
    /// # Errors
    ///
    /// Returns [`PreferenceError`] when a list contains an out-of-range or
    /// duplicate index.
    pub fn new_sparse(
        proposer_lists: Vec<Vec<usize>>,
        reviewer_lists: Vec<Vec<usize>>,
    ) -> Result<Self, PreferenceError> {
        let n_reviewers = reviewer_lists.len();
        let n_proposers = proposer_lists.len();
        let proposer_rank = Ranks::Sparse(build_sparse_ranks(
            &proposer_lists,
            n_reviewers,
            "proposer",
        )?);
        let reviewer_rank = Ranks::Sparse(build_sparse_ranks(
            &reviewer_lists,
            n_proposers,
            "reviewer",
        )?);
        Ok(StableInstance {
            proposer_lists,
            reviewer_lists,
            proposer_rank,
            reviewer_rank,
        })
    }

    /// Rank of reviewer `r` for proposer `p`, or [`NOT_RANKED`].
    #[inline]
    fn prank(&self, p: usize, r: usize) -> u32 {
        self.proposer_rank.get(p, r)
    }

    /// Rank of proposer `p` for reviewer `r`, or [`NOT_RANKED`].
    #[inline]
    fn rrank(&self, r: usize, p: usize) -> u32 {
        self.reviewer_rank.get(r, p)
    }

    /// Number of proposers.
    #[must_use]
    pub fn proposers(&self) -> usize {
        self.proposer_lists.len()
    }

    /// Number of reviewers.
    #[must_use]
    pub fn reviewers(&self) -> usize {
        self.reviewer_lists.len()
    }

    /// Proposer `p`'s truncated preference list.
    #[must_use]
    pub fn proposer_list(&self, p: usize) -> &[usize] {
        &self.proposer_lists[p]
    }

    /// Reviewer `r`'s truncated preference list.
    #[must_use]
    pub fn reviewer_list(&self, r: usize) -> &[usize] {
        &self.reviewer_lists[r]
    }

    /// The role-swapped instance (reviewers become proposers).
    ///
    /// Running [`StableInstance::propose`] on the swap yields the
    /// *reviewer-optimal* stable matching of `self` — the engine behind the
    /// taxi-optimal schedule NSTD-T.
    #[must_use]
    pub fn swapped(&self) -> StableInstance {
        StableInstance {
            proposer_lists: self.reviewer_lists.clone(),
            reviewer_lists: self.proposer_lists.clone(),
            proposer_rank: self.reviewer_rank.clone(),
            reviewer_rank: self.proposer_rank.clone(),
        }
    }

    /// Whether proposer `p` finds reviewer `r` acceptable (above dummy).
    #[must_use]
    pub fn proposer_accepts(&self, p: usize, r: usize) -> bool {
        self.prank(p, r) != NOT_RANKED
    }

    /// Whether reviewer `r` finds proposer `p` acceptable (above dummy).
    #[must_use]
    pub fn reviewer_accepts(&self, r: usize, p: usize) -> bool {
        self.rrank(r, p) != NOT_RANKED
    }

    /// The proposer-optimal stable matching — the paper's **Algorithm 1**.
    ///
    /// Deferred acceptance: each proposer proposes down its list; a
    /// reviewer holds its best acceptable proposal so far. Handles unequal
    /// side sizes and truncated lists; unmatched agents correspond to dummy
    /// partners (Theorem 1). Runs in `O(|R|·|T|)`.
    #[must_use]
    pub fn propose(&self) -> Matching {
        let _span = obs::span("deferred_acceptance");
        let mut m = Matching::empty(self.proposers(), self.reviewers());
        let mut next = vec![0usize; self.proposers()];
        // Stack of proposers that still need to propose.
        let mut free: Vec<usize> = (0..self.proposers()).rev().collect();
        self.run_proposals(&mut m, &mut next, &mut free);
        m
    }

    /// The deferred-acceptance proposal loop, resumable from any reachable
    /// intermediate state (`m` + per-proposer cursors + free stack). Both
    /// [`StableInstance::propose`] (cold, everything empty) and
    /// [`StableInstance::propose_seeded`] (warm, seeded pairs linked and
    /// cursors advanced) drive this same loop, so the two paths cannot
    /// diverge in proposal semantics.
    fn run_proposals(&self, m: &mut Matching, next: &mut [usize], free: &mut Vec<usize>) {
        // Proposal/rejection dynamics are batched in locals and flushed
        // once: the loop body stays counter-free for the disabled case.
        let mut proposals = 0u64;
        let mut rejections = 0u64;
        while let Some(p) = free.pop() {
            // Propose down p's list from its cursor.
            // Runs down p's list from its cursor; falling off the end
            // means p matches its dummy (unserved).
            while let Some(&r) = self.proposer_lists[p].get(next[p]) {
                next[p] += 1;
                proposals += 1;
                let my_rank = self.rrank(r, p);
                if my_rank == NOT_RANKED {
                    rejections += 1;
                    continue; // r would rather stay undispatched
                }
                match m.reviewer_to_proposer[r] {
                    None => {
                        m.link(p, r);
                        break;
                    }
                    Some(held) => {
                        if my_rank < self.rrank(r, held) {
                            m.link(p, r); // unlinks `held`
                            free.push(held);
                            rejections += 1; // `held` is bumped back out
                            break;
                        }
                        rejections += 1;
                    }
                }
            }
        }
        if proposals > 0 {
            obs::add_many(&[
                ("match.proposals", proposals),
                ("match.rejections", rejections),
            ]);
        }
    }

    /// Prunes `seed` down to a subset that is a *reachable* deferred-
    /// acceptance state of **this** instance, so that
    /// [`StableInstance::propose_seeded`] started from it provably returns
    /// the same matching as a cold [`StableInstance::propose`].
    ///
    /// A surviving pair `(p, r)` means "proposer `p` currently holds
    /// reviewer `r`, having already proposed to everything `p` ranks above
    /// `r`". Three conditions make the combined state reachable by some
    /// valid proposal order:
    ///
    /// 1. **Well-formed**: pairs are mutually acceptable, in range, and no
    ///    proposer or reviewer appears twice (first occurrence wins).
    /// 2. **Prefix-justified**: every reviewer `r'` that `p` skipped (ranked
    ///    above `r` in `p`'s list) must reject `p` in the seeded state —
    ///    either `r'` does not rank `p`, or `r'` is seeded to a proposer it
    ///    strictly prefers over `p`.
    /// 3. **Acyclic**: justification by a seeded holder `q` means `q`'s
    ///    proposals must happen before `p`'s skips, an ordering constraint.
    ///    If those constraints form a cycle (each pair justifying the next
    ///    around a loop) no serial proposal order realises the state, and
    ///    seeding it could freeze a matching deferred acceptance would never
    ///    reach. Cyclic pairs are dropped (Kahn-style settling).
    ///
    /// Dropping a pair can invalidate the justification of another, so 2–3
    /// iterate to a fixpoint. Validity depends only on the current
    /// instance, never on where the seed came from: carrying pairs over
    /// from a previous frame's matching is purely a warm-start heuristic,
    /// and any stale or garbage pair is simply pruned here.
    #[must_use]
    pub fn valid_warm_seed(&self, seed: &[(usize, usize)]) -> Vec<(usize, usize)> {
        let _span = obs::span("seed_prune");
        let np = self.proposers();
        let nr = self.reviewers();
        let mut p2r: Vec<Option<usize>> = vec![None; np];
        let mut r2p: Vec<Option<usize>> = vec![None; nr];
        for &(p, r) in seed {
            if p >= np || r >= nr || p2r[p].is_some() || r2p[r].is_some() {
                continue;
            }
            if !self.proposer_accepts(p, r) || !self.reviewer_accepts(r, p) {
                continue;
            }
            p2r[p] = Some(r);
            r2p[r] = Some(p);
        }
        loop {
            let removed =
                self.prune_unjustified(&mut p2r, &mut r2p) | self.prune_cycles(&mut p2r, &mut r2p);
            if !removed {
                break;
            }
        }
        (0..np).filter_map(|p| p2r[p].map(|r| (p, r))).collect()
    }

    /// Drops seeded pairs whose skipped prefix is not justified by the
    /// current seed state (condition 2 of [`StableInstance::valid_warm_seed`]),
    /// repeating until a full pass removes nothing. Returns whether any
    /// pair was dropped.
    fn prune_unjustified(&self, p2r: &mut [Option<usize>], r2p: &mut [Option<usize>]) -> bool {
        let mut any = false;
        loop {
            let mut changed = false;
            for (p, slot) in p2r.iter_mut().enumerate() {
                let Some(r) = *slot else { continue };
                let rank = self.prank(p, r) as usize;
                let justified = self.proposer_lists[p][..rank].iter().all(|&skipped| {
                    let my_rank = self.rrank(skipped, p);
                    my_rank == NOT_RANKED
                        || r2p[skipped].is_some_and(|q| self.rrank(skipped, q) < my_rank)
                });
                if !justified {
                    *slot = None;
                    r2p[r] = None;
                    changed = true;
                    any = true;
                }
            }
            if !changed {
                return any;
            }
        }
    }

    /// Drops seeded pairs caught in a justification cycle (condition 3 of
    /// [`StableInstance::valid_warm_seed`]). An edge `p → q` means `p`'s
    /// skip of some reviewer is justified by seeded holder `q`, i.e. `q`
    /// must propose before `p`; pairs that cannot be topologically settled
    /// have no valid serial proposal order and are removed. Assumes every
    /// remaining pair is prefix-justified. Returns whether any pair was
    /// dropped.
    fn prune_cycles(&self, p2r: &mut [Option<usize>], r2p: &mut [Option<usize>]) -> bool {
        let np = p2r.len();
        let mut justifiers: Vec<Vec<usize>> = vec![Vec::new(); np];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); np];
        for p in 0..np {
            let Some(r) = p2r[p] else { continue };
            let rank = self.prank(p, r) as usize;
            for &skipped in &self.proposer_lists[p][..rank] {
                if self.rrank(skipped, p) == NOT_RANKED {
                    continue;
                }
                let q = r2p[skipped].expect("prefix is justified, so the skip has a holder");
                if !justifiers[p].contains(&q) {
                    justifiers[p].push(q);
                    dependents[q].push(p);
                }
            }
        }
        let mut pending: Vec<usize> = justifiers.iter().map(Vec::len).collect();
        let mut settle: Vec<usize> = (0..np)
            .filter(|&p| p2r[p].is_some() && pending[p] == 0)
            .collect();
        let mut settled = vec![false; np];
        while let Some(q) = settle.pop() {
            settled[q] = true;
            for &p in &dependents[q] {
                pending[p] -= 1;
                if pending[p] == 0 {
                    settle.push(p);
                }
            }
        }
        let mut any = false;
        for p in 0..np {
            if let Some(r) = p2r[p] {
                if !settled[p] {
                    p2r[p] = None;
                    r2p[r] = None;
                    any = true;
                }
            }
        }
        any
    }

    /// The proposer-optimal stable matching, warm-started from `seed` —
    /// typically the previous frame's matching in a rolling dispatch loop.
    ///
    /// The seed is first pruned by [`StableInstance::valid_warm_seed`];
    /// surviving pairs are linked with each proposer's cursor advanced just
    /// past its seeded reviewer, and the ordinary proposal loop then runs
    /// for the remaining free proposers. Because the pruned seed state is
    /// reachable by a valid proposal sequence and deferred acceptance is
    /// proposal-order independent (McVitie–Wilson), the result is **always
    /// exactly** [`StableInstance::propose`] — for any `seed` whatsoever.
    /// The seed only controls how much proposal work is skipped.
    #[must_use]
    pub fn propose_seeded(&self, seed: &[(usize, usize)]) -> Matching {
        let _span = obs::span("deferred_acceptance");
        let seed_pairs_in = seed.len() as u64;
        let seed = self.valid_warm_seed(seed);
        obs::add_many(&[
            ("match.seed_pairs_in", seed_pairs_in),
            ("match.seed_pairs_kept", seed.len() as u64),
        ]);
        let mut m = Matching::empty(self.proposers(), self.reviewers());
        let mut next = vec![0usize; self.proposers()];
        for &(p, r) in &seed {
            m.link(p, r);
            next[p] = self.prank(p, r) as usize + 1;
        }
        let mut free: Vec<usize> = (0..self.proposers())
            .rev()
            .filter(|&p| m.proposer_to_reviewer[p].is_none())
            .collect();
        self.run_proposals(&mut m, &mut next, &mut free);
        // A pruned seed is provably exact (see valid_warm_seed). Debug
        // builds distrust the proof anyway, but a divergence degrades to
        // the cold result instead of asserting: a warm-state bug costs
        // one slow frame, not the whole run.
        if cfg!(debug_assertions) {
            let cold = self.propose();
            if m != cold {
                return cold;
            }
        }
        m
    }

    /// The reviewer-optimal stable matching, warm-started from `seed`
    /// (given as `(proposer, reviewer)` pairs, like
    /// [`StableInstance::propose_seeded`]). Exactly
    /// [`StableInstance::reviewer_optimal`] for any seed; the swap-side
    /// pruning happens on the swapped instance.
    #[must_use]
    pub fn reviewer_optimal_seeded(&self, seed: &[(usize, usize)]) -> Matching {
        let swapped_seed: Vec<(usize, usize)> = seed.iter().map(|&(p, r)| (r, p)).collect();
        let m = self.swapped().propose_seeded(&swapped_seed);
        Matching {
            proposer_to_reviewer: m.reviewer_to_proposer,
            reviewer_to_proposer: m.proposer_to_reviewer,
        }
    }

    /// The reviewer-optimal stable matching (role-swapped proposals).
    #[must_use]
    pub fn reviewer_optimal(&self) -> Matching {
        let m = self.swapped().propose();
        Matching {
            proposer_to_reviewer: m.reviewer_to_proposer,
            reviewer_to_proposer: m.proposer_to_reviewer,
        }
    }

    /// All blocking pairs of `m` under the paper's Definition 1.
    ///
    /// `(p, r)` blocks when each finds the other acceptable and each
    /// prefers the other over its current partner (an unmatched agent —
    /// one holding its dummy — prefers every acceptable partner, since
    /// "dummies always prefer non-dummies").
    #[must_use]
    pub fn blocking_pairs(&self, m: &Matching) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for p in 0..self.proposers() {
            let p_current_rank = m.proposer_to_reviewer[p].map(|r| self.prank(p, r));
            for &r in &self.proposer_lists[p] {
                let pr = self.prank(p, r);
                let p_prefers = p_current_rank.is_none_or(|cur| pr < cur);
                if !p_prefers {
                    continue;
                }
                let rp = self.rrank(r, p);
                if rp == NOT_RANKED {
                    continue;
                }
                let r_prefers = match m.reviewer_to_proposer[r] {
                    None => true,
                    Some(held) => rp < self.rrank(r, held),
                };
                if r_prefers {
                    out.push((p, r));
                }
            }
        }
        out
    }

    /// Whether `m` is stable (no blocking pair) and consistent with the
    /// acceptability constraints (no one matched below their dummy).
    #[must_use]
    pub fn is_stable(&self, m: &Matching) -> bool {
        for (p, r) in m.pairs() {
            if !self.proposer_accepts(p, r) || !self.reviewer_accepts(r, p) {
                return false;
            }
        }
        self.blocking_pairs(m).is_empty()
    }

    /// The paper's **BreakDispatch** (Algorithm 2, Rules 1–3): break
    /// proposer `j`'s current match in `s` and chase the proposal chain to
    /// the *next* stable matching below `s` in the lattice.
    ///
    /// Returns `None` when BreakDispatch is unsuccessful:
    ///
    /// * Rule 3 — `j` is unserved in `s` (then it is unserved everywhere,
    ///   Theorem 2),
    /// * Rule 2 — the chain would involve a proposer with index `< j`,
    /// * Rule 1 fails — the chain ends without `j`'s old reviewer getting
    ///   a proposer it prefers over `j` (including any proposer falling to
    ///   its dummy).
    ///
    /// `s` must be a stable matching of this instance.
    #[must_use]
    pub fn break_dispatch(&self, s: &Matching, j: usize) -> Option<Matching> {
        let t = s.proposer_to_reviewer[j]?; // Rule 3
        let ghost_rank = self.rrank(t, j);
        let mut m = s.clone();
        m.unlink_proposer(j);
        let mut cur = j;
        // Resume proposing just below the broken partner.
        let mut pos = self.prank(j, t) as usize + 1;
        loop {
            let mut displaced: Option<usize> = None;
            while pos < self.proposer_lists[cur].len() {
                let r = self.proposer_lists[cur][pos];
                pos += 1;
                let my_rank = self.rrank(r, cur);
                if my_rank == NOT_RANKED {
                    continue;
                }
                if r == t && m.reviewer_to_proposer[t].is_none() {
                    // The broken reviewer holds j's ghost: it only accepts
                    // a strictly better proposer (Rule 1); on acceptance
                    // the chain terminates successfully.
                    if my_rank < ghost_rank {
                        m.link(cur, r);
                        debug_assert!(self.is_stable(&m));
                        return Some(m);
                    }
                    continue;
                }
                match m.reviewer_to_proposer[r] {
                    None => {
                        // An ordinarily-unmatched reviewer accepted: the
                        // chain ends but Rule 1 is unsatisfied (the broken
                        // reviewer t is left blocking with j).
                        return None;
                    }
                    Some(held) => {
                        if my_rank < self.rrank(r, held) {
                            if held < j {
                                return None; // Rule 2
                            }
                            m.link(cur, r);
                            displaced = Some(held);
                            break;
                        }
                    }
                }
            }
            match displaced {
                Some(k) => {
                    // The displaced proposer resumes below its lost partner.
                    let lost = m.proposer_to_reviewer[cur].expect("just linked");
                    pos = self.prank(k, lost) as usize + 1;
                    cur = k;
                }
                // `cur` exhausted its list: it fell to its dummy, so the
                // chain cannot yield a stable matching (Theorem 3, case i).
                None => return None,
            }
        }
    }

    /// Enumerates **all** stable matchings — the paper's **Algorithm 2**.
    ///
    /// Starts from the proposer-optimal matching and recursively applies
    /// [`StableInstance::break_dispatch`] with non-decreasing proposer
    /// indices; by the paper's Theorem 4 every stable matching is produced
    /// exactly once. The first element is always the proposer-optimal
    /// matching.
    ///
    /// The number of stable matchings can be exponential in adversarial
    /// instances; `limit` caps how many are collected (`None` = no cap).
    #[must_use]
    pub fn enumerate_all(&self, limit: Option<usize>) -> Vec<Matching> {
        let _span = obs::span("enumeration");
        let cap = limit.unwrap_or(usize::MAX).max(1);
        let s0 = self.propose();
        let mut out = Vec::new();
        out.push(s0.clone());
        let mut nodes = 0u64;
        self.enumerate_rec(&s0, 0, cap, &mut nodes, &mut out);
        obs::add("match.break_dispatch_nodes", nodes);
        out
    }

    fn enumerate_rec(
        &self,
        s: &Matching,
        j_min: usize,
        cap: usize,
        nodes: &mut u64,
        out: &mut Vec<Matching>,
    ) {
        for j in j_min..self.proposers() {
            if out.len() >= cap {
                return;
            }
            *nodes += 1;
            if let Some(next) = self.break_dispatch(s, j) {
                out.push(next.clone());
                self.enumerate_rec(&next, j, cap, nodes, out);
            }
        }
    }

    /// Budget-bounded stable-matching enumeration.
    ///
    /// Identical to [`StableInstance::enumerate_all`] — same matchings in
    /// the same order, same `limit` semantics — except that the
    /// BreakDispatch recursion is metered: each
    /// [`StableInstance::break_dispatch`] attempt counts as one *node*,
    /// the walk stops once `budget`'s node cap is reached, and the
    /// wall-clock deadline is polled every 32 nodes. With an unlimited
    /// budget the result equals `enumerate_all(limit)` exactly.
    ///
    /// When the budget stops the walk, [`Enumeration::truncated`] is set
    /// and the collected prefix is still well-formed: the first matching
    /// is always the proposer-optimal one, and every collected matching
    /// is stable — the budget only costs *completeness* of the
    /// enumeration, never correctness of its elements.
    #[must_use]
    pub fn enumerate_budgeted(&self, limit: Option<usize>, budget: &TimeBudget) -> Enumeration {
        let _span = obs::span("enumeration");
        let cap = limit.unwrap_or(usize::MAX).max(1);
        let s0 = self.propose();
        let mut out = Vec::new();
        out.push(s0.clone());
        let mut nodes = 0u64;
        let truncated = self.enumerate_budgeted_rec(&s0, 0, cap, budget, &mut nodes, &mut out);
        obs::add("match.break_dispatch_nodes", nodes);
        Enumeration {
            matchings: out,
            nodes,
            truncated,
        }
    }

    /// Metered twin of [`StableInstance::enumerate_rec`]. Returns whether
    /// the walk was stopped by the budget (reaching the `cap` is not
    /// truncation — `enumerate_all` stops there too).
    fn enumerate_budgeted_rec(
        &self,
        s: &Matching,
        j_min: usize,
        cap: usize,
        budget: &TimeBudget,
        nodes: &mut u64,
        out: &mut Vec<Matching>,
    ) -> bool {
        for j in j_min..self.proposers() {
            if out.len() >= cap {
                return false;
            }
            if budget.node_cap().is_some_and(|c| *nodes >= c) {
                return true;
            }
            if (*nodes).is_multiple_of(32) && budget.exhausted() {
                return true;
            }
            *nodes += 1;
            if let Some(next) = self.break_dispatch(s, j) {
                out.push(next.clone());
                if self.enumerate_budgeted_rec(&next, j, cap, budget, nodes, out) {
                    return true;
                }
            }
        }
        false
    }

    /// Rank (0 = favourite) of reviewer `r` in proposer `p`'s list, or
    /// `None` when `r` is below `p`'s dummy.
    #[must_use]
    pub fn proposer_rank_of(&self, p: usize, r: usize) -> Option<u32> {
        let rank = self.prank(p, r);
        (rank != NOT_RANKED).then_some(rank)
    }

    /// Rank (0 = favourite) of proposer `p` in reviewer `r`'s list, or
    /// `None` when `p` is below `r`'s dummy.
    #[must_use]
    pub fn reviewer_rank_of(&self, r: usize, p: usize) -> Option<u32> {
        let rank = self.rrank(r, p);
        (rank != NOT_RANKED).then_some(rank)
    }

    /// Egalitarian cost of a matching: the sum over matched pairs of both
    /// sides' ranks (0 = everyone got their favourite).
    ///
    /// # Panics
    ///
    /// Panics if `m` matches a pair outside the acceptability lists.
    #[must_use]
    pub fn egalitarian_cost(&self, m: &Matching) -> u64 {
        m.pairs()
            .map(|(p, r)| {
                let pr = self.proposer_rank_of(p, r).expect("acceptable pair") as u64;
                let rr = self.reviewer_rank_of(r, p).expect("acceptable pair") as u64;
                pr + rr
            })
            .sum()
    }

    /// The egalitarian stable matching: among `all` (e.g. from
    /// [`StableInstance::enumerate_all`]), the one minimising
    /// [`StableInstance::egalitarian_cost`] — the fairest compromise
    /// between the passenger-optimal and taxi-optimal extremes.
    ///
    /// Returns `None` when `all` is empty.
    #[must_use]
    pub fn egalitarian<'a>(&self, all: &'a [Matching]) -> Option<&'a Matching> {
        all.iter().min_by_key(|m| self.egalitarian_cost(m))
    }

    /// The (lower) median stable matching assembled from `all` stable
    /// matchings: every proposer is assigned the median of its partners
    /// across the set (Teo–Sethuraman: this selection is itself a stable
    /// matching). With dummy entries the matched set is constant across
    /// `all` (rural hospitals), so the median is well defined per agent.
    ///
    /// Returns `None` when `all` is empty.
    ///
    /// # Panics
    ///
    /// Panics if the matchings in `all` are not all stable matchings of
    /// this instance (their matched sets must agree).
    #[must_use]
    pub fn median_stable_matching(&self, all: &[Matching]) -> Option<Matching> {
        let first = all.first()?;
        let mut out = Matching::empty(self.proposers(), self.reviewers());
        for p in 0..self.proposers() {
            if first.proposer_partner(p).is_none() {
                continue;
            }
            let mut partners: Vec<usize> = all
                .iter()
                .map(|m| {
                    m.proposer_partner(p)
                        .expect("matched set is invariant across stable matchings")
                })
                .collect();
            partners.sort_by_key(|&r| self.prank(p, r));
            let median = partners[(partners.len() - 1) / 2];
            out.link(p, median);
        }
        debug_assert!(self.is_stable(&out));
        Some(out)
    }

    /// Exhaustive stable-matching enumeration by brute force.
    ///
    /// Exponential — intended for validating [`StableInstance::enumerate_all`]
    /// on small instances (tests, ablations). Results are in an unspecified
    /// order.
    #[must_use]
    pub fn enumerate_brute_force(&self) -> Vec<Matching> {
        let mut out = Vec::new();
        let mut m = Matching::empty(self.proposers(), self.reviewers());
        self.brute_rec(0, &mut m, &mut out);
        out
    }

    fn brute_rec(&self, p: usize, m: &mut Matching, out: &mut Vec<Matching>) {
        if p == self.proposers() {
            if self.is_stable(m) {
                out.push(m.clone());
            }
            return;
        }
        // p stays unmatched…
        self.brute_rec(p + 1, m, out);
        // …or takes any mutually-acceptable free reviewer.
        for &r in &self.proposer_lists[p] {
            if m.reviewer_to_proposer[r].is_none() && self.reviewer_accepts(r, p) {
                m.link(p, r);
                self.brute_rec(p + 1, m, out);
                m.unlink_proposer(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn classic_3x3() -> StableInstance {
        // A classic instance with multiple stable matchings.
        StableInstance::new(
            vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]],
            vec![vec![1, 2, 0], vec![2, 0, 1], vec![0, 1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn proposal_dynamics_are_recorded_on_the_scoped_recorder() {
        let inst = classic_3x3();
        let rec = obs::Recorder::new();
        let baseline = {
            let _scope = obs::scope(&rec);
            let m = inst.propose();
            let all = inst.enumerate_all(None);
            assert_eq!(all[0], m);
            m
        };
        // Cold 3x3 deferred acceptance proposes at least once per proposer;
        // the enumeration walks at least one BreakDispatch node per column.
        assert!(rec.counter("match.proposals") >= 3);
        assert!(rec.counter("match.break_dispatch_nodes") >= 3);

        // Warm-start records seed-prune sizes, and the result (hence the
        // recorded dynamics) is independent of the recorder being enabled.
        let rec2 = obs::Recorder::new();
        {
            let _scope = obs::scope(&rec2);
            let seeded = inst.propose_seeded(&baseline.pairs().collect::<Vec<_>>());
            assert_eq!(seeded, baseline);
        }
        assert_eq!(rec2.counter("match.seed_pairs_in"), 3);
        assert_eq!(rec2.counter("match.seed_pairs_kept"), 3);
        // Outside any scope nothing is recorded and results are identical.
        assert_eq!(inst.propose(), baseline);
    }

    #[test]
    fn propose_is_stable_on_classic() {
        let inst = classic_3x3();
        let m = inst.propose();
        assert!(inst.is_stable(&m));
        // Everyone gets their first choice (proposer-optimal).
        assert_eq!(m.proposer_partner(0), Some(0));
        assert_eq!(m.proposer_partner(1), Some(1));
        assert_eq!(m.proposer_partner(2), Some(2));
    }

    #[test]
    fn reviewer_optimal_differs_on_classic() {
        let inst = classic_3x3();
        let m = inst.reviewer_optimal();
        assert!(inst.is_stable(&m));
        // Each reviewer gets its first choice.
        assert_eq!(m.reviewer_partner(0), Some(1));
        assert_eq!(m.reviewer_partner(1), Some(2));
        assert_eq!(m.reviewer_partner(2), Some(0));
    }

    #[test]
    fn classic_has_three_stable_matchings() {
        let inst = classic_3x3();
        let all = inst.enumerate_all(None);
        assert_eq!(all.len(), 3);
        let brute = inst.enumerate_brute_force();
        assert_eq!(brute.len(), 3);
        let set_a: HashSet<_> = all.into_iter().collect();
        let set_b: HashSet<_> = brute.into_iter().collect();
        assert_eq!(set_a, set_b);
    }

    #[test]
    fn unequal_sides_leave_someone_unmatched() {
        // 3 proposers, 1 reviewer.
        let inst =
            StableInstance::new(vec![vec![0], vec![0], vec![0]], vec![vec![2, 0, 1]]).unwrap();
        let m = inst.propose();
        assert_eq!(m.matched_pairs(), 1);
        assert_eq!(m.reviewer_partner(0), Some(2));
        assert!(inst.is_stable(&m));
    }

    #[test]
    fn truncated_lists_respect_dummies() {
        // Proposer 0 would rather stay alone than take reviewer 1.
        // Reviewer 0 would rather stay alone than take proposer 0.
        let inst = StableInstance::new(vec![vec![0]], vec![vec![]]).unwrap();
        let m = inst.propose();
        assert_eq!(m.matched_pairs(), 0);
        assert!(inst.is_stable(&m));
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = StableInstance::new(vec![], vec![]).unwrap();
        let m = inst.propose();
        assert_eq!(m.matched_pairs(), 0);
        assert!(inst.is_stable(&m));
        assert_eq!(inst.enumerate_all(None).len(), 1);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = StableInstance::new(vec![vec![5]], vec![vec![0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::IndexOutOfRange {
                side: "proposer",
                agent: 0,
                entry: 5
            }
        );
    }

    #[test]
    fn rejects_duplicates() {
        let err = StableInstance::new(vec![vec![0]], vec![vec![0, 0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::DuplicateEntry {
                side: "reviewer",
                agent: 0,
                entry: 0
            }
        );
    }

    #[test]
    fn blocking_pairs_detects_instability() {
        let inst = classic_3x3();
        let mut m = Matching::empty(3, 3);
        // (0, 1) blocks: proposer 0 prefers reviewer 1 over 2, and
        // reviewer 1 prefers proposer 0 over its partner 1.
        m.link(0, 2);
        m.link(1, 1);
        m.link(2, 0);
        assert!(!inst.is_stable(&m));
        assert!(inst.blocking_pairs(&m).contains(&(0, 1)));
    }

    #[test]
    fn one_sided_acceptance_cannot_match() {
        // Proposer 0 accepts reviewer 0, but reviewer 0 accepts nobody.
        let inst = StableInstance::new(vec![vec![0]], vec![vec![]]).unwrap();
        let m = inst.propose();
        assert_eq!(m.proposer_partner(0), None);
        // And a forced link is flagged as not stable.
        let mut bad = Matching::empty(1, 1);
        bad.link(0, 0);
        assert!(!inst.is_stable(&bad));
    }

    #[test]
    fn break_dispatch_on_unserved_is_rule3_none() {
        let inst = StableInstance::new(vec![vec![0], vec![0]], vec![vec![0, 1]]).unwrap();
        let s = inst.propose();
        assert_eq!(s.proposer_partner(1), None);
        assert!(inst.break_dispatch(&s, 1).is_none());
    }

    #[test]
    fn matching_link_unlinks_previous() {
        let mut m = Matching::empty(2, 2);
        m.link(0, 0);
        m.link(1, 0); // steals reviewer 0
        assert_eq!(m.proposer_partner(0), None);
        assert_eq!(m.reviewer_partner(0), Some(1));
        m.link(1, 1); // moves proposer 1
        assert_eq!(m.reviewer_partner(0), None);
        assert_eq!(m.matched_pairs(), 1);
    }

    #[test]
    fn egalitarian_cost_and_selection() {
        let inst = classic_3x3();
        let all = inst.enumerate_all(None);
        assert_eq!(all.len(), 3);
        // Proposer-optimal: everyone rank 0 for proposers, rank 2 for
        // reviewers → cost 6. Reviewer-optimal symmetric. The middle
        // (cyclic) matching has rank 1 everywhere → cost 6 as well.
        let costs: Vec<u64> = all.iter().map(|m| inst.egalitarian_cost(m)).collect();
        assert!(costs.iter().all(|&c| c == 6));
        assert!(inst.egalitarian(&all).is_some());
        assert!(inst.egalitarian(&[]).is_none());
    }

    #[test]
    fn median_of_classic_is_the_middle_matching() {
        let inst = classic_3x3();
        let all = inst.enumerate_all(None);
        let median = inst.median_stable_matching(&all).unwrap();
        assert!(inst.is_stable(&median));
        // Each proposer's median partner is its 2nd choice.
        for p in 0..3 {
            let r = median.proposer_partner(p).unwrap();
            assert_eq!(inst.proposer_rank_of(p, r), Some(1));
        }
    }

    #[test]
    fn median_is_stable_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0x5E7A);
        for _ in 0..200 {
            let np = rng.gen_range(1..=6);
            let nr = rng.gen_range(1..=6);
            let inst = random_instance(&mut rng, np, nr);
            let all = inst.enumerate_all(None);
            let median = inst.median_stable_matching(&all).unwrap();
            assert!(inst.is_stable(&median), "median must be stable");
            // The egalitarian matching is also stable and its cost is
            // minimal over the set.
            let egal = inst.egalitarian(&all).unwrap();
            let best = all.iter().map(|m| inst.egalitarian_cost(m)).min().unwrap();
            assert_eq!(inst.egalitarian_cost(egal), best);
        }
    }

    #[test]
    fn rank_accessors() {
        let inst = classic_3x3();
        assert_eq!(inst.proposer_rank_of(0, 0), Some(0));
        assert_eq!(inst.proposer_rank_of(0, 2), Some(2));
        assert_eq!(inst.reviewer_rank_of(0, 1), Some(0));
        let truncated = StableInstance::new(vec![vec![0]], vec![vec![]]).unwrap();
        assert_eq!(truncated.reviewer_rank_of(0, 0), None);
    }

    /// Random instance with truncated lists on both sides.
    fn random_instance(rng: &mut StdRng, np: usize, nr: usize) -> StableInstance {
        let mut gen_side = |n: usize, m: usize| -> Vec<Vec<usize>> {
            (0..n)
                .map(|_| {
                    let mut all: Vec<usize> = (0..m).collect();
                    all.shuffle(rng);
                    let keep = rng.gen_range(0..=m);
                    all.truncate(keep);
                    all
                })
                .collect()
        };
        let p = gen_side(np, nr);
        let r = gen_side(nr, np);
        StableInstance::new(p, r).unwrap()
    }

    #[test]
    fn sparse_ranks_match_dense_on_random_instances() {
        // Same lists, sparse rank tables: every algorithm must return
        // identical results (not just equivalent ones).
        let mut rng = StdRng::seed_from_u64(0x5BA125E);
        for case in 0..200 {
            let np = rng.gen_range(0..=6);
            let nr = rng.gen_range(0..=6);
            let inst = random_instance(&mut rng, np, nr);
            let sparse = StableInstance::new_sparse(
                inst.proposer_lists.clone(),
                inst.reviewer_lists.clone(),
            )
            .unwrap();
            assert_eq!(inst.propose(), sparse.propose(), "case {case}");
            assert_eq!(
                inst.reviewer_optimal(),
                sparse.reviewer_optimal(),
                "case {case}"
            );
            let all = inst.enumerate_all(None);
            assert_eq!(all, sparse.enumerate_all(None), "case {case}");
            assert_eq!(
                inst.median_stable_matching(&all),
                sparse.median_stable_matching(&all),
                "case {case}"
            );
            for m in &all {
                assert_eq!(
                    inst.egalitarian_cost(m),
                    sparse.egalitarian_cost(m),
                    "case {case}"
                );
            }
        }
    }

    #[test]
    fn new_sparse_rejects_invalid_lists() {
        let err = StableInstance::new_sparse(vec![vec![5]], vec![vec![0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::IndexOutOfRange {
                side: "proposer",
                agent: 0,
                entry: 5
            }
        );
        let err = StableInstance::new_sparse(vec![vec![0]], vec![vec![0, 0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::DuplicateEntry {
                side: "reviewer",
                agent: 0,
                entry: 0
            }
        );
    }

    #[test]
    fn crossed_seed_cycle_is_dropped_and_warm_start_stays_exact() {
        // p0: r1 > r0, p1: r0 > r1; r0: p0 > p1, r1: p1 > p0.
        // The crossed seed {(p0,r0),(p1,r1)} is prefix-justified — each
        // pair's skip is "justified" by the other — but cyclically: no
        // serial proposal order reaches it. Naively resuming from it would
        // freeze a matching deferred acceptance never produces.
        let inst = StableInstance::new(vec![vec![1, 0], vec![0, 1]], vec![vec![0, 1], vec![1, 0]])
            .unwrap();
        let crossed = [(0, 0), (1, 1)];
        assert_eq!(inst.valid_warm_seed(&crossed), vec![]);
        let cold = inst.propose();
        assert_eq!(cold.proposer_partner(0), Some(1));
        assert_eq!(cold.proposer_partner(1), Some(0));
        assert_eq!(inst.propose_seeded(&crossed), cold);
    }

    #[test]
    fn garbage_seeds_are_pruned_and_harmless() {
        let inst = classic_3x3();
        let cold = inst.propose();
        // Out of range, duplicated proposer, duplicated reviewer — all
        // pruned; the valid remainder warm-starts to the same matching.
        let garbage = [(7, 0), (0, 9), (0, 0), (0, 1), (2, 0), (1, 1)];
        let kept = inst.valid_warm_seed(&garbage);
        for &(p, r) in &kept {
            assert!(inst.proposer_accepts(p, r) && inst.reviewer_accepts(r, p));
        }
        assert_eq!(inst.propose_seeded(&garbage), cold);
        assert_eq!(inst.propose_seeded(&[]), cold);
        assert_eq!(
            inst.reviewer_optimal_seeded(&garbage),
            inst.reviewer_optimal()
        );
    }

    #[test]
    fn own_matching_reseeds_to_itself() {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for _ in 0..100 {
            let np = rng.gen_range(0..=7);
            let nr = rng.gen_range(0..=7);
            let inst = random_instance(&mut rng, np, nr);
            let cold = inst.propose();
            let seed: Vec<(usize, usize)> = cold.pairs().collect();
            assert_eq!(inst.propose_seeded(&seed), cold);
            let ro = inst.reviewer_optimal();
            let ro_seed: Vec<(usize, usize)> = ro.pairs().collect();
            assert_eq!(inst.reviewer_optimal_seeded(&ro_seed), ro);
        }
    }

    #[test]
    fn budgeted_enumeration_with_unlimited_budget_equals_enumerate_all() {
        let mut rng = StdRng::seed_from_u64(0xB0D6E7);
        let unlimited = TimeBudget::unlimited();
        for case in 0..200 {
            let np = rng.gen_range(0..=6);
            let nr = rng.gen_range(0..=6);
            let inst = random_instance(&mut rng, np, nr);
            for limit in [None, Some(1), Some(3)] {
                let e = inst.enumerate_budgeted(limit, &unlimited);
                assert!(!e.truncated, "case {case}: unlimited budget truncated");
                assert_eq!(e.matchings, inst.enumerate_all(limit), "case {case}");
            }
        }
    }

    #[test]
    fn node_cap_truncates_but_keeps_prefix_well_formed() {
        let mut rng = StdRng::seed_from_u64(0xCA9);
        let mut saw_truncation = false;
        for case in 0..200 {
            let np = rng.gen_range(2..=6);
            let nr = rng.gen_range(2..=6);
            let inst = random_instance(&mut rng, np, nr);
            let full = inst.enumerate_all(None);
            let budget = crate::budget::TimeBudgetSpec::unlimited()
                .with_node_cap(2)
                .start();
            let e = inst.enumerate_budgeted(None, &budget);
            assert!(e.nodes <= 2, "case {case}: cap overrun ({} nodes)", e.nodes);
            assert_eq!(e.matchings[0], inst.propose(), "case {case}");
            for m in &e.matchings {
                assert!(inst.is_stable(m), "case {case}: truncated prefix unstable");
            }
            // The collected prefix is a prefix of the full enumeration.
            assert_eq!(
                e.matchings[..],
                full[..e.matchings.len()],
                "case {case}: not a prefix"
            );
            if e.truncated {
                saw_truncation = true;
                assert!(e.matchings.len() <= full.len());
            } else {
                assert_eq!(e.matchings, full, "case {case}");
            }
        }
        assert!(saw_truncation, "cap of 2 never bit on 200 random instances");
    }

    #[test]
    fn expired_deadline_still_yields_proposer_optimal() {
        let inst = classic_3x3();
        let budget = crate::budget::TimeBudgetSpec::unlimited()
            .with_deadline(std::time::Duration::ZERO)
            .start();
        let e = inst.enumerate_budgeted(None, &budget);
        assert!(e.truncated);
        assert_eq!(e.matchings, vec![inst.propose()]);
        assert_eq!(e.nodes, 0);
    }

    #[test]
    fn enumerate_all_order_is_deterministic_and_brackets_the_lattice() {
        let mut rng = StdRng::seed_from_u64(0x0D0E);
        for case in 0..150 {
            let np = rng.gen_range(0..=5);
            let nr = rng.gen_range(0..=5);
            let inst = random_instance(&mut rng, np, nr);
            let all = inst.enumerate_all(None);
            assert_eq!(all, inst.enumerate_all(None), "case {case}: order unstable");
            assert_eq!(
                all[0],
                inst.propose(),
                "case {case}: first not proposer-optimal"
            );
            let ro = inst.reviewer_optimal();
            assert!(all.contains(&ro), "case {case}: reviewer-optimal missing");
            // Proposer-side cost brackets: the proposer-optimal matching
            // minimises total proposer rank, the reviewer-optimal maximises
            // it over the stable set.
            let pcost =
                |m: &Matching| -> u64 { m.pairs().map(|(p, r)| u64::from(inst.prank(p, r))).sum() };
            let (lo, hi) = (pcost(&all[0]), pcost(&ro));
            for m in &all {
                assert!(inst.is_stable(m), "case {case}: unstable entry");
                assert!(
                    (lo..=hi).contains(&pcost(m)),
                    "case {case}: outside lattice"
                );
            }
        }
    }

    #[test]
    fn selectors_agree_with_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0xE6A1);
        for case in 0..150 {
            let np = rng.gen_range(0..=5);
            let nr = rng.gen_range(0..=5);
            let inst = random_instance(&mut rng, np, nr);
            let fast = inst.enumerate_all(None);
            let brute = inst.enumerate_brute_force();
            // Egalitarian: the selected cost equals the brute-force minimum.
            let egal = inst.egalitarian(&fast).unwrap();
            let best = brute
                .iter()
                .map(|m| inst.egalitarian_cost(m))
                .min()
                .unwrap();
            assert_eq!(inst.egalitarian_cost(egal), best, "case {case}");
            // Median: per-proposer medians are order-insensitive, so the
            // selection from either enumeration of the same set is equal.
            assert_eq!(
                inst.median_stable_matching(&fast),
                inst.median_stable_matching(&brute),
                "case {case}"
            );
        }
    }

    #[test]
    fn enumeration_matches_brute_force_on_many_random_instances() {
        let mut rng = StdRng::seed_from_u64(0xDEC0DE);
        for case in 0..300 {
            let np = rng.gen_range(0..=5);
            let nr = rng.gen_range(0..=5);
            let inst = random_instance(&mut rng, np, nr);
            let fast: Vec<_> = inst.enumerate_all(None);
            let fast_set: HashSet<_> = fast.iter().cloned().collect();
            assert_eq!(
                fast.len(),
                fast_set.len(),
                "case {case}: duplicates in enumeration"
            );
            let brute: HashSet<_> = inst.enumerate_brute_force().into_iter().collect();
            assert_eq!(fast_set, brute, "case {case}: sets differ");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Deferred acceptance always yields a stable matching.
        #[test]
        fn propose_always_stable(seed in any::<u64>(), np in 0usize..8, nr in 0usize..8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let m = inst.propose();
            prop_assert!(inst.is_stable(&m));
        }

        /// Proposer-optimality: in every stable matching, each proposer does
        /// no better than under `propose()`.
        #[test]
        fn propose_is_proposer_optimal(seed in any::<u64>(), np in 0usize..6, nr in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let best = inst.propose();
            for other in inst.enumerate_brute_force() {
                for p in 0..np {
                    let best_rank = best.proposer_partner(p)
                        .map(|r| inst.prank(p, r));
                    let other_rank = other.proposer_partner(p)
                        .map(|r| inst.prank(p, r));
                    match (best_rank, other_rank) {
                        (Some(b), Some(o)) => prop_assert!(b <= o),
                        // Theorem 2 / rural hospitals: matched status agrees.
                        (None, Some(_)) | (Some(_), None) => prop_assert!(
                            false, "matched sets differ across stable matchings"
                        ),
                        (None, None) => {}
                    }
                }
            }
        }

        /// Rural hospitals (paper's Theorem 2): every stable matching
        /// matches the same set of proposers and reviewers.
        #[test]
        fn rural_hospitals(seed in any::<u64>(), np in 0usize..6, nr in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let all = inst.enumerate_brute_force();
            prop_assert!(!all.is_empty());
            let matched_p: HashSet<usize> = all[0].pairs().map(|(p, _)| p).collect();
            let matched_r: HashSet<usize> = all[0].pairs().map(|(_, r)| r).collect();
            for m in &all {
                prop_assert_eq!(
                    m.pairs().map(|(p, _)| p).collect::<HashSet<_>>(), matched_p.clone());
                prop_assert_eq!(
                    m.pairs().map(|(_, r)| r).collect::<HashSet<_>>(), matched_r.clone());
            }
        }

        /// Reviewer-optimal matching is the reviewer-best among all stable
        /// matchings.
        #[test]
        fn reviewer_optimal_is_best_for_reviewers(
            seed in any::<u64>(), np in 0usize..6, nr in 0usize..6,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let ro = inst.reviewer_optimal();
            prop_assert!(inst.is_stable(&ro));
            for other in inst.enumerate_brute_force() {
                for r in 0..nr {
                    if let (Some(b), Some(o)) = (ro.reviewer_partner(r), other.reviewer_partner(r)) {
                        prop_assert!(inst.rrank(r, b) <= inst.rrank(r, o));
                    }
                }
            }
        }

        /// `enumerate_all` respects its cap and always includes the
        /// proposer-optimal matching first.
        #[test]
        fn enumerate_cap(seed in any::<u64>(), np in 0usize..6, nr in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let capped = inst.enumerate_all(Some(2));
            prop_assert!(capped.len() <= 2);
            prop_assert_eq!(&capped[0], &inst.propose());
        }

        /// Warm starting from an *arbitrary* candidate seed — valid,
        /// stale, crossed, or garbage — always reproduces the cold
        /// matchings exactly, on both sides.
        #[test]
        fn seeded_matches_cold_for_random_seeds(
            seed in any::<u64>(), np in 0usize..8, nr in 0usize..8, pairs in 0usize..12,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let candidate: Vec<(usize, usize)> = (0..pairs)
                .map(|_| (rng.gen_range(0..np.max(1) + 2), rng.gen_range(0..nr.max(1) + 2)))
                .collect();
            prop_assert_eq!(inst.propose_seeded(&candidate), inst.propose());
            prop_assert_eq!(inst.reviewer_optimal_seeded(&candidate), inst.reviewer_optimal());
        }

        /// The rolling-frame scenario: the previous frame's matching seeds
        /// a *different* instance (the frame delta changed both sides'
        /// lists); the warm result still equals the new instance's cold
        /// result.
        #[test]
        fn previous_frame_matching_is_an_exact_seed(
            seed in any::<u64>(), np in 0usize..8, nr in 0usize..8,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let prev = random_instance(&mut rng, np, nr);
            let carried: Vec<(usize, usize)> = prev.propose().pairs().collect();
            let cur = random_instance(&mut rng, np, nr);
            prop_assert_eq!(cur.propose_seeded(&carried), cur.propose());
            prop_assert_eq!(cur.reviewer_optimal_seeded(&carried), cur.reviewer_optimal());
        }
    }
}
